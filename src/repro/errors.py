"""The structured exception hierarchy for the whole reproduction.

Historically each layer raised its own ad-hoc ``RuntimeError`` subclass
(``AccessViolation`` in the data layer, ``EvaluationError`` in the plan
evaluator, ``PlanningError`` in the planner, ...).  This module is the
one place those types live now, arranged so callers can catch at the
right altitude:

* :class:`ReproError` -- everything raised by this package on purpose.
  It subclasses :class:`RuntimeError` so pre-existing ``except
  RuntimeError`` call sites keep working.
* :class:`AccessError` -- anything that went wrong *talking to a
  source*.  Every instance carries the offending ``method``,
  ``relation`` and ``inputs`` so a failure deep inside a plan run can be
  reported (and acted on -- see :mod:`repro.exec.resilience`) without
  re-deriving the context from a message string.
* :class:`TransientAccessError` -- the retryable subset (the paper's
  sources are remote services: they time out, rate-limit, and come
  back).  :class:`~repro.exec.resilience.RetryPolicy` retries exactly
  these by default; everything else is permanent.

The old names remain importable from their original modules
(``repro.data.source.AccessViolation``,
``repro.data.decorators.SourceUnavailable``, ...) as aliases of the
classes here, so no existing import or ``except`` clause breaks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class ReproError(RuntimeError):
    """Base class of every deliberate error raised by this package."""


# ------------------------------------------------------------ access layer
class AccessError(ReproError):
    """A failure while invoking an access method on a source.

    ``method``, ``relation`` and ``inputs`` identify the exact access
    that failed; the rendered message always includes whatever context
    was supplied.  ``attempts`` is filled in by the retry machinery when
    an error is re-raised after its last allowed attempt.
    """

    def __init__(
        self,
        message: str,
        *,
        method: Optional[str] = None,
        relation: Optional[str] = None,
        inputs: Optional[Sequence[object]] = None,
        attempts: Optional[int] = None,
    ) -> None:
        self.method = method
        self.relation = relation
        self.inputs = tuple(inputs) if inputs is not None else None
        self.attempts = attempts
        context = self.context()
        super().__init__(f"{message} [{context}]" if context else message)

    def context(self) -> str:
        """The ``key=value`` rendering of whatever context is known."""
        parts = []
        if self.method is not None:
            parts.append(f"method={self.method}")
        if self.relation is not None:
            parts.append(f"relation={self.relation}")
        if self.inputs is not None:
            parts.append(f"inputs={tuple(self.inputs)!r}")
        if self.attempts is not None:
            parts.append(f"attempts={self.attempts}")
        return ", ".join(parts)


class AccessViolation(AccessError):
    """Data was requested in a way the schema forbids (caller bug)."""


class AccessBudgetExceeded(AccessError):
    """A budgeted source refused an access beyond its allowance."""


class MethodOutage(AccessError):
    """A hard, permanent outage of one access method.  Not retryable."""


class CircuitOpen(AccessError):
    """An access was refused because the method's circuit breaker is open.

    Raised *without* touching the source: the breaker has seen enough
    consecutive failures that further calls are presumed wasted until
    the recovery window elapses.
    """


class TransientAccessError(AccessError):
    """A failure that may not recur: retrying the same access is sensible."""


class SourceUnavailable(TransientAccessError):
    """The source did not answer (connection refused, 5xx, injected)."""


class AccessTimeout(TransientAccessError):
    """The access took longer than the caller was willing to wait."""


class RateLimited(TransientAccessError):
    """The source refused the access because of call-rate policing."""


class ResultTruncated(TransientAccessError):
    """The source answered with a truncated (result-bounded) tuple set.

    ``rows`` carries the partial answer, so a caller that cannot retry
    may still choose to accept it (explicitly, never silently).
    """

    def __init__(self, message: str, *, rows=frozenset(), **context) -> None:
        super().__init__(message, **context)
        self.rows = rows


# -------------------------------------------------------------- cost layer
class CostModelError(ReproError):
    """A failure inside a cost model or its calibration machinery."""


class InvalidCostParameter(CostModelError):
    """A cost-model knob was given a value outside its sound range.

    Raised at *construction* time (e.g. a selectivity outside ``(0, 1]``
    would silently produce non-monotone or negative costs), so a
    misconfigured estimator can never reach the planner.  ``parameter``
    names the knob and ``value`` carries the offending value.
    """

    def __init__(
        self, message: str, *, parameter: str = "", value: object = None
    ) -> None:
        self.parameter = parameter
        self.value = value
        super().__init__(message)


# -------------------------------------------------------------- exec layer
class ExecutionError(ReproError):
    """A failure while evaluating a plan or relational expression."""


class DeadlineExceeded(ExecutionError):
    """The overall plan deadline expired before execution finished."""


class PlanCancelled(ExecutionError):
    """A cooperative cancellation token stopped the plan between commands.

    Raised by :meth:`Plan.execute <repro.plans.plan.Plan.execute>` when
    its ``cancel`` event is set -- e.g. a hedged duplicate whose twin
    already won.  The run produced no answer *by request*, so callers
    that cancelled simply discard the worker's error result.
    """


class PlanFailed(ExecutionError):
    """A plan run gave up: retries exhausted or a permanent access error.

    ``cause`` is the final :class:`AccessError`; ``plan`` names the plan.
    """

    def __init__(
        self, message: str, *, plan: Optional[str] = None, cause=None
    ) -> None:
        self.plan = plan
        self.cause = cause
        super().__init__(message)


class NoViablePlan(ExecutionError):
    """Failover ran out of alternatives: no plan avoids the dead methods.

    ``dead_methods`` names the methods planning had to avoid.
    """

    def __init__(
        self, message: str, *, dead_methods: Tuple[str, ...] = ()
    ) -> None:
        self.dead_methods = tuple(dead_methods)
        super().__init__(message)


class RowBudgetExceeded(ExecutionError):
    """A per-request row budget tripped during plan execution.

    ``kind`` says which budget ("result" or "resident"); ``rows`` is the
    observed row count and ``budget`` the configured ceiling.  Raised by
    :meth:`Plan.execute <repro.plans.plan.Plan.execute>` when a
    :class:`~repro.exec.budget.ResourceBudget` forbids the overflow
    (resident-row overflows are always errors; result-row overflows only
    with ``on_result_overflow="error"`` -- the default degrades to a
    deterministically truncated, explicitly marked partial answer).
    """

    def __init__(
        self, message: str, *, kind: str = "result", rows: int = 0,
        budget: int = 0,
    ) -> None:
        self.kind = kind
        self.rows = rows
        self.budget = budget
        super().__init__(message)


# ----------------------------------------------------------- service layer
class ServiceError(ReproError):
    """A failure of the concurrent query service itself."""


class ServiceOverloaded(ServiceError):
    """Admission control refused (or shed) a request: the queue is full.

    ``queue_depth`` is the depth observed at rejection time and
    ``retry_after`` a best-effort hint (seconds) for when capacity is
    expected -- derived from the observed mean service time, never a
    promise.  ``shed`` distinguishes a queued request evicted by a
    higher-priority arrival (True) from a request rejected at the door
    (False).
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int = 0,
        retry_after: Optional[float] = None,
        shed: bool = False,
    ) -> None:
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self.shed = shed
        super().__init__(message)


class ServiceStopped(ServiceError):
    """A request was submitted to a draining or stopped service."""


class PlanInadmissible(ServiceError):
    """Admission control rejected a plan its static size bounds doom.

    Raised by :meth:`QueryService.submit
    <repro.service.service.QueryService.submit>` *before any execution*
    when a :class:`~repro.cost.bounds.SizeBounds` analyzer proves a
    finite worst-case ceiling on the plan's result (or resident) rows
    and that ceiling already exceeds the request's strict
    :class:`~repro.exec.budget.ResourceBudget` row ceiling.  The
    rejection is conservative: the *bound* is proven, the overflow is
    worst-case -- but under an error-mode budget the run could not be
    guaranteed to complete, and rejecting at the door costs zero source
    invocations instead of a mid-plan :class:`RowBudgetExceeded`.

    ``kind`` says which ceiling ("result" or "resident"), ``bound`` the
    proven worst-case row count and ``ceiling`` the budget's limit.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "result",
        bound: float = 0.0,
        ceiling: int = 0,
    ) -> None:
        self.kind = kind
        self.bound = bound
        self.ceiling = ceiling
        super().__init__(message)


class WorkerCrashed(ServiceError):
    """A worker process died while (or before) executing a request.

    Raised by the process worker tier when the pool reports a broken
    worker (killed, segfaulted, OOM-ed).  The affected request fails
    with this typed error instead of hanging; the pool itself is
    recreated so subsequent requests are served by fresh workers.
    ``restarts`` counts pool recreations observed so far.
    """

    def __init__(self, message: str, *, restarts: int = 0) -> None:
        self.restarts = restarts
        super().__init__(message)


class WorkerStalled(ServiceError):
    """A worker accepted a request and then stopped making progress.

    Raised by the worker tier's watchdog when a request exceeds its
    stall bound while its worker is *alive but stuck* (a hung source,
    a lost lock, a runaway loop) -- the failure mode a crash detector
    cannot see, because nothing died.  The process tier reclaims the
    slot by killing and recreating the pool (``killed`` is True);
    the thread tier cannot kill a thread, so it surfaces the stall
    typed and leaks the slot until the task finishes (``killed`` is
    False).  ``stalls`` counts stalls observed by the tier so far.
    """

    def __init__(
        self, message: str, *, stalls: int = 0, killed: bool = False
    ) -> None:
        self.stalls = stalls
        self.killed = killed
        super().__init__(message)


# ------------------------------------------------------------- chase layer
class ChaseError(ReproError):
    """A failure inside the chase engine."""


class NonTerminatingChaseError(ChaseError):
    """The firing budget was exhausted and the policy said raise."""


class ChaseBudgetExceeded(ChaseError):
    """A chase step/wall-clock budget tripped before fixpoint.

    Carries the partial :class:`~repro.chase.stats.ChaseStats` (as
    ``stats``) plus the step count and elapsed seconds at the moment the
    budget tripped, so the caller can report how far the run got.
    """

    def __init__(
        self,
        message: str,
        *,
        stats=None,
        steps: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        self.stats = stats
        self.steps = steps
        self.elapsed = elapsed
        super().__init__(message)


__all__ = [
    "AccessBudgetExceeded",
    "AccessError",
    "AccessTimeout",
    "AccessViolation",
    "ChaseBudgetExceeded",
    "ChaseError",
    "CircuitOpen",
    "CostModelError",
    "DeadlineExceeded",
    "ExecutionError",
    "InvalidCostParameter",
    "MethodOutage",
    "NoViablePlan",
    "NonTerminatingChaseError",
    "PlanCancelled",
    "PlanFailed",
    "PlanInadmissible",
    "RateLimited",
    "ReproError",
    "ResultTruncated",
    "RowBudgetExceeded",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceStopped",
    "SourceUnavailable",
    "TransientAccessError",
    "WorkerCrashed",
    "WorkerStalled",
]
