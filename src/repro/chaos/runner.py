"""Run chaos scenarios by name; the surface the CLI and benchmarks use.

:func:`run_scenario` dispatches one named scenario from the matrix in
:mod:`repro.chaos.scenarios`; :func:`run_matrix` sweeps all of them
and returns the reports in matrix order.  Both are pure functions of
``(name, seed, quick)`` -- the scenarios own their services, pools and
temp directories, so repeated runs are independent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chaos.harness import ChaosReport
from repro.chaos.scenarios import SCENARIO_BUILDERS, SCENARIOS


def run_scenario(
    name: str, seed: int = 0, quick: bool = True
) -> ChaosReport:
    """Run one named chaos scenario and return its report.

    Raises ``ValueError`` on an unknown name (the valid names are
    :data:`SCENARIOS`); never raises on invariant violations -- those
    are *data*, carried in ``report.violations`` for the caller to
    assert on.
    """
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"known: {', '.join(SCENARIOS)}"
        )
    return builder(seed=seed, quick=quick)


def run_matrix(
    seed: int = 0,
    quick: bool = True,
    names: Optional[Sequence[str]] = None,
) -> List[ChaosReport]:
    """Run the whole scenario matrix (or a named subset), in order."""
    selected = SCENARIOS if names is None else tuple(names)
    return [run_scenario(name, seed=seed, quick=quick) for name in selected]
