"""The invariants every chaos scenario must preserve.

Three checks, applied to every request of every scenario:

* **soundness** (:func:`verify_response`): an answer marked
  ``complete`` equals the clean oracle's certain answers exactly; an
  answer marked ``partial`` is a subset of them; an unmarked table or
  a non-typed error is a violation on its own.  This is the dynamic
  face of the paper's guarantee -- chaos may *withhold* answers
  (typed, marked), it may never *change* them.
* **accounting** (:func:`verify_accounting`): submitted ==
  complete + partial + failed + shed + rejected, and the service's own
  ``served``/``shed`` counters agree with the per-ticket outcomes the
  harness observed -- no request is lost, double-counted, or silently
  dropped.
* **termination**: enforced by the harness itself
  (:meth:`~repro.chaos.runner.ScenarioHarness.collect` waits on every
  ticket with the scenario deadline); a ticket still unresolved when
  the deadline passes is reported as a ``termination`` violation, the
  one invariant that cannot be checked after the fact.

Checkers return :class:`InvariantViolation` lists instead of raising,
so a scenario report can carry *all* violations (and the benchmark can
count them) rather than dying on the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping

from repro.errors import ReproError

#: The terminal outcome classes a harness buckets tickets into.
OUTCOMES = ("complete", "partial", "failed", "shed", "rejected")


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a chaos invariant."""

    #: "soundness" | "accounting" | "termination" | "typed"
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"

    def as_dict(self) -> Dict[str, str]:
        """A JSON-able representation."""
        return {"invariant": self.invariant, "detail": self.detail}


def verify_response(
    response, oracle_rows: FrozenSet
) -> List[InvariantViolation]:
    """Check one resolved response against the clean oracle.

    ``oracle_rows`` are the certain answers computed with no chaos
    injected (same plan or query, clean source).  Returns all
    violations: soundness breaches (wrong or unmarked answers) and
    typing breaches (non-:class:`~repro.errors.ReproError` failures).
    """
    violations: List[InvariantViolation] = []
    rid = response.request_id or "request"
    if response.error is not None:
        if not isinstance(response.error, ReproError):
            violations.append(
                InvariantViolation(
                    "typed",
                    f"{rid}: failed with untyped "
                    f"{type(response.error).__name__}: {response.error}",
                )
            )
        return violations
    if response.table is None:
        violations.append(
            InvariantViolation(
                "typed", f"{rid}: resolved with neither table nor error"
            )
        )
        return violations
    rows = frozenset(response.table.rows)
    if response.complete:
        if rows != oracle_rows:
            missing = len(oracle_rows - rows)
            extra = len(rows - oracle_rows)
            violations.append(
                InvariantViolation(
                    "soundness",
                    f"{rid}: marked complete but diverges from the oracle "
                    f"({missing} missing, {extra} extra rows)",
                )
            )
    elif response.partial:
        if not rows <= oracle_rows:
            violations.append(
                InvariantViolation(
                    "soundness",
                    f"{rid}: marked partial but contains "
                    f"{len(rows - oracle_rows)} rows not in the oracle",
                )
            )
    else:
        violations.append(
            InvariantViolation(
                "typed",
                f"{rid}: answer carries neither complete nor partial "
                "marking",
            )
        )
    return violations


def verify_accounting(
    submitted: int,
    outcomes: Mapping[str, int],
    health: Mapping,
) -> List[InvariantViolation]:
    """Check the accounting identity against the service's counters.

    ``outcomes`` is the harness's own bucketing of every submission
    (keys from :data:`OUTCOMES`); ``health`` is the
    :meth:`QueryService.health` snapshot as a dict.  Three identities:

    * nothing lost: submitted == sum of all outcome buckets;
    * served books balance: ``health.served`` == complete + partial
      + failed (exactly the tickets that reached :meth:`_account`);
    * shed books balance: ``health.shed`` == shed + rejected (every
      request the service refused was typed and counted).
    """
    violations: List[InvariantViolation] = []
    total = sum(outcomes.get(key, 0) for key in OUTCOMES)
    if submitted != total:
        violations.append(
            InvariantViolation(
                "accounting",
                f"{submitted} submitted but only {total} accounted for "
                f"({dict(outcomes)})",
            )
        )
    served = (
        outcomes.get("complete", 0)
        + outcomes.get("partial", 0)
        + outcomes.get("failed", 0)
    )
    if health.get("served") != served:
        violations.append(
            InvariantViolation(
                "accounting",
                f"service served={health.get('served')} but the harness "
                f"observed {served} served outcomes",
            )
        )
    shed = outcomes.get("shed", 0) + outcomes.get("rejected", 0)
    if health.get("shed") != shed:
        violations.append(
            InvariantViolation(
                "accounting",
                f"service shed={health.get('shed')} but the harness "
                f"observed {shed} shed/rejected outcomes",
            )
        )
    return violations
