"""The eight-scenario chaos matrix, each seeded and deterministic.

Every scenario builds its own workload (schema + instance + query,
sized so a clean run answers in milliseconds), computes the clean
oracle first, then serves the same workload through a live
:class:`~repro.service.QueryService` while injecting one failure mode:

``worker_kill``
    a worker process is assassinated mid-burst (``os._exit(13)``
    submitted straight into the pool); affected requests fail typed
    :class:`~repro.errors.WorkerCrashed`, the pool recreates, and a
    follow-up burst is served clean.
``worker_stall``
    a :class:`~repro.data.decorators.StormyLatencySource` whose slow
    tick (30s) dwarfs the watchdog bound (0.5s): stuck workers are
    killed and recycled, surfacing typed
    :class:`~repro.errors.WorkerStalled` instead of blocked slots.
``latency_storm``
    a storm whose slow tick is merely painful (hundreds of ms);
    hedged execution duplicates the straggling tail after a fixed
    delay and every answer still matches the oracle exactly.
``burst_outage``
    a seeded :class:`~repro.faults.FaultPolicy` transient schedule
    (bursty unavailability/timeouts/rate limits) defeated by retries:
    byte-identical answers, zero failures surfaced to clients.
``permanent_outage``
    one access method hard-down from invocation zero; the first
    failure marks it dead, planning re-runs *once* over the surviving
    schema, every later request is served complete (flagged
    ``degraded``), and recovery swings back to the healthy plan.
``http_rate_limit_storm``
    a concurrent burst against a token-bucket-policed web-service stub
    (:class:`~repro.sources.StubTransport`): the server answers 429 +
    ``Retry-After``, the :class:`~repro.sources.HTTPSource` client
    waits it out and follows pagination, and every answer still
    matches the oracle.
``sqlite_disconnect``
    the :class:`~repro.sources.SQLiteSource` connection is severed
    before every third statement (mid-plan, between a request's own
    accesses); reconnect-with-backoff reloads the same read snapshot
    (epoch unchanged), so answers are byte-identical and only the
    ``reconnects`` counter knows.
``disk_corruption``
    the plan-cache entry and the calibration store are corrupted on
    disk between service generations (plus a torn temp file from a
    simulated crash mid atomic write); the restarted service
    quarantines both, re-plans once, and serves the oracle answers.

Each scenario returns a :class:`~repro.chaos.harness.ChaosReport`;
``quick=True`` shrinks request counts for CI smoke runs without
changing any failure mode.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, Tuple

from repro.chaos.harness import ChaosReport, ScenarioHarness
from repro.cost.calibration import CalibrationStore
from repro.data.decorators import StormyLatencySource
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec.resilience import RetryPolicy
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.logic.queries import parse_cq
from repro.planner.plan_cache import PlanCache
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder
from repro.service.service import QueryService
from repro.service.workers import ProcessWorkerPool, ThreadWorkerPool
from repro.sources import HTTPSource, SQLiteSource, StubTransport

#: No real backoff sleeping inside chaos runs -- schedules stay
#: deterministic and scenarios stay fast.
_NO_SLEEP = lambda _seconds: None  # noqa: E731


def join_workload(name: str, *, bound_s: bool = False):
    """The shared R |x| S workload: schema, instance, query, plan, oracle.

    24 rows per relation joined on a 4-value key: big enough that a
    plan run does real work, small enough that a clean run is
    milliseconds.  ``bound_s=True`` swaps the free S scan for an
    input-bound method, which multiplies the distinct access keys a
    fault schedule can land on (the burst scenario wants that).
    """
    builder = (
        SchemaBuilder(name)
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
    )
    if bound_s:
        builder = builder.access("mt_S", "S", inputs=[0], cost=2.0)
    else:
        builder = builder.access("mt_S", "S", inputs=[], cost=1.0)
    schema = builder.build()
    instance = Instance(
        {
            "R": [(f"a{i}", f"b{i % 4}") for i in range(24)],
            "S": [(f"b{i % 4}", f"c{i}") for i in range(24)],
        }
    )
    query = parse_cq("q(a, c) :- R(a, b) & S(b, c)")
    result = find_best_plan(schema, query, SearchOptions(max_accesses=4))
    assert result.found, "the chaos workload must always be plannable"
    plan = result.best_plan
    oracle = frozenset(
        plan.execute(InMemorySource(schema, instance)).rows
    )
    return schema, instance, query, plan, oracle


def outage_workload(name: str):
    """A workload with a *redundant* access path for one relation.

    ``primary_R`` is the cheap method every healthy plan picks;
    ``backup_R`` is the expensive one the degraded re-plan falls back
    to when the primary is hard-down.  Same instance and oracle as
    :func:`join_workload` -- both methods reveal the same relation.
    """
    schema = (
        SchemaBuilder(name)
        .relation("R", 2)
        .relation("S", 2)
        .access("primary_R", "R", inputs=[], cost=1.0)
        .access("backup_R", "R", inputs=[], cost=5.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )
    instance = Instance(
        {
            "R": [(f"a{i}", f"b{i % 4}") for i in range(24)],
            "S": [(f"b{i % 4}", f"c{i}") for i in range(24)],
        }
    )
    query = parse_cq("q(a, c) :- R(a, b) & S(b, c)")
    oracle = frozenset(instance.evaluate(query))
    return schema, instance, query, oracle


# ----------------------------------------------------------------- scenarios
def worker_kill(seed: int = 0, quick: bool = True) -> ChaosReport:
    """Assassinate a worker process mid-burst; the tier must recover."""
    schema, instance, _query, plan, oracle = join_workload("chaos_kill")
    source = InMemorySource(schema, instance)
    pool = ProcessWorkerPool.for_source(
        source, workers=2, start_method="fork"
    )
    batch = 2 if quick else 4
    harness = ScenarioHarness("worker_kill", seed, 120.0, oracle)
    service = QueryService(
        source,
        workers=2,
        max_queue=64,
        worker_pool=pool,
        default_deadline=60.0,
        sleep=_NO_SLEEP,
    )
    with service:
        for _ in range(batch):  # clean warm-up burst
            harness.submit(service.submit, plan)
        harness.collect()
        # The assassination: a task that hard-exits whichever worker
        # picks it up, exactly like an OOM kill or a segfault.
        pool._executor.submit(os._exit, 13)
        time.sleep(0.3)  # let the executor notice the corpse
        for _ in range(batch):  # burst into the broken pool
            harness.submit(service.submit, plan)
        harness.collect()
        for _ in range(batch):  # the recreated pool serves clean again
            harness.submit(service.submit, plan)
        harness.collect()
    return harness.finish(service, details={"tier": pool.health()})


def worker_stall(seed: int = 0, quick: bool = True) -> ChaosReport:
    """A 30s stall against a 0.5s watchdog: kill, recycle, keep serving."""
    schema, instance, _query, plan, oracle = join_workload("chaos_stall")
    source = StormyLatencySource(
        InMemorySource(schema, instance),
        base_latency=0.0,
        slow_latency=30.0,
        slow_every=3,
    )
    pool = ProcessWorkerPool.for_source(
        source, workers=2, start_method="fork", watchdog_seconds=0.5
    )
    requests = 4 if quick else 6
    harness = ScenarioHarness("worker_stall", seed, 120.0, oracle)
    service = QueryService(
        source,
        workers=2,
        max_queue=64,
        worker_pool=pool,
        default_deadline=60.0,
        sleep=_NO_SLEEP,
    )
    with service:
        # Each request makes 2 accesses and each rehydrated worker
        # storms on its 3rd call, so the second request a worker takes
        # stalls -- far past the watchdog, nowhere near the deadline.
        for _ in range(requests):
            harness.submit(service.submit, plan)
            harness.collect()
    return harness.finish(service, details={"tier": pool.health()})


def latency_storm(seed: int = 0, quick: bool = True) -> ChaosReport:
    """Hedged execution rides out a deterministic tail-latency storm."""
    schema, instance, _query, plan, oracle = join_workload("chaos_storm")
    source = StormyLatencySource(
        InMemorySource(schema, instance),
        base_latency=0.002,
        slow_latency=0.25,
        slow_every=5,
    )
    pool = ThreadWorkerPool(
        source, workers=4, hedge=True, hedge_delay=0.05
    )
    requests = 12 if quick else 24
    harness = ScenarioHarness("latency_storm", seed, 60.0, oracle)
    service = QueryService(
        source,
        workers=4,
        max_queue=64,
        worker_pool=pool,
        default_deadline=30.0,
        sleep=_NO_SLEEP,
    )
    with service:
        for _ in range(requests):
            harness.submit(service.submit, plan)
        harness.collect()
    return harness.finish(service, details={"tier": pool.health()})


def burst_outage(seed: int = 0, quick: bool = True) -> ChaosReport:
    """Bursty transient faults, defeated by retries: zero client impact."""
    schema, instance, _query, plan, oracle = join_workload(
        "chaos_burst", bound_s=True
    )
    policy = FaultPolicy(
        seed=seed,
        unavailable_rate=0.3,
        timeout_rate=0.2,
        rate_limit_rate=0.1,
        burst=2,
    )
    source = FaultInjectingSource(InMemorySource(schema, instance), policy)
    requests = 8 if quick else 16
    harness = ScenarioHarness("burst_outage", seed, 60.0, oracle)
    service = QueryService(
        source,
        workers=4,
        max_queue=64,
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.001, max_delay=0.002, seed=seed
        ),
        default_deadline=30.0,
        sleep=_NO_SLEEP,
    )
    with service:
        for _ in range(requests):
            harness.submit(service.submit, plan)
        harness.collect()
    return harness.finish(
        service, details={"faults": source.stats.as_dict()}
    )


def permanent_outage(seed: int = 0, quick: bool = True) -> ChaosReport:
    """One hard-down method: one typed failure, one re-plan, recovery."""
    schema, instance, query, oracle = outage_workload("chaos_outage")
    policy = FaultPolicy.outage("primary_R", after=0, seed=seed)
    source = FaultInjectingSource(InMemorySource(schema, instance), policy)
    requests = 4 if quick else 8
    harness = ScenarioHarness("permanent_outage", seed, 60.0, oracle)
    service = QueryService(
        source,
        workers=2,
        max_queue=64,
        plan_cache=PlanCache(capacity=8),
        default_deadline=30.0,
        sleep=_NO_SLEEP,
    )
    with service:
        # First request rides the healthy plan into the outage: one
        # typed failure, and the method-health registry learns.
        harness.submit(service.submit_query, query)
        harness.collect()
        # Tickets resolve *before* the outage is folded into the
        # registry; wait for the books to settle so the next plan
        # definitely sees the dead set.
        service.wait_idle(timeout=10.0)
        # Every later request re-plans over the surviving schema --
        # exactly one search (the degraded cache key misses once).
        for _ in range(requests):
            harness.submit(service.submit_query, query)
        harness.collect()
        mid_health = service.health().as_dict()
        # Recovery: the backend outage ends (a clean schedule replaces
        # the dead one) and an operator/probe declares the method back.
        source.policy = FaultPolicy(seed=seed)
        service.mark_method_recovered("primary_R")
        for _ in range(2):
            harness.submit(service.submit_query, query)
        harness.collect()
    return harness.finish(
        service,
        details={
            "during_outage": mid_health["method_health"],
            "degraded_responses": sum(
                1 for r in harness.responses if r.degraded
            ),
        },
    )


def http_rate_limit_storm(seed: int = 0, quick: bool = True) -> ChaosReport:
    """A burst of concurrent requests slams a rate-limited web service.

    The stub transport polices a tiny token bucket, so the storm is
    *guaranteed* to trip it (``over_budget`` counts the 429s); the
    :class:`~repro.sources.HTTPSource` client honours every
    ``Retry-After`` (millisecond-scale waits) and follows pagination,
    so despite the policing every answer matches the oracle exactly
    and nothing surfaces to clients -- rate limiting degrades latency,
    never soundness.
    """
    schema, instance, _query, plan, oracle = join_workload("chaos_http")
    transport = StubTransport(
        schema, instance, page_size=5, rate_limit=500.0, burst=2.0
    )
    source = HTTPSource(transport, max_retry_after_waits=64)
    requests = 8 if quick else 16
    harness = ScenarioHarness("http_rate_limit_storm", seed, 60.0, oracle)
    service = QueryService(
        source,
        workers=4,
        max_queue=64,
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.001, max_delay=0.002, seed=seed
        ),
        default_deadline=30.0,
        sleep=_NO_SLEEP,
    )
    with service:
        for _ in range(requests):
            harness.submit(service.submit, plan)
        harness.collect()
    return harness.finish(
        service,
        details={
            "transport": transport.counters(),
            "retry_after_waits": source.retry_after_waits,
            "snapshot_restarts": source.snapshot_restarts,
        },
    )


def sqlite_disconnect(seed: int = 0, quick: bool = True) -> ChaosReport:
    """The SQLite backend loses its connection mid-plan, repeatedly.

    ``drop_every=3`` severs the connection before every third
    statement, so nearly every plan run hits at least one dead
    connection *between its own accesses*.  Reconnect-with-backoff
    reloads the retained snapshot (same epoch -- a reconnect is not a
    mutation), so every answer is byte-identical to the oracle and the
    only trace is the ``reconnects`` counter.
    """
    schema, instance, _query, plan, oracle = join_workload(
        "chaos_sqlite", bound_s=True
    )
    source = SQLiteSource(
        schema, instance, drop_every=3, sleep=_NO_SLEEP
    )
    requests = 8 if quick else 16
    harness = ScenarioHarness("sqlite_disconnect", seed, 60.0, oracle)
    service = QueryService(
        source,
        workers=4,
        max_queue=64,
        retry=RetryPolicy(
            max_attempts=4, base_delay=0.001, max_delay=0.002, seed=seed
        ),
        default_deadline=30.0,
        sleep=_NO_SLEEP,
    )
    with service:
        for _ in range(requests):
            harness.submit(service.submit, plan)
        harness.collect()
    report = harness.finish(
        service,
        details={
            "reconnects": source.reconnects,
            "statements": source._statements,
            "batched_calls": source.batched_calls,
        },
    )
    assert source.reconnects > 0, (
        "the disconnect scenario must actually sever connections"
    )
    return report


def disk_corruption(seed: int = 0, quick: bool = True) -> ChaosReport:
    """Rot the plan cache + calibration store between service generations.

    Also plants a torn temp file (a crash mid atomic write leaves
    ``<key>.json.tmp.<pid>`` behind, never a half-written entry --
    that is the point of the write-then-rename protocol) and truncates
    the calibration store as a torn rename would.  The next generation
    must quarantine both, re-plan once, and serve oracle answers.
    """
    schema, instance, query, _plan, oracle = join_workload("chaos_disk")
    workdir = tempfile.mkdtemp(prefix="repro-chaos-disk-")
    cache_dir = os.path.join(workdir, "plans")
    calib_path = os.path.join(workdir, "calibration.json")
    requests = 2 if quick else 4
    harness = ScenarioHarness("disk_corruption", seed, 60.0, oracle)
    try:
        # Generation 1: warm both disk tiers through real serving.
        warm = QueryService(
            InMemorySource(schema, instance),
            workers=2,
            plan_cache=PlanCache(capacity=8, directory=cache_dir),
            calibration=CalibrationStore(path=calib_path),
            default_deadline=30.0,
            sleep=_NO_SLEEP,
        )
        with warm:
            for _ in range(requests):
                harness.submit(warm.submit_query, query)
            harness.collect()
        harness.carry_over(warm)
        warm_health = warm.health().as_dict()
        # The corruption: flip a byte mid-entry, truncate the
        # calibration store mid-file, leave a torn temp file behind.
        for name in os.listdir(cache_dir):
            if not name.endswith(".json"):
                continue
            path = os.path.join(cache_dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            mid = len(data) // 2
            flip = b"Y" if data[mid : mid + 1] == b"X" else b"X"
            with open(path, "wb") as handle:
                handle.write(data[:mid] + flip + data[mid + 1 :])
            with open(f"{path}.tmp.9999", "w", encoding="utf-8") as torn:
                torn.write('{"format": "repro.plan-cache", "ver')
        with open(calib_path, "rb") as handle:
            calib_bytes = handle.read()
        with open(calib_path, "wb") as handle:
            handle.write(calib_bytes[: len(calib_bytes) // 2])
        # Generation 2: fresh tiers over the rotten files.
        plan_cache = PlanCache(capacity=8, directory=cache_dir)
        calibration = CalibrationStore(path=calib_path)
        service = QueryService(
            InMemorySource(schema, instance),
            workers=2,
            plan_cache=plan_cache,
            calibration=calibration,
            default_deadline=30.0,
            sleep=_NO_SLEEP,
        )
        with service:
            for _ in range(requests):
                harness.submit(service.submit_query, query)
            harness.collect()
        return harness.finish(
            service,
            details={
                "generation1": {
                    "served": warm_health["served"],
                    "planned": warm_health["planned"],
                },
                "plan_cache": plan_cache.counters(),
                "calibration": calibration.counters(),
            },
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


#: The scenario matrix: name -> builder(seed, quick) -> ChaosReport.
SCENARIO_BUILDERS: Dict[str, object] = {
    "worker_kill": worker_kill,
    "worker_stall": worker_stall,
    "latency_storm": latency_storm,
    "burst_outage": burst_outage,
    "permanent_outage": permanent_outage,
    "http_rate_limit_storm": http_rate_limit_storm,
    "sqlite_disconnect": sqlite_disconnect,
    "disk_corruption": disk_corruption,
}

SCENARIOS: Tuple[str, ...] = tuple(SCENARIO_BUILDERS)
