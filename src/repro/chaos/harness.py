"""The scenario harness: submit, collect, bucket, verify, report.

:class:`ScenarioHarness` is the shared driver every chaos scenario
runs inside.  It owns the scenario's wall-clock budget, funnels every
submission through one choke point (so nothing escapes accounting),
buckets every terminal outcome, checks every resolved response against
the clean oracle, and folds the whole run into a :class:`ChaosReport`
-- the JSON-able artifact the tests assert on and
``benchmarks/bench_chaos.py`` serializes.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.chaos.invariants import (
    OUTCOMES,
    InvariantViolation,
    verify_accounting,
    verify_response,
)
from repro.errors import ReproError, ServiceOverloaded, ServiceStopped
from repro.service.request import Ticket


@dataclass
class ChaosReport:
    """Everything one chaos scenario run observed, JSON-able."""

    scenario: str
    seed: int
    submitted: int
    outcomes: Dict[str, int]
    #: Tickets still unresolved when the scenario deadline passed --
    #: always 0 on a passing run (each one is also a termination
    #: violation).
    hangs: int
    #: Typed error class name -> count, over every failed outcome.
    error_types: Dict[str, int]
    elapsed: float
    deadline: float
    violations: List[InvariantViolation]
    health: Dict[str, Any]
    #: Scenario-specific extras (pool health, fault stats, cache
    #: counters ...) -- whatever the scenario wants asserted on.
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held and nothing hung."""
        return not self.violations and self.hangs == 0

    def summary(self) -> str:
        """A one-line human-readable digest."""
        buckets = ", ".join(
            f"{key}={self.outcomes.get(key, 0)}"
            for key in OUTCOMES
            if self.outcomes.get(key)
        )
        return (
            f"{self.scenario}[seed={self.seed}]: "
            f"{'OK' if self.ok else 'VIOLATED'} -- "
            f"{self.submitted} submitted ({buckets or 'nothing'}), "
            f"{self.hangs} hangs, {len(self.violations)} violations, "
            f"{self.elapsed:.2f}s/{self.deadline:.0f}s"
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-able representation (for BENCH_chaos.json)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "submitted": self.submitted,
            "outcomes": dict(self.outcomes),
            "hangs": self.hangs,
            "error_types": dict(self.error_types),
            "elapsed": self.elapsed,
            "deadline": self.deadline,
            "violations": [v.as_dict() for v in self.violations],
            "health": self.health,
            "details": self.details,
        }


class ScenarioHarness:
    """Drive one scenario against a live service, enforcing invariants.

    Usage shape::

        harness = ScenarioHarness("worker_kill", seed, 60.0, oracle_rows)
        with service:
            harness.submit(service.submit, plan)
            ...inject chaos...
            harness.collect()
        report = harness.finish(service, details={...})

    Every submission goes through :meth:`submit` (door rejections are
    bucketed, typed-ness is checked); every ticket is awaited by
    :meth:`collect` under the scenario's *remaining* budget, so a hung
    request becomes a ``termination`` violation instead of hanging the
    harness itself.
    """

    def __init__(
        self,
        scenario: str,
        seed: int,
        deadline_seconds: float,
        oracle_rows: FrozenSet,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.deadline_seconds = deadline_seconds
        self.oracle_rows = oracle_rows
        self.started = time.monotonic()
        self.submitted = 0
        self.outcomes: Counter = Counter()
        self.error_types: Counter = Counter()
        self.hangs = 0
        self.violations: List[InvariantViolation] = []
        self.responses: List = []
        self._tickets: List[Ticket] = []
        self._carried_served = 0
        self._carried_shed = 0

    def remaining(self) -> float:
        """Seconds left in the scenario's wall-clock budget."""
        return max(
            0.0, self.deadline_seconds - (time.monotonic() - self.started)
        )

    # ---------------------------------------------------------- driving
    def submit(self, submit_fn: Callable[..., Ticket], *args, **kwargs):
        """Submit one request through the service's own entry point.

        Door rejections are terminal outcomes too: a typed raise
        buckets as ``rejected``; an *untyped* raise is a ``typed``
        violation on top.  Returns the ticket, or None when rejected.
        """
        self.submitted += 1
        try:
            ticket = submit_fn(*args, **kwargs)
        except ReproError as error:
            self.outcomes["rejected"] += 1
            self.error_types[type(error).__name__] += 1
            return None
        except Exception as error:  # noqa: BLE001 -- that IS the check
            self.outcomes["rejected"] += 1
            self.error_types[type(error).__name__] += 1
            self.violations.append(
                InvariantViolation(
                    "typed",
                    f"submission raised untyped "
                    f"{type(error).__name__}: {error}",
                )
            )
            return None
        self._tickets.append(ticket)
        return ticket

    def collect(self, oracle_rows: Optional[FrozenSet] = None) -> None:
        """Await every outstanding ticket within the remaining budget.

        A ticket that does not resolve in time is a hang: counted,
        reported as a ``termination`` violation, and *left behind* --
        the harness never blocks past the scenario deadline (a small
        grace period covers scheduler noise at the boundary).
        """
        oracle = self.oracle_rows if oracle_rows is None else oracle_rows
        tickets, self._tickets = self._tickets, []
        for ticket in tickets:
            try:
                response = ticket.result(timeout=self.remaining() + 2.0)
            except TimeoutError:
                self.hangs += 1
                self.violations.append(
                    InvariantViolation(
                        "termination",
                        f"{ticket.request.request_id}: unresolved when "
                        f"the {self.deadline_seconds:.0f}s scenario "
                        "deadline passed",
                    )
                )
                continue
            self.responses.append(response)
            self._bucket(response)
            self.violations.extend(verify_response(response, oracle))

    def _bucket(self, response) -> None:
        error = response.error
        if error is not None:
            self.error_types[type(error).__name__] += 1
            if isinstance(error, (ServiceOverloaded, ServiceStopped)):
                # Resolved through the shed path (preemption, stop).
                self.outcomes["shed"] += 1
            else:
                self.outcomes["failed"] += 1
        elif response.complete:
            self.outcomes["complete"] += 1
        elif response.partial:
            self.outcomes["partial"] += 1
        else:
            # Unmarked answer: verify_response already flagged it; it
            # still needs a bucket so the accounting identity stands.
            self.outcomes["failed"] += 1

    def carry_over(self, service) -> None:
        """Fold a finished service generation's books into the run's.

        Restart scenarios (disk corruption) span two service
        generations; the accounting identity is over the whole run, so
        the retired generation's served/shed counters carry forward
        into :meth:`finish`'s check against the final generation.
        """
        try:
            service.wait_idle(timeout=10.0)
        except Exception:  # pragma: no cover -- stopped services are idle
            pass
        health = service.health().as_dict()
        self._carried_served += health.get("served", 0) or 0
        self._carried_shed += health.get("shed", 0) or 0

    # -------------------------------------------------------- reporting
    def finish(
        self, service, details: Optional[Dict[str, Any]] = None
    ) -> ChaosReport:
        """Close the run: final accounting check, report assembly."""
        self.collect()
        # Tickets resolve before the service folds them into its
        # counters; settle the books before snapshotting them.
        try:
            service.wait_idle(timeout=10.0)
        except Exception:  # pragma: no cover -- stopped services are idle
            pass
        elapsed = time.monotonic() - self.started
        health = service.health().as_dict()
        accounted = dict(self.outcomes)
        if self.hangs == 0:
            # With hangs the per-ticket books are knowingly short; the
            # termination violations already tell that story louder
            # than a second accounting mismatch would.
            checked = dict(health)
            checked["served"] = (
                (health.get("served", 0) or 0) + self._carried_served
            )
            checked["shed"] = (
                (health.get("shed", 0) or 0) + self._carried_shed
            )
            self.violations.extend(
                verify_accounting(self.submitted, accounted, checked)
            )
        if elapsed > self.deadline_seconds:
            self.violations.append(
                InvariantViolation(
                    "termination",
                    f"scenario overran its budget: {elapsed:.2f}s > "
                    f"{self.deadline_seconds:.0f}s",
                )
            )
        return ChaosReport(
            scenario=self.scenario,
            seed=self.seed,
            submitted=self.submitted,
            outcomes=accounted,
            hangs=self.hangs,
            error_types=dict(self.error_types),
            elapsed=elapsed,
            deadline=self.deadline_seconds,
            violations=list(self.violations),
            health=health,
            details=details or {},
        )
