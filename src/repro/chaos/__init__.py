"""Deterministic chaos engineering for the query service stack.

The paper's guarantee is *static*: every proof-derived plan computes
the certain answers on any execution of the accessible schema.  This
package tests the *dynamic* counterpart the serving stack added on top:
under injected chaos -- killed workers, stalled workers, latency
storms, bursty and permanent source outages, disk-tier corruption --
a live :class:`~repro.service.QueryService` must

* **terminate**: every submitted request reaches a terminal outcome
  within its deadline (zero hangs),
* **stay sound**: every answer it does produce is byte-identical to
  the clean oracle when marked ``complete`` and a subset of it when
  marked ``partial`` (zero silent divergences),
* **account for everything**: served + shed + rejected == submitted,
* **degrade typed**: every failure is a typed :mod:`repro.errors`
  class, every under-approximation explicitly marked.

Every scenario is seeded and deterministic (the fault schedules come
from :mod:`repro.faults`' keyed hashes, the storm schedules from
per-instance counters), so a chaos failure replays bit-for-bit.

Surface: :func:`~repro.chaos.runner.run_scenario` /
:func:`~repro.chaos.runner.run_matrix` drive one or all scenarios and
return :class:`~repro.chaos.runner.ChaosReport` objects;
``SCENARIOS`` names the matrix.
"""

from repro.chaos.invariants import (
    InvariantViolation,
    verify_accounting,
    verify_response,
)
from repro.chaos.runner import (
    SCENARIOS,
    ChaosReport,
    run_matrix,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "ChaosReport",
    "InvariantViolation",
    "run_matrix",
    "run_scenario",
    "verify_accounting",
    "verify_response",
]
