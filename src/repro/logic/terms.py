"""First-order terms: variables, schema constants, and labelled nulls.

Three disjoint kinds of term appear in the paper's development:

* :class:`Variable` -- a query variable (free or bound).
* :class:`Constant` -- a *schema constant*: a value the querier may use as a
  test value in accesses ("smith", 3, ...).  Schema constants are always
  accessible (Section 3 of the paper seeds the ``accessible`` relation with
  them).
* :class:`Null` -- a *labelled null*, called a "chase constant" in the
  paper.  Nulls are introduced by firing existential rules during the chase
  and name the columns of the temporary tables in generated plans.

All terms are immutable, hashable values, so they can live in frozen atoms,
sets and dictionary keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union


class _Orderable:
    """Cross-kind total order by printed form (stable output in tests)."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (Variable, Constant, Null)):
            return repr(self) < repr(other)
        return NotImplemented


@dataclass(frozen=True, slots=True)
class Variable(_Orderable):
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class Constant(_Orderable):
    """A schema constant (a concrete data value known to the querier)."""

    value: Union[str, int, float, bool]

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Null(_Orderable):
    """A labelled null ("chase constant").

    Nulls compare by name only.  Use :func:`fresh_null` or a
    :class:`NullFactory` to mint globally fresh ones.
    """

    name: str

    def __repr__(self) -> str:
        return f"_{self.name}"


Term = Union[Variable, Constant, Null]


class NullFactory:
    """Mints fresh labelled nulls with a shared prefix.

    A factory is the deterministic, instance-scoped alternative to the
    module-level :func:`fresh_null` counter: each chase run owns a factory
    so that re-running the same proof search produces the same null names
    (important for reproducible plans and for tests).
    """

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def __call__(self, hint: str = "") -> Null:
        index = next(self._counter)
        if hint:
            return Null(f"{self._prefix}{index}_{hint}")
        return Null(f"{self._prefix}{index}")


_GLOBAL_FACTORY = NullFactory(prefix="g")


def fresh_null(hint: str = "") -> Null:
    """Mint a fresh null from the module-level counter."""
    return _GLOBAL_FACTORY(hint)


def reset_null_counter() -> None:
    """Reset the module-level null counter (test isolation helper)."""
    global _GLOBAL_FACTORY
    _GLOBAL_FACTORY = NullFactory(prefix="g")


def is_ground(term: Term) -> bool:
    """A term is ground when it is not a variable."""
    return not isinstance(term, Variable)
