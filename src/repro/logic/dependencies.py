"""Tuple-generating dependencies (TGDs) and their subclasses.

A TGD ``forall x  phi(x) -> exists y rho(x, y)`` is stored as body and head
atom tuples.  The paper's executable algorithms work with:

* arbitrary TGDs (chase may diverge -- Algorithm 1 still applies with a
  depth bound),
* **Guarded TGDs** -- the body has an atom containing every body variable;
  these admit the guarded-bag blocking of Section 5 and make plan existence
  decidable (2EXPTIME),
* **inclusion dependencies** (referential constraints) -- single-atom body
  and head with no repeated variables or constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Term, Variable


class DependencyError(ValueError):
    """Raised for malformed dependencies."""


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body -> exists(head)``."""

    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not self.body:
            raise DependencyError("TGD body must be non-empty")
        if not self.head:
            raise DependencyError("TGD head must be non-empty")
        if not self.name:
            object.__setattr__(self, "name", self._default_name())

    def _default_name(self) -> str:
        body = ",".join(a.relation for a in self.body)
        head = ",".join(a.relation for a in self.head)
        return f"{body}=>{head}"

    def body_variables(self) -> FrozenSet[Variable]:
        """All variables of the body."""
        out: Set[Variable] = set()
        for atom in self.body:
            out.update(atom.variables())
        return frozenset(out)

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables of the head."""
        out: Set[Variable] = set()
        for atom in self.head:
            out.update(atom.variables())
        return frozenset(out)

    def frontier(self) -> FrozenSet[Variable]:
        """Variables shared between body and head (the exported ones)."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """Head variables bound by the existential quantifier."""
        return self.head_variables() - self.body_variables()

    @property
    def is_full(self) -> bool:
        """Full TGDs introduce no existential variables."""
        return not self.existential_variables()

    @property
    def is_guarded(self) -> bool:
        """True when some body atom contains every body variable."""
        body_vars = self.body_variables()
        return any(
            body_vars <= set(atom.variables()) for atom in self.body
        )

    @property
    def guard(self) -> Optional[Atom]:
        """A body atom containing every body variable, if one exists."""
        body_vars = self.body_variables()
        for atom in self.body:
            if body_vars <= set(atom.variables()):
                return atom
        return None

    @property
    def is_inclusion_dependency(self) -> bool:
        """Single-atom body and head, no constants or repeated variables."""
        if len(self.body) != 1 or len(self.head) != 1:
            return False
        for atom in (self.body[0], self.head[0]):
            if any(isinstance(t, Constant) for t in atom.terms):
                return False
            if len(set(atom.terms)) != len(atom.terms):
                return False
        return True

    def relations(self) -> FrozenSet[str]:
        """Relation names mentioned on either side."""
        return frozenset(
            atom.relation for atom in self.body + self.head
        )

    def rename_relations(self, renaming: Dict[str, str]) -> "TGD":
        """Copy of this TGD with relations renamed on both sides."""
        return TGD(
            tuple(
                a.rename_relation(renaming.get(a.relation, a.relation))
                for a in self.body
            ),
            tuple(
                a.rename_relation(renaming.get(a.relation, a.relation))
                for a in self.head
            ),
            name=f"{self.name}'",
        )

    def __repr__(self) -> str:
        body = " & ".join(repr(a) for a in self.body)
        head = " & ".join(repr(a) for a in self.head)
        exists = sorted(v.name for v in self.existential_variables())
        prefix = f"exists {','.join(exists)} " if exists else ""
        return f"[{self.name}] {body} -> {prefix}{head}"


def inclusion_dependency(
    source: str,
    source_positions: Sequence[int],
    target: str,
    target_positions: Sequence[int],
    source_arity: int,
    target_arity: int,
    name: str = "",
) -> TGD:
    """Build a referential constraint ``source[sp] subseteq target[tp]``.

    Positions are 0-based.  Every non-exported position becomes a distinct
    variable (existential on the target side).
    """
    if len(source_positions) != len(target_positions):
        raise DependencyError("position lists must have equal length")
    body_terms: list = [Variable(f"x{i}") for i in range(source_arity)]
    head_terms: list = [Variable(f"y{i}") for i in range(target_arity)]
    for sp, tp in zip(source_positions, target_positions):
        if not 0 <= sp < source_arity or not 0 <= tp < target_arity:
            raise DependencyError("position out of range")
        head_terms[tp] = body_terms[sp]
    return TGD(
        (Atom(source, tuple(body_terms)),),
        (Atom(target, tuple(head_terms)),),
        name=name or f"{source}->{target}",
    )


_ATOM_RE = re.compile(r"([A-Za-z_][\w]*)\s*\(([^)]*)\)")


def parse_tgd(text: str, name: str = "") -> TGD:
    """Parse ``"R(x,y) & S(y) -> T(x,z)"`` into a TGD.

    Lower-case bare identifiers are variables; quoted strings and numbers
    are schema constants.
    """
    if "->" not in text:
        raise DependencyError(f"missing '->' in {text!r}")
    body_text, head_text = text.split("->", 1)
    body = tuple(_parse_atoms(body_text))
    head = tuple(_parse_atoms(head_text))
    if not body or not head:
        raise DependencyError(f"could not parse atoms from {text!r}")
    return TGD(body, head, name=name)


def _parse_atoms(text: str) -> Iterable[Atom]:
    for match in _ATOM_RE.finditer(text):
        relation = match.group(1)
        raw_terms = [t.strip() for t in match.group(2).split(",") if t.strip()]
        yield Atom(relation, tuple(_parse_term(t) for t in raw_terms))


def _parse_term(token: str) -> Term:
    if token.startswith(("'", '"')) and token.endswith(("'", '"')):
        return Constant(token[1:-1])
    try:
        return Constant(int(token))
    except ValueError:
        pass
    return Variable(token)
