"""Classical conjunctive-query containment and minimization.

``Q1 is contained in Q2`` (every instance's Q1-answers are Q2-answers) holds
iff there is a containment mapping: a homomorphism from Q2's atoms into the
canonical database of Q1 sending Q2's head to Q1's head (Chandra-Merkurjev
classic).  Containment *under constraints* is provided by
``repro.chase.reasoning``, which chases the canonical database first.

Minimization computes the core of the query by repeatedly looking for a
fold that drops an atom.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import FactIndex, find_homomorphism
from repro.logic.queries import ConjunctiveQuery, QueryError
from repro.logic.terms import Null, Term, Variable


def containment_mapping(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> Optional[Substitution]:
    """A homomorphism witnessing ``contained subseteq container``.

    Maps the *container*'s atoms into the canonical database of the
    *contained* query, fixing head variables pairwise.
    """
    if len(container.head) != len(contained.head):
        return None
    facts, frozen = contained.canonical_database(prefix="can")
    index = FactIndex(facts)
    seed = Substitution(
        {
            cv: frozen[dv]
            for cv, dv in zip(container.head, contained.head)
        }
    )
    return find_homomorphism(list(container.atoms), index, seed)


def is_contained_in(
    contained: ConjunctiveQuery, container: ConjunctiveQuery
) -> bool:
    """``contained subseteq container`` over all instances (no constraints)."""
    return containment_mapping(container, contained) is not None


def is_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Mutual containment."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of the query: an equivalent subquery with minimal atoms.

    Repeatedly tries to remove one atom while retaining an endomorphism of
    the original query into the candidate subquery that fixes the head.
    """
    atoms: List[Atom] = list(query.atoms)
    changed = True
    while changed:
        changed = False
        for i in range(len(atoms)):
            candidate = atoms[:i] + atoms[i + 1:]
            if not candidate:
                continue
            if not _head_preserved(query.head, candidate):
                continue
            trial = ConjunctiveQuery(query.head, tuple(candidate), query.name)
            if _folds_into(query, trial):
                atoms = candidate
                changed = True
                break
    return ConjunctiveQuery(query.head, tuple(atoms), query.name)


def _head_preserved(head: Tuple[Variable, ...], atoms: List[Atom]) -> bool:
    remaining: set = set()
    for atom in atoms:
        remaining.update(atom.variables())
    return all(v in remaining for v in head)


def _folds_into(query: ConjunctiveQuery, sub: ConjunctiveQuery) -> bool:
    """True if query's atoms map homomorphically into sub's canonical db."""
    facts, frozen = sub.canonical_database(prefix="core")
    index = FactIndex(facts)
    seed = Substitution({v: frozen[v] for v in query.head})
    return find_homomorphism(list(query.atoms), index, seed) is not None
