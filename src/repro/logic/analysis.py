"""Static analysis of TGD sets: termination and structure.

The chase does not terminate for arbitrary TGDs; the standard sufficient
condition is **weak acyclicity** (Fagin, Kolaitis, Miller, Popa): build
the position dependency graph --

* a node per (relation, position),
* a *normal* edge from body position p to head position q whenever a
  universally-quantified variable occurs at p and is copied to q,
* a *special* edge from p to q whenever a variable at p occurs in a head
  atom that also introduces an existential variable at q --

and require that no cycle passes through a special edge.  Weakly acyclic
sets have a polynomially-bounded chase, so the planner can saturate
without blocking or budgets.

``analyze_constraints`` bundles this with the guardedness / inclusion-
dependency classification used by the paper (§5), and
``repro.planner.answerability.default_policy_for`` consults it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.logic.dependencies import TGD
from repro.logic.terms import Variable

Position = Tuple[str, int]


def position_dependency_graph(
    constraints: Sequence[TGD],
) -> "nx.DiGraph":
    """The FKMP position graph; edges carry ``special`` booleans."""
    graph = nx.DiGraph()
    for tgd in constraints:
        body_positions: List[Tuple[Variable, Position]] = []
        for atom in tgd.body:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    body_positions.append((term, (atom.relation, index)))
        existentials = tgd.existential_variables()
        head_var_positions: List[Tuple[Variable, Position]] = []
        head_exist_positions: List[Position] = []
        for atom in tgd.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    position = (atom.relation, index)
                    if term in existentials:
                        head_exist_positions.append(position)
                    else:
                        head_var_positions.append((term, position))
        for variable, source in body_positions:
            if variable not in tgd.frontier():
                continue
            for head_variable, target in head_var_positions:
                if head_variable == variable:
                    _add_edge(graph, source, target, special=False)
            for target in head_exist_positions:
                _add_edge(graph, source, target, special=True)
    return graph


def _add_edge(
    graph: "nx.DiGraph", source: Position, target: Position, special: bool
) -> None:
    if graph.has_edge(source, target):
        if special:
            graph[source][target]["special"] = True
    else:
        graph.add_edge(source, target, special=special)


def is_weakly_acyclic(constraints: Sequence[TGD]) -> bool:
    """True when no cycle of the position graph uses a special edge."""
    graph = position_dependency_graph(constraints)
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            node = next(iter(component))
            if not graph.has_edge(node, node):
                continue
        subgraph = graph.subgraph(component)
        if any(
            data.get("special", False)
            for _u, _v, data in subgraph.edges(data=True)
        ):
            return False
    return True


@dataclass(frozen=True)
class ConstraintAnalysis:
    """Summary of a TGD set's structure."""

    total: int
    full_tgds: int
    inclusion_dependencies: int
    guarded: bool
    weakly_acyclic: bool

    @property
    def chase_terminates(self) -> bool:
        """A *sufficient* static guarantee of chase termination."""
        return self.weakly_acyclic

    def describe(self) -> str:
        """A human-readable multi-line description."""
        notes = []
        if self.weakly_acyclic:
            notes.append("weakly acyclic (chase terminates)")
        if self.guarded:
            notes.append("guarded (blocking applies)")
        return (
            f"{self.total} TGDs ({self.full_tgds} full, "
            f"{self.inclusion_dependencies} inclusion dependencies)"
            + (": " + ", ".join(notes) if notes else "")
        )


def analyze_constraints(constraints: Sequence[TGD]) -> ConstraintAnalysis:
    """Classify a constraint set for planner policy selection."""
    constraints = list(constraints)
    return ConstraintAnalysis(
        total=len(constraints),
        full_tgds=sum(1 for tgd in constraints if tgd.is_full),
        inclusion_dependencies=sum(
            1 for tgd in constraints if tgd.is_inclusion_dependency
        ),
        guarded=all(tgd.is_guarded for tgd in constraints),
        weakly_acyclic=is_weakly_acyclic(constraints),
    )
