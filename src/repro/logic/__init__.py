"""Logical substrate: terms, atoms, queries, dependencies, homomorphisms.

This subpackage implements the classical database-theory toolkit the paper
builds on: first-order terms (variables, schema constants, labelled nulls),
relational atoms and facts, substitutions, conjunctive queries with their
canonical databases, homomorphism search, conjunctive-query containment and
minimization, and tuple-generating dependencies (TGDs) with the guardedness
hierarchy used in Section 5 of the paper.
"""

from repro.logic.terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    fresh_null,
    reset_null_counter,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.queries import ConjunctiveQuery, cq
from repro.logic.dependencies import (
    TGD,
    inclusion_dependency,
    parse_tgd,
)
from repro.logic.homomorphisms import (
    FactIndex,
    HomStats,
    extend_homomorphism,
    find_homomorphism,
    find_homomorphisms,
    find_homomorphisms_through,
)
from repro.logic.containment import (
    is_contained_in,
    is_equivalent,
    minimize,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "FactIndex",
    "HomStats",
    "Null",
    "NullFactory",
    "Substitution",
    "TGD",
    "Term",
    "Variable",
    "cq",
    "extend_homomorphism",
    "find_homomorphism",
    "find_homomorphisms",
    "find_homomorphisms_through",
    "fresh_null",
    "inclusion_dependency",
    "is_contained_in",
    "is_equivalent",
    "minimize",
    "parse_tgd",
    "reset_null_counter",
]
