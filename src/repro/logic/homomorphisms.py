"""Homomorphism search over fact collections.

The workhorse of the whole system: conjunctive-query evaluation, chase
trigger detection, containment checking, success detection in proof search
and the domination pruning of Algorithm 1 are all homomorphism problems.

A homomorphism here maps *mappable* terms (variables and, when requested,
labelled nulls) of a list of pattern atoms to the terms of a fact store, so
that every pattern atom becomes a stored fact.  Schema constants are rigid:
they always map to themselves.

The search is a classical backtracking join: at each step we pick the
pattern atom with the fewest unbound mappable terms (a cheap fail-first
heuristic) and scan only the candidate facts selected through a per-relation
index keyed by (position, term).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Null, Term, Variable


class FactIndex:
    """An indexed collection of facts.

    Facts are grouped by relation name and indexed by every
    ``(position, term)`` pair, which makes candidate selection during
    backtracking proportional to the number of actually-matching facts.
    """

    __slots__ = ("_by_relation", "_by_position", "_size")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_position: Dict[Tuple[str, int, Term], Set[Atom]] = {}
        self._size = 0
        for fact in facts:
            self.add(fact)

    def add(self, fact: Atom) -> bool:
        """Insert a fact; returns False if it was already present."""
        bucket = self._by_relation.setdefault(fact.relation, set())
        if fact in bucket:
            return False
        bucket.add(fact)
        for position, term in enumerate(fact.terms):
            key = (fact.relation, position, term)
            self._by_position.setdefault(key, set()).add(fact)
        self._size += 1
        return True

    def __len__(self) -> int:
        return self._size

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._by_relation.get(fact.relation, ())

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._by_relation.values():
            yield from bucket

    def relations(self) -> Iterable[str]:
        """Relation names with at least one indexed fact."""
        return self._by_relation.keys()

    def facts_of(self, relation: str) -> FrozenSet[Atom]:
        """The indexed facts of one relation."""
        return frozenset(self._by_relation.get(relation, ()))

    def candidates(
        self, atom: Atom, binding: Substitution, map_nulls: bool
    ) -> Iterable[Atom]:
        """Facts that could match ``atom`` under the current binding.

        Uses the most selective available (position, term) index entry;
        falls back to the full relation bucket when every position of the
        atom is still unbound.
        """
        bucket = self._by_relation.get(atom.relation)
        if not bucket:
            return ()
        best: Optional[Set[Atom]] = None
        for position, term in enumerate(atom.terms):
            image = _image_of(term, binding, map_nulls)
            if image is None:
                continue
            entry = self._by_position.get((atom.relation, position, image))
            if entry is None:
                return ()
            if best is None or len(entry) < len(best):
                best = entry
        return best if best is not None else bucket

    def copy(self) -> "FactIndex":
        """An independent copy of the index."""
        clone = FactIndex.__new__(FactIndex)
        clone._by_relation = {k: set(v) for k, v in self._by_relation.items()}
        clone._by_position = {k: set(v) for k, v in self._by_position.items()}
        clone._size = self._size
        return clone


def _image_of(
    term: Term, binding: Substitution, map_nulls: bool
) -> Optional[Term]:
    """The already-determined image of a pattern term, or None if free."""
    if isinstance(term, Variable) or (map_nulls and isinstance(term, Null)):
        return binding.get(term)
    return term


def _mappable(term: Term, map_nulls: bool) -> bool:
    return isinstance(term, Variable) or (map_nulls and isinstance(term, Null))


def extend_homomorphism(
    atom: Atom, fact: Atom, binding: Substitution, map_nulls: bool = False
) -> Optional[Substitution]:
    """Try to extend ``binding`` so that ``atom`` maps onto ``fact``.

    Returns the extended substitution, or None when the terms clash.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    current = binding
    for term, image in zip(atom.terms, fact.terms):
        if _mappable(term, map_nulls):
            bound = current.get(term)
            if bound is None:
                current = current.extended(term, image)
            elif bound != image:
                return None
        elif term != image:
            return None
    return current


def find_homomorphisms(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
) -> Iterator[Substitution]:
    """All homomorphisms of ``atoms`` into ``index`` extending ``binding``.

    ``map_nulls=True`` additionally treats labelled nulls in the pattern as
    mappable -- this is what containment checks and domination pruning need,
    where the pattern is itself a set of chase facts.
    """
    start = binding if binding is not None else Substitution()
    remaining = list(atoms)
    yield from _search(remaining, index, start, map_nulls)


def _search(
    remaining: List[Atom],
    index: FactIndex,
    binding: Substitution,
    map_nulls: bool,
) -> Iterator[Substitution]:
    if not remaining:
        yield binding
        return
    position = _pick_atom(remaining, binding, map_nulls)
    atom = remaining[position]
    rest = remaining[:position] + remaining[position + 1:]
    for fact in index.candidates(atom, binding, map_nulls):
        extended = extend_homomorphism(atom, fact, binding, map_nulls)
        if extended is not None:
            yield from _search(rest, index, extended, map_nulls)


def _pick_atom(
    remaining: Sequence[Atom], binding: Substitution, map_nulls: bool
) -> int:
    """Fail-first: pick the atom with the fewest unbound mappable terms."""
    best_index = 0
    best_score = None
    for i, atom in enumerate(remaining):
        unbound = sum(
            1
            for t in atom.terms
            if _mappable(t, map_nulls) and t not in binding
        )
        if unbound == 0:
            return i
        if best_score is None or unbound < best_score:
            best_score = unbound
            best_index = i
    return best_index


def find_homomorphism(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
) -> Optional[Substitution]:
    """The first homomorphism found, or None."""
    for hom in find_homomorphisms(atoms, index, binding, map_nulls):
        return hom
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
) -> bool:
    """Existence check for a homomorphism."""
    return find_homomorphism(atoms, index, binding, map_nulls) is not None
