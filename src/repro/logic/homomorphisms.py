"""Homomorphism search over fact collections.

The workhorse of the whole system: conjunctive-query evaluation, chase
trigger detection, containment checking, success detection in proof search
and the domination pruning of Algorithm 1 are all homomorphism problems.

A homomorphism here maps *mappable* terms (variables and, when requested,
labelled nulls) of a list of pattern atoms to the terms of a fact store, so
that every pattern atom becomes a stored fact.  Schema constants are rigid:
they always map to themselves.

The search is a classical backtracking join: at each step we pick the
pattern atom with the fewest unbound mappable terms (a cheap fail-first
heuristic) and scan only the candidate facts selected through a per-relation
index keyed by (position, term).

Two entry points drive the chase engine's semi-naive evaluation:

* :func:`find_homomorphisms_through` seeds the join at a fixed
  (pattern atom, fact) pivot, which is how delta-driven trigger search
  only enumerates matches that touch at least one newly derived fact;
* the ``snapshot`` flag makes candidate scans iterate over immutable
  copies, so a consumer may *add* facts to the index between yielded
  homomorphisms (streaming trigger firing) without invalidating the
  generators' iteration state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Null, Term, Variable


@dataclass
class HomStats:
    """Instrumentation counters for backtracking-join search.

    ``candidates_scanned`` counts facts examined as potential images of a
    pattern atom; ``backtracks`` counts the scans that clashed with the
    current binding (dead ends the join had to back out of).
    """

    candidates_scanned: int = 0
    backtracks: int = 0

    def absorb(self, other: "HomStats") -> None:
        """Accumulate another run's counters into this one."""
        self.candidates_scanned += other.candidates_scanned
        self.backtracks += other.backtracks


class FactIndex:
    """An indexed collection of facts.

    Facts are grouped by relation name and indexed by every
    ``(position, term)`` pair, which makes candidate selection during
    backtracking proportional to the number of actually-matching facts.

    The index also keeps an append-only insertion log: every fact gets a
    monotonically increasing *generation* (its position in the log), and
    :meth:`facts_since` returns the suffix added after a given generation.
    This is the delta that semi-naive chase evaluation joins through.

    Indexes support two flavours of duplication.  :meth:`copy` is a full
    deep copy.  :meth:`fork` is copy-on-write: the fork shares the
    parent's log as an immutable capped prefix segment and shares every
    per-relation and per-position bucket until one side mutates it
    (proof-search trees fork a configuration at every node expansion, and
    most buckets are never touched again on either side).
    """

    __slots__ = (
        "_by_relation",
        "_by_position",
        "_log",
        "_log_prefix",
        "_prefix_len",
        "_facts_of_cache",
        "_owned_rel",
        "_owned_pos",
    )

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_position: Dict[Tuple[str, int, Term], Set[Atom]] = {}
        self._log: List[Atom] = []
        # Shared, logically immutable (list, capped-length) log segments
        # inherited from fork ancestors; owners only ever append past the
        # cap, so reads below it are stable.
        self._log_prefix: Tuple[Tuple[List[Atom], int], ...] = ()
        self._prefix_len = 0
        self._facts_of_cache: Dict[str, FrozenSet[Atom]] = {}
        # None means "owns every bucket" (never forked); a set names the
        # buckets cloned since the last fork, everything else is shared.
        self._owned_rel: Optional[Set[str]] = None
        self._owned_pos: Optional[Set[Tuple[str, int, Term]]] = None
        for fact in facts:
            self.add(fact)

    def add(self, fact: Atom) -> bool:
        """Insert a fact; returns False if it was already present."""
        relation = fact.relation
        bucket = self._by_relation.get(relation)
        if bucket is None:
            bucket = set()
            self._by_relation[relation] = bucket
            if self._owned_rel is not None:
                self._owned_rel.add(relation)
        elif fact in bucket:
            return False
        elif self._owned_rel is not None and relation not in self._owned_rel:
            bucket = set(bucket)
            self._by_relation[relation] = bucket
            self._owned_rel.add(relation)
        bucket.add(fact)
        owned_pos = self._owned_pos
        for position, term in enumerate(fact.terms):
            key = (relation, position, term)
            entry = self._by_position.get(key)
            if entry is None:
                self._by_position[key] = {fact}
                if owned_pos is not None:
                    owned_pos.add(key)
                continue
            if owned_pos is not None and key not in owned_pos:
                entry = set(entry)
                self._by_position[key] = entry
                owned_pos.add(key)
            entry.add(fact)
        self._log.append(fact)
        self._facts_of_cache.pop(relation, None)
        return True

    @property
    def generation(self) -> int:
        """Number of facts ever inserted (facts are never removed)."""
        return self._prefix_len + len(self._log)

    def facts_since(self, generation: int) -> Tuple[Atom, ...]:
        """The facts inserted after ``generation``, in insertion order.

        The returned tuple is a stable snapshot: further insertions do not
        affect it, so callers may fire rules while iterating the delta.
        """
        if generation >= self._prefix_len:
            return tuple(self._log[generation - self._prefix_len:])
        out: List[Atom] = []
        offset = 0
        for segment, cap in self._log_prefix:
            if generation < offset + cap:
                out.extend(segment[max(0, generation - offset):cap])
            offset += cap
        out.extend(self._log)
        return tuple(out)

    def __len__(self) -> int:
        return self._prefix_len + len(self._log)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._by_relation.get(fact.relation, ())

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._by_relation.values():
            yield from bucket

    def relations(self) -> Iterable[str]:
        """Relation names with at least one indexed fact."""
        return self._by_relation.keys()

    def facts_of(self, relation: str) -> FrozenSet[Atom]:
        """The indexed facts of one relation.

        The frozenset is cached per relation and invalidated on insertion,
        so repeated queries between mutations share one snapshot.
        """
        cached = self._facts_of_cache.get(relation)
        if cached is None:
            cached = frozenset(self._by_relation.get(relation, ()))
            self._facts_of_cache[relation] = cached
        return cached

    def size_of(self, relation: str) -> int:
        """Number of facts of one relation, without materialising a set."""
        return len(self._by_relation.get(relation, ()))

    def facts_with(
        self, relation: str, position: int, term: Term
    ) -> Tuple[Atom, ...]:
        """Facts of ``relation`` holding ``term`` at ``position``.

        A public snapshot view of the per-position index; the planner's
        incremental candidate generation uses it to find the facts whose
        access-method inputs just became accessible.
        """
        entry = self._by_position.get((relation, position, term))
        return tuple(entry) if entry else ()

    def candidates(
        self,
        atom: Atom,
        binding: Substitution,
        map_nulls: bool,
        snapshot: bool = False,
    ) -> Iterable[Atom]:
        """Facts that could match ``atom`` under the current binding.

        Uses the most selective available (position, term) index entry;
        falls back to the full relation bucket when every position of the
        atom is still unbound.

        Without ``snapshot`` the *live* index set is returned -- cheap, but
        callers must not mutate the index while iterating it.  With
        ``snapshot=True`` an immutable tuple copy is returned, which is what
        streaming trigger enumeration uses so rule firings may insert facts
        between yielded matches.
        """
        bucket = self._by_relation.get(atom.relation)
        if not bucket:
            return ()
        best: Optional[Set[Atom]] = None
        for position, term in enumerate(atom.terms):
            image = _image_of(term, binding, map_nulls)
            if image is None:
                continue
            entry = self._by_position.get((atom.relation, position, image))
            if entry is None:
                return ()
            if best is None or len(entry) < len(best):
                best = entry
        chosen = best if best is not None else bucket
        return tuple(chosen) if snapshot else chosen

    def copy(self) -> "FactIndex":
        """An independent deep copy of the index."""
        clone = FactIndex.__new__(FactIndex)
        clone._by_relation = {k: set(v) for k, v in self._by_relation.items()}
        clone._by_position = {k: set(v) for k, v in self._by_position.items()}
        # Prefix segments are append-only and capped, so sharing them is
        # safe even under further mutation of either side.
        clone._log_prefix = self._log_prefix
        clone._prefix_len = self._prefix_len
        clone._log = list(self._log)
        clone._facts_of_cache = dict(self._facts_of_cache)
        clone._owned_rel = None
        clone._owned_pos = None
        return clone

    def fork(self) -> "FactIndex":
        """A copy-on-write copy sharing the log prefix and all buckets.

        After a fork both sides treat every current bucket as shared and
        clone a bucket the first time they mutate it, so forking costs one
        dict copy per index instead of one set copy per bucket.  The log
        is shared as an immutable capped segment; each side appends to its
        own tail, and :meth:`facts_since` stitches the view together.
        """
        clone = FactIndex.__new__(FactIndex)
        clone._by_relation = dict(self._by_relation)
        clone._by_position = dict(self._by_position)
        clone._facts_of_cache = dict(self._facts_of_cache)
        if self._log:
            clone._log_prefix = self._log_prefix + (
                (self._log, len(self._log)),
            )
        else:
            clone._log_prefix = self._log_prefix
        clone._prefix_len = self._prefix_len + len(self._log)
        clone._log = []
        clone._owned_rel = set()
        clone._owned_pos = set()
        # The parent's buckets are now shared too: it must clone before
        # mutating, or the fork would observe the change.
        self._owned_rel = set()
        self._owned_pos = set()
        return clone


def _image_of(
    term: Term, binding: Substitution, map_nulls: bool
) -> Optional[Term]:
    """The already-determined image of a pattern term, or None if free."""
    if isinstance(term, Variable) or (map_nulls and isinstance(term, Null)):
        return binding.get(term)
    return term


def _mappable(term: Term, map_nulls: bool) -> bool:
    return isinstance(term, Variable) or (map_nulls and isinstance(term, Null))


def extend_homomorphism(
    atom: Atom, fact: Atom, binding: Substitution, map_nulls: bool = False
) -> Optional[Substitution]:
    """Try to extend ``binding`` so that ``atom`` maps onto ``fact``.

    Returns the extended substitution, or None when the terms clash.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    current = binding
    for term, image in zip(atom.terms, fact.terms):
        if _mappable(term, map_nulls):
            bound = current.get(term)
            if bound is None:
                current = current.extended(term, image)
            elif bound != image:
                return None
        elif term != image:
            return None
    return current


def find_homomorphisms(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
    snapshot: bool = False,
    stats: Optional[HomStats] = None,
) -> Iterator[Substitution]:
    """All homomorphisms of ``atoms`` into ``index`` extending ``binding``.

    ``map_nulls=True`` additionally treats labelled nulls in the pattern as
    mappable -- this is what containment checks and domination pruning need,
    where the pattern is itself a set of chase facts.
    """
    start = binding if binding is not None else Substitution()
    remaining = list(atoms)
    yield from _search(remaining, index, start, map_nulls, snapshot, stats)


def find_homomorphisms_through(
    atoms: Sequence[Atom],
    index: FactIndex,
    pivot_atom: Atom,
    pivot_fact: Atom,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
    snapshot: bool = False,
    stats: Optional[HomStats] = None,
) -> Iterator[Substitution]:
    """Homomorphisms of ``atoms`` whose ``pivot_atom`` maps onto ``pivot_fact``.

    The semi-naive entry point: the pivot is bound *first*, so the
    backtracking join only explores matches whose image contains the pivot
    fact.  ``pivot_atom`` must be one of ``atoms``; one occurrence of it is
    consumed by the pivot, the remaining atoms are joined against the full
    index as usual.
    """
    remaining = list(atoms)
    try:
        remaining.remove(pivot_atom)
    except ValueError:
        raise ValueError(
            f"pivot atom {pivot_atom!r} is not among the pattern atoms"
        ) from None
    start = binding if binding is not None else Substitution()
    seeded = extend_homomorphism(pivot_atom, pivot_fact, start, map_nulls)
    if seeded is None:
        if stats is not None:
            stats.candidates_scanned += 1
            stats.backtracks += 1
        return
    yield from _search(remaining, index, seeded, map_nulls, snapshot, stats)


def _search(
    remaining: List[Atom],
    index: FactIndex,
    binding: Substitution,
    map_nulls: bool,
    snapshot: bool = False,
    stats: Optional[HomStats] = None,
) -> Iterator[Substitution]:
    if not remaining:
        yield binding
        return
    position = _pick_atom(remaining, binding, map_nulls)
    atom = remaining[position]
    rest = remaining[:position] + remaining[position + 1:]
    for fact in index.candidates(atom, binding, map_nulls, snapshot):
        if stats is not None:
            stats.candidates_scanned += 1
        extended = extend_homomorphism(atom, fact, binding, map_nulls)
        if extended is not None:
            yield from _search(rest, index, extended, map_nulls, snapshot, stats)
        elif stats is not None:
            stats.backtracks += 1


def _pick_atom(
    remaining: Sequence[Atom], binding: Substitution, map_nulls: bool
) -> int:
    """Fail-first: pick the atom with the fewest unbound mappable terms."""
    best_index = 0
    best_score = None
    for i, atom in enumerate(remaining):
        unbound = sum(
            1
            for t in atom.terms
            if _mappable(t, map_nulls) and t not in binding
        )
        if unbound == 0:
            return i
        if best_score is None or unbound < best_score:
            best_score = unbound
            best_index = i
    return best_index


def find_homomorphism(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
) -> Optional[Substitution]:
    """The first homomorphism found, or None."""
    for hom in find_homomorphisms(atoms, index, binding, map_nulls):
        return hom
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    index: FactIndex,
    binding: Optional[Substitution] = None,
    map_nulls: bool = False,
) -> bool:
    """Existence check for a homomorphism."""
    return find_homomorphism(atoms, index, binding, map_nulls) is not None
