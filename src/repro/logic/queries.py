"""Conjunctive queries and canonical databases.

A conjunctive query ``Q(x) = exists y (A1 and ... and An)`` is stored as a
tuple of head variables plus a tuple of atoms.  Boolean queries have an
empty head.  The *canonical database* of Q (Section 4 of the paper) freezes
each variable into a labelled null, producing the starting configuration of
every chase proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import FactIndex, find_homomorphisms
from repro.logic.terms import Constant, Null, Term, Variable


class QueryError(ValueError):
    """Raised for malformed conjunctive queries."""


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with explicit head (free) variables."""

    head: Tuple[Variable, ...]
    atoms: Tuple[Atom, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        body_variables = self.variables()
        for variable in self.head:
            if variable not in body_variables:
                raise QueryError(
                    f"head variable {variable!r} does not occur in the body"
                )
        if len(set(self.head)) != len(self.head):
            raise QueryError("repeated head variable")

    @property
    def is_boolean(self) -> bool:
        """True when the query has no head (free) variables."""
        return not self.head

    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the body."""
        out: Set[Variable] = set()
        for atom in self.atoms:
            out.update(atom.variables())
        return frozenset(out)

    def existential_variables(self) -> FrozenSet[Variable]:
        """Body variables that are not in the head."""
        return self.variables() - set(self.head)

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants mentioned in the body."""
        out: Set[Constant] = set()
        for atom in self.atoms:
            out.update(atom.constants())
        return frozenset(out)

    def relations(self) -> FrozenSet[str]:
        """Relation names mentioned in the body."""
        return frozenset(atom.relation for atom in self.atoms)

    def canonical_database(
        self, prefix: Optional[str] = None
    ) -> Tuple[Tuple[Atom, ...], Dict[Variable, Null]]:
        """Freeze variables into nulls.

        Returns the canonical facts and the variable-to-null mapping; the
        nulls for head variables are the "constants corresponding to the
        free variables" that chase-proof matches must preserve.
        """
        tag = prefix if prefix is not None else self.name
        mapping = {
            variable: Null(f"{tag}_{variable.name}")
            for variable in sorted(self.variables(), key=lambda v: v.name)
        }
        substitution = Substitution(dict(mapping))
        facts = tuple(atom.apply(substitution) for atom in self.atoms)
        return facts, mapping

    def evaluate(self, index: FactIndex) -> Set[Tuple[Term, ...]]:
        """All head-variable tuples witnessed in the fact index."""
        results: Set[Tuple[Term, ...]] = set()
        for hom in find_homomorphisms(self.atoms, index):
            results.add(tuple(hom[v] for v in self.head))
        return results

    def holds_in(self, index: FactIndex) -> bool:
        """Boolean satisfaction (exists at least one match)."""
        for _ in find_homomorphisms(self.atoms, index):
            return True
        return False

    def substitute(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to body atoms; head variables must survive."""
        new_head = []
        for variable in self.head:
            image = substitution.get(variable, variable)
            if not isinstance(image, Variable):
                raise QueryError(
                    f"substitution maps head variable {variable!r} "
                    f"to non-variable {image!r}"
                )
            new_head.append(image)
        return ConjunctiveQuery(
            tuple(new_head),
            tuple(atom.apply(substitution) for atom in self.atoms),
            self.name,
        )

    def rename_relations(self, renaming: Dict[str, str]) -> "ConjunctiveQuery":
        """Rename relations (e.g. R -> InfAcc_R) throughout the body."""
        return ConjunctiveQuery(
            self.head,
            tuple(
                atom.rename_relation(renaming.get(atom.relation, atom.relation))
                for atom in self.atoms
            ),
            self.name,
        )

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head)
        body = " & ".join(repr(a) for a in self.atoms)
        return f"{self.name}({head}) :- {body}"


def cq(
    head: Sequence[str],
    atoms: Iterable[Tuple[str, Sequence[object]]],
    name: str = "Q",
) -> ConjunctiveQuery:
    """Concise query builder.

    Terms are given as plain Python values: strings starting with ``?`` are
    variables, everything else is a schema constant::

        cq(["?phone"], [("Direct2", ["?uname", "?addr", "?phone"])])
    """
    built = tuple(
        Atom(relation, tuple(_term_of(raw) for raw in terms))
        for relation, terms in atoms
    )
    head_vars = tuple(_variable_of(raw) for raw in head)
    return ConjunctiveQuery(head_vars, built, name)


def _term_of(raw: object) -> Term:
    if isinstance(raw, (Variable, Constant, Null)):
        return raw
    if isinstance(raw, str) and raw.startswith("?"):
        return Variable(raw[1:])
    if isinstance(raw, (str, int, float, bool)):
        return Constant(raw)
    raise QueryError(f"cannot interpret term {raw!r}")


def _variable_of(raw: object) -> Variable:
    if isinstance(raw, Variable):
        return raw
    if isinstance(raw, str):
        return Variable(raw[1:] if raw.startswith("?") else raw)
    raise QueryError(f"cannot interpret head variable {raw!r}")


import re as _re

_HEAD_RE = _re.compile(r"^\s*([A-Za-z_]\w*)\s*\(([^)]*)\)\s*$")
_BODY_ATOM_RE = _re.compile(r"([A-Za-z_]\w*)\s*\(([^)]*)\)")


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse Datalog-style text into a conjunctive query.

    ::

        parse_cq("q(phone) :- Direct2(uname, addr, phone)")
        parse_cq("q() :- R(x, 'smith'), S(x)")     # boolean
        parse_cq("R(x), S(x)")                      # boolean shorthand

    Bare identifiers are variables; quoted strings and numbers are schema
    constants.  The query name is the head predicate.
    """
    name = "Q"
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        match = _HEAD_RE.match(head_text)
        if match is None:
            raise QueryError(f"malformed head {head_text!r}")
        name = match.group(1)
        head = [
            token.strip()
            for token in match.group(2).split(",")
            if token.strip()
        ]
    else:
        body_text = text
        head = []
    atoms = []
    for match in _BODY_ATOM_RE.finditer(body_text):
        relation = match.group(1)
        tokens = [
            token.strip()
            for token in match.group(2).split(",")
            if token.strip()
        ]
        atoms.append(
            Atom(relation, tuple(_parse_text_term(t) for t in tokens))
        )
    if not atoms:
        raise QueryError(f"no body atoms in {text!r}")
    head_vars = tuple(Variable(h) for h in head)
    return ConjunctiveQuery(head_vars, tuple(atoms), name=name)


def _parse_text_term(token: str) -> Term:
    if token.startswith(("'", '"')) and token.endswith(("'", '"')):
        return Constant(token[1:-1])
    try:
        return Constant(int(token))
    except ValueError:
        pass
    return Variable(token)
