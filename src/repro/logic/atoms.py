"""Relational atoms, facts, and substitutions.

An :class:`Atom` is a relation name applied to a tuple of terms.  A *fact*
is an atom with no variables (its terms are constants and labelled nulls).
A :class:`Substitution` maps variables -- and, during homomorphism search
over chase configurations, nulls -- to terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.logic.terms import Constant, Null, Term, Variable


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``relation(t1, ..., tn)``."""

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def is_fact(self) -> bool:
        """True when the atom contains no variables."""
        return not any(isinstance(t, Variable) for t in self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """The variables of the atom, in order of first occurrence."""
        seen: Dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen[term] = None
        return tuple(seen)

    def nulls(self) -> Tuple[Null, ...]:
        """The labelled nulls of the atom, in order of first occurrence."""
        seen: Dict[Null, None] = {}
        for term in self.terms:
            if isinstance(term, Null) and term not in seen:
                seen[term] = None
        return tuple(seen)

    def constants(self) -> Tuple[Constant, ...]:
        """The schema constants of the atom, in order of first occurrence."""
        seen: Dict[Constant, None] = {}
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen[term] = None
        return tuple(seen)

    def apply(self, substitution: "Substitution") -> "Atom":
        """Apply a substitution, returning a new atom."""
        return Atom(
            self.relation,
            tuple(substitution.get(t, t) for t in self.terms),
        )

    def rename_relation(self, relation: str) -> "Atom":
        """The same atom over a different relation name."""
        return Atom(relation, self.terms)

    def __repr__(self) -> str:
        args = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({args})"


class Substitution:
    """An immutable-by-convention mapping from terms to terms.

    Only variables and nulls are meaningful keys; schema constants are
    never remapped.  ``Substitution`` supports functional extension
    (:meth:`extended`) so backtracking search can share prefixes cheaply.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Term, Term]] = None) -> None:
        self._mapping: Dict[Term, Term] = dict(mapping) if mapping else {}

    def get(self, term: Term, default: Optional[Term] = None) -> Optional[Term]:
        """Mapping lookup with a default."""
        return self._mapping.get(term, default)

    def __getitem__(self, term: Term) -> Term:
        return self._mapping[term]

    def __contains__(self, term: Term) -> bool:
        return term in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._mapping)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def items(self) -> Iterable[Tuple[Term, Term]]:
        """The (key, image) pairs of the mapping."""
        return self._mapping.items()

    def as_dict(self) -> Dict[Term, Term]:
        """A plain-dict copy of the mapping."""
        return dict(self._mapping)

    def extended(self, term: Term, image: Term) -> "Substitution":
        """A new substitution with one extra binding."""
        new = Substitution(self._mapping)
        new._mapping[term] = image
        return new

    def restrict(self, keys: Iterable[Term]) -> "Substitution":
        """The substitution restricted to the given keys."""
        wanted = set(keys)
        return Substitution(
            {k: v for k, v in self._mapping.items() if k in wanted}
        )

    def compose(self, other: "Substitution") -> "Substitution":
        """``self`` then ``other``: ``(self.compose(other))(t) = other(self(t))``."""
        result: Dict[Term, Term] = {}
        for key, value in self._mapping.items():
            result[key] = other.get(value, value)
        for key, value in other.items():
            if key not in result:
                result[key] = value
        return Substitution(result)

    def apply(self, term: Term) -> Term:
        """The image of one term (identity when unmapped)."""
        return self._mapping.get(term, term)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k!r}->{v!r}" for k, v in sorted(
            self._mapping.items(), key=lambda kv: repr(kv[0])))
        return f"{{{pairs}}}"


def apply_to_atoms(
    atoms: Iterable[Atom], substitution: Substitution
) -> Tuple[Atom, ...]:
    """Apply a substitution to every atom in a sequence."""
    return tuple(atom.apply(substitution) for atom in atoms)
