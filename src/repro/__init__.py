"""repro -- proof-driven query planning over restricted interfaces.

A from-scratch reproduction of *"Generating Low-cost Plans From Proofs"*
(Benedikt, ten Cate, Tsamoura; PODS 2014): answering queries completely
over schemas with access methods (binding patterns) and TGD integrity
constraints, by searching the space of chase proofs that the query is
answerable and reading low-cost plans directly off the proofs.

Quick tour::

    from repro import (
        SchemaBuilder, cq, find_best_plan, SearchOptions,
        Instance, InMemorySource,
    )

    schema = (
        SchemaBuilder("uni")
        .relation("Profinfo", 3, ["eid", "onum", "lname"])
        .relation("Udirect", 2, ["eid", "lname"])
        .access("mt_prof", "Profinfo", inputs=[0], cost=2.0)
        .access("mt_udir", "Udirect", inputs=[], cost=1.0)
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )
    query = cq(["?eid", "?onum"],
               [("Profinfo", ["?eid", "?onum", "smith"])])
    result = find_best_plan(schema, query)
    print(result.best_plan.describe())

Subpackages: :mod:`repro.logic` (CQs, TGDs, homomorphisms),
:mod:`repro.schema` (access methods, accessible schemas),
:mod:`repro.chase` (the chase with blocking), :mod:`repro.plans`
(RA plans and their semantics), :mod:`repro.data` (access-enforced
sources, AccPart), :mod:`repro.exec` (the indexed/deduplicated/cached
execution runtime), :mod:`repro.service` (the concurrent query service
with admission control and overload shedding),
:mod:`repro.cost` (cost functions),
:mod:`repro.planner` (proof-to-plan + Algorithm 1 + views),
:mod:`repro.fo` (interpolation, executable queries),
:mod:`repro.scenarios` (the paper's examples).
"""

from repro.logic import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Null,
    TGD,
    Variable,
    cq,
    inclusion_dependency,
    parse_tgd,
)
from repro.schema import (
    AccessMethod,
    AccessibleSchema,
    Relation,
    Schema,
    SchemaBuilder,
    accessible_schema,
    inferred_accessible_query,
)
from repro.data import (
    InMemorySource,
    Instance,
    accessible_part,
    random_instance,
)
from repro.errors import (
    AccessError,
    ChaseBudgetExceeded,
    DeadlineExceeded,
    MethodOutage,
    ReproError,
    RowBudgetExceeded,
    ServiceOverloaded,
    ServiceStopped,
    TransientAccessError,
)
from repro.exec import (
    AccessCache,
    BatchExecutor,
    BatchItem,
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    ExecStats,
    FailoverExecutor,
    FailoverOutcome,
    ResilientDispatcher,
    ResourceBudget,
    RetryPolicy,
    substitute_constants,
)
from repro.service import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServiceHealth,
    Ticket,
)
from repro.faults import (
    FaultInjectingSource,
    FaultPolicy,
    FaultStats,
    VirtualClock,
)
from repro.plans import Plan, PlanKind
from repro.cost import (
    CardinalityCostFunction,
    CountingCostFunction,
    SimpleCostFunction,
)
from repro.planner import (
    ChaseProof,
    Exposure,
    SearchOptions,
    SearchResult,
    find_any_plan,
    find_best_plan,
    is_answerable,
    plan_from_proof,
    rewrite_over_views,
)

__version__ = "1.0.0"

__all__ = [
    "AccessCache",
    "AccessError",
    "AccessMethod",
    "AccessibleSchema",
    "Atom",
    "BatchExecutor",
    "BatchItem",
    "BreakerRegistry",
    "CardinalityCostFunction",
    "ChaseBudgetExceeded",
    "ChaseProof",
    "CircuitBreaker",
    "ConjunctiveQuery",
    "Constant",
    "CountingCostFunction",
    "Deadline",
    "DeadlineExceeded",
    "ExecStats",
    "Exposure",
    "FailoverExecutor",
    "FailoverOutcome",
    "FaultInjectingSource",
    "FaultPolicy",
    "FaultStats",
    "InMemorySource",
    "Instance",
    "MethodOutage",
    "Null",
    "PRIORITY_BEST_EFFORT",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "Plan",
    "PlanKind",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "Relation",
    "ReproError",
    "ResilientDispatcher",
    "ResourceBudget",
    "RetryPolicy",
    "RowBudgetExceeded",
    "Schema",
    "SchemaBuilder",
    "SearchOptions",
    "SearchResult",
    "ServiceHealth",
    "ServiceOverloaded",
    "ServiceStopped",
    "SimpleCostFunction",
    "TGD",
    "Ticket",
    "TransientAccessError",
    "Variable",
    "VirtualClock",
    "accessible_part",
    "accessible_schema",
    "cq",
    "find_any_plan",
    "find_best_plan",
    "inclusion_dependency",
    "inferred_accessible_query",
    "is_answerable",
    "parse_tgd",
    "plan_from_proof",
    "random_instance",
    "rewrite_over_views",
    "substitute_constants",
]
