"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``demo <scenario>`` -- run a built-in scenario end to end (plan, show
  the plan, execute it on generated data, verify completeness).
  Scenarios: example1, example2, example5, chain, views.
* ``serve-demo <scenario> --workers N`` -- plan a scenario, then serve
  a burst of concurrent requests (mixed priorities, per-request
  deadlines and budgets) through a :class:`~repro.service.QueryService`
  and print the per-request outcomes and the service health snapshot.
* ``plan <schema.json> <query>`` -- plan a Datalog-style query over a
  schema file (the :mod:`repro.schema.serialize` JSON format), printing
  the best plan, its proof, and optionally SQL (``--sql``).
* ``check <schema.json> <query>`` -- decide answerability only.

Exit status: 0 on success / answerable, 2 when no plan exists.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.data.source import InMemorySource
from repro.errors import ReproError
from repro.exec import (
    AccessCache,
    BreakerRegistry,
    Deadline,
    ExecStats,
    FailoverExecutor,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.logic.queries import parse_cq
from repro.planner.answerability import default_policy_for
from repro.planner.domination import REGISTRY_KINDS
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.tools import to_sql
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
)
from repro.chaos import SCENARIOS as CHAOS_SCENARIOS
from repro.schema.serialize import schema_from_dict

SCENARIOS = {
    "example1": example1,
    "example2": example2,
    "example5": example5,
    "chain": lambda: referential_chain(3),
    "views": view_stack_scenario,
}


def _make_source(schema, instance, kind: str):
    """Build the backend the CLI executes over.

    ``memory`` is the in-memory oracle; ``sqlite`` serves the same
    instance as SQLite tables; ``http`` serves it through the
    in-process web-service stub (pagination enabled so the client's
    page-chaining actually runs).  All three answer identically -- the
    flag changes *how* accesses are answered, never what they return.
    """
    if kind == "sqlite":
        from repro.sources import SQLiteSource

        return SQLiteSource(schema, instance)
    if kind == "http":
        from repro.sources import HTTPSource, StubTransport

        return HTTPSource(StubTransport(schema, instance, page_size=50))
    return InMemorySource(schema, instance)


def _adapter_summary(source) -> str:
    """A one-line counters digest for a non-memory backend, or ''."""
    reconnects = getattr(source, "reconnects", None)
    if reconnects is not None:
        return (
            f"sqlite [statements={source._statements} "
            f"reconnects={reconnects} batched={source.batched_calls}]"
        )
    transport = getattr(source, "transport", None)
    if transport is not None and hasattr(transport, "counters"):
        counters = transport.counters()
        return (
            f"http [requests={counters['requests']} "
            f"over_budget={counters['over_budget']} "
            f"retry_after_waits={source.retry_after_waits} "
            f"batched={source.batched_calls}]"
        )
    return ""


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="proof-driven query planning (PODS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a built-in scenario")
    demo.add_argument("scenario", choices=sorted(SCENARIOS))
    demo.add_argument("--max-accesses", type=int, default=6)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--source",
        choices=["memory", "sqlite", "http"],
        default="memory",
        help="which backend serves the accesses: the in-memory oracle, "
             "relations as SQLite tables (parameterized lookups, "
             "reconnect-on-error), or an in-process HTTP web-service "
             "stub (pagination, rate limits, Retry-After); answers are "
             "identical by construction",
    )
    demo.add_argument(
        "--exec-stats",
        action="store_true",
        help="print the execution runtime breakdown (per-command timings, "
             "dispatch dedup, cache hits, peak resident rows)",
    )
    demo.add_argument(
        "--access-cache",
        action="store_true",
        help="execute through a shared LRU access cache (repeated "
             "identical accesses are answered without touching the "
             "source)",
    )
    demo.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject a deterministic mix of transient faults "
             "(unavailable / timeout / rate-limit) on fraction P of the "
             "distinct accesses",
    )
    demo.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault schedule (same seed = same failures)",
    )
    demo.add_argument(
        "--outage",
        action="append",
        default=[],
        metavar="METHOD",
        help="declare an access method permanently down (repeatable)",
    )
    demo.add_argument(
        "--retry",
        type=int,
        default=0,
        metavar="N",
        help="retry each faulted access up to N times with exponential "
             "backoff and deterministic jitter (0 = fail fast)",
    )
    demo.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall plan deadline in (simulated) seconds; expiry "
             "aborts execution with DeadlineExceeded",
    )
    demo.add_argument(
        "--executor",
        choices=["interpreter", "columnar", "differential"],
        default="interpreter",
        help="execution backend: the tuple-at-a-time interpreter "
             "(default), the vectorized columnar backend over the plan "
             "IR, or differential (run both, assert identical answers)",
    )
    demo.add_argument(
        "--calibrated",
        action="store_true",
        help="after executing, fold the run's observed row flow into a "
             "cost-calibration store, re-plan with the calibrated "
             "cardinality estimator under static size-bound "
             "branch-and-bound pruning, and report both plans",
    )
    demo.add_argument(
        "--failover",
        action="store_true",
        help="serve the query through the failover executor: when a "
             "method dies (breaker opens / hard outage), re-plan over "
             "the surviving methods and fall back to the next-cheapest "
             "plan, or to a marked partial answer",
    )

    serve = sub.add_parser(
        "serve-demo",
        help="serve a burst of concurrent requests through QueryService",
    )
    serve.add_argument("scenario", choices=sorted(SCENARIOS))
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--requests", type=int, default=24,
                       help="how many requests to fire at once")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="admission queue capacity (small values shed)")
    serve.add_argument("--latency", type=float, default=0.002,
                       metavar="SECONDS",
                       help="simulated per-access source latency")
    serve.add_argument("--budget-rows", type=int, default=None,
                       metavar="N",
                       help="per-request result-row budget (overflowing "
                            "answers degrade to marked partial results)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request deadline, measured from submission")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-accesses", type=int, default=6)
    serve.add_argument(
        "--source",
        choices=["memory", "sqlite", "http"],
        default="memory",
        help="backend the service executes over (see 'demo --source'); "
             "sqlite and http rehydrate per worker under "
             "--worker-tier process",
    )
    serve.add_argument(
        "--executor",
        choices=["interpreter", "columnar", "differential"],
        default="interpreter",
        help="execution backend used by the worker pool",
    )
    serve.add_argument(
        "--worker-tier",
        choices=["none", "thread", "process"],
        default="none",
        help="execution tier: none (in-service threads), thread "
             "(ThreadWorkerPool behind the WorkerPool interface), or "
             "process (ProcessPoolExecutor -- ships plan IR to spawned "
             "workers and scales CPU-bound serving past the GIL)",
    )
    serve.add_argument(
        "--tier-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count of the process/thread execution tier",
    )
    serve.add_argument(
        "--plan-cache",
        action="store_true",
        help="plan each request through a fingerprint-keyed PlanCache "
             "(repeated queries skip the proof search entirely)",
    )
    serve.add_argument(
        "--plan-cache-dir",
        default=None,
        metavar="DIR",
        help="persist cached plans as JSON files under DIR (implies "
             "--plan-cache); a restarted service re-reads them from disk",
    )
    serve.add_argument(
        "--calibration-file",
        default=None,
        metavar="PATH",
        help="maintain a persistent cost-calibration store at PATH: "
             "every served request's observed per-method row flow is "
             "folded in (atomic rewrite), and a restarted service "
             "resumes planning from the accumulated estimates",
    )
    serve.add_argument(
        "--watchdog-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request stall bound on the execution tier: a request "
             "stuck past it fails typed (WorkerStalled) and the process "
             "tier kills and recreates its pool to reclaim the slot",
    )
    serve.add_argument(
        "--hedge",
        action="store_true",
        help="hedged dispatch on the execution tier: duplicate a "
             "request to a second worker after an adaptive EWMA-P95 "
             "delay and take the first answer (cuts tail latency; "
             "safe because execution is deterministic)",
    )
    serve.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed hedge delay overriding the adaptive P95 estimate",
    )
    serve.add_argument(
        "--chaos-scenario",
        choices=list(CHAOS_SCENARIOS),
        default=None,
        metavar="NAME",
        help="instead of the normal burst, run one deterministic chaos "
             "scenario from repro.chaos against a live service and "
             "print its invariant report (scenarios: "
             + ", ".join(CHAOS_SCENARIOS) + ")",
    )

    plan = sub.add_parser("plan", help="plan a query over a schema file")
    plan.add_argument("schema", help="path to a schema JSON file")
    plan.add_argument("query", help="e.g. \"q(x) :- R(x, y)\"")
    plan.add_argument("--max-accesses", type=int, default=6)
    plan.add_argument("--sql", action="store_true",
                      help="also print an SQL rendering")

    check = sub.add_parser("check", help="decide answerability")
    check.add_argument("schema")
    check.add_argument("query")
    check.add_argument("--max-accesses", type=int, default=6)
    for command in (demo, serve, plan, check):
        command.add_argument(
            "--chase-strategy",
            choices=["semi-naive", "naive"],
            default="semi-naive",
            help="chase evaluation strategy for per-node saturation "
                 "(naive is the slow reference oracle)",
        )
        command.add_argument(
            "--chase-stats",
            action="store_true",
            help="print aggregated chase instrumentation after planning",
        )
        command.add_argument(
            "--search-stats",
            action="store_true",
            help="print the search hot-loop breakdown after planning "
                 "(domination checks, candidate inheritance, copy/cost "
                 "timings)",
        )
        command.add_argument(
            "--domination-index",
            choices=list(REGISTRY_KINDS),
            default="fingerprint",
            help="domination registry: fingerprint (indexed), linear "
                 "(original prefiltered scan), naive (unoptimized "
                 "reference), differential (fingerprint checked against "
                 "linear on every query)",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _demo(args)
    if args.command == "serve-demo":
        return _serve_demo(args)
    if args.command == "plan":
        return _plan(args, check_only=False)
    if args.command == "check":
        return _plan(args, check_only=True)
    return 1  # pragma: no cover -- argparse enforces the choices


def _demo(args) -> int:
    scenario = SCENARIOS[args.scenario]()
    print(scenario.schema.describe())
    print(f"\nquery: {scenario.query}\n")
    result = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=args.max_accesses,
            chase_policy=_chase_policy(args, scenario.schema),
            domination_index=args.domination_index,
        ),
    )
    _print_chase_stats(args, result)
    _print_search_stats(args, result)
    if not result.found:
        print("no complete plan exists within the access budget")
        return 2
    print(result.best_plan.describe())
    print(f"\nstatic cost: {result.best_cost}")
    print(f"proof: {result.best_proof}\n")
    instance = scenario.instance(args.seed)
    source = _make_source(scenario.schema, instance, args.source)
    clock = VirtualClock()
    faulty = bool(args.fault_rate) or bool(args.outage)
    if faulty:
        policy = FaultPolicy.transient(args.fault_rate, seed=args.fault_seed)
        if args.outage:
            policy = FaultPolicy(
                seed=policy.seed,
                unavailable_rate=policy.unavailable_rate,
                timeout_rate=policy.timeout_rate,
                rate_limit_rate=policy.rate_limit_rate,
                outages={method: 0 for method in args.outage},
            )
        source = FaultInjectingSource(source, policy, clock=clock)
    resilience = None
    if faulty or args.retry or args.deadline is not None or args.failover:
        resilience = ResilientDispatcher(
            retry=RetryPolicy(
                max_attempts=args.retry + 1, seed=args.fault_seed
            ),
            breakers=BreakerRegistry(clock=clock),
            deadline=(
                Deadline(args.deadline, clock=clock)
                if args.deadline is not None
                else None
            ),
            sleep=clock.sleep,
        )
    cache = AccessCache() if args.access_cache else None
    exec_stats = (
        ExecStats() if (args.exec_stats or args.calibrated) else None
    )
    truth = instance.evaluate(scenario.query)
    if args.failover:
        executor = FailoverExecutor(
            scenario.schema,
            source,
            resilience=resilience,
            cache=cache,
            stats=exec_stats,
        )
        outcome = executor.run(scenario.query)
        print(f"failover outcome: {outcome.describe()}")
        if not outcome.ok:
            return 1
        output = outcome.table
    else:
        try:
            output = result.best_plan.execute(
                source,
                cache=cache,
                stats=exec_stats,
                resilience=resilience,
                executor=args.executor,
            )
        except ReproError as error:
            print(f"execution FAILED: {error}")
            return 1
    complete = (
        bool(output.rows) == bool(truth)
        if scenario.query.is_boolean
        else set(output.rows) == truth
    )
    inner = source.inner if faulty else source
    print(
        f"executed on a generated instance ({instance.size()} tuples): "
        f"{len(output.rows)} answer rows, "
        f"{inner.total_invocations} accesses, "
        f"runtime cost {inner.charged_cost():.1f}"
    )
    if faulty:
        print(f"faults [{source.stats.summary()}]")
    if resilience is not None:
        print(f"resilience [{resilience.summary()}]")
    if exec_stats is not None:
        print(f"exec [{exec_stats.summary()}]")
    if cache is not None:
        print(f"cache [{cache.summary()}]")
    adapter = _adapter_summary(inner)
    if adapter:
        print(adapter)
    if args.calibrated and exec_stats is not None:
        _demo_calibrated(args, scenario, instance, exec_stats)
    print(f"complete: {'yes' if complete else 'NO'}")
    return 0 if complete else 1


def _demo_calibrated(args, scenario, instance, exec_stats) -> None:
    """Re-plan with feedback-calibrated costs and size-bound pruning."""
    from repro.cost import (
        CalibrationStore,
        CardinalityCostFunction,
        SizeBounds,
    )

    store = CalibrationStore()
    observed = store.observe_stats(
        exec_stats,
        {m.name: m.relation for m in scenario.schema.methods},
    )
    cost = CardinalityCostFunction(
        relation_cardinality={},
        calibration=store,
        bounds=SizeBounds.from_instance(scenario.schema, instance),
    )
    calibrated = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=args.max_accesses,
            cost=cost,
            prune_by_bound=True,
            chase_policy=_chase_policy(args, scenario.schema),
            domination_index=args.domination_index,
        ),
    )
    print(f"\ncalibration [{store.summary()}]")
    if not calibrated.found:
        print("calibrated re-plan: no complete plan within the budget")
        return
    stats = calibrated.stats
    print(
        f"calibrated re-plan: cost {calibrated.best_cost:.2f} over "
        f"{len(calibrated.best_plan.access_commands)} accesses "
        f"({stats.nodes_expanded} nodes expanded, "
        f"{stats.pruned_by_bound} closed by branch-and-bound)"
    )


def _serve_demo(args) -> int:
    from repro.data.decorators import LatencySource
    from repro.exec.budget import ResourceBudget
    from repro.errors import ServiceOverloaded
    from repro.planner import PlanCache
    from repro.service import (
        PRIORITY_CLASSES,
        PRIORITY_NAMES,
        ProcessWorkerPool,
        QueryService,
        ThreadWorkerPool,
    )

    if args.chaos_scenario is not None:
        return _chaos_scenario(args)
    scenario = SCENARIOS[args.scenario]()
    search_options = SearchOptions(
        max_accesses=args.max_accesses,
        chase_policy=_chase_policy(args, scenario.schema),
        domination_index=args.domination_index,
    )
    use_plan_cache = args.plan_cache or args.plan_cache_dir is not None
    plan_cache = (
        PlanCache(directory=args.plan_cache_dir) if use_plan_cache else None
    )
    calibration = None
    if args.calibration_file is not None:
        from repro.cost import CalibrationStore

        calibration = CalibrationStore(path=args.calibration_file)
    plan = None
    if not use_plan_cache:
        result = find_best_plan(scenario.schema, scenario.query,
                                search_options)
        if not result.found:
            print("no complete plan exists within the access budget")
            return 2
        plan = result.best_plan
        print(plan.describe())
    instance = scenario.instance(args.seed)
    backend = _make_source(scenario.schema, instance, args.source)
    source = backend
    if args.latency:
        source = LatencySource(source, args.latency)
    resilience = {
        "watchdog_seconds": args.watchdog_seconds,
        "hedge": args.hedge,
        "hedge_delay": args.hedge_delay,
    }
    if args.worker_tier == "process":
        worker_pool = ProcessWorkerPool.for_source(
            source, workers=args.tier_workers, **resilience
        )
    elif args.worker_tier == "thread":
        worker_pool = ThreadWorkerPool(
            source, workers=args.tier_workers, **resilience
        )
    else:
        worker_pool = None
        if args.hedge or args.watchdog_seconds is not None:
            print(
                "note: --hedge/--watchdog-seconds apply to the execution "
                "tier; pass --worker-tier thread|process to enable them"
            )
    budget = (
        ResourceBudget(max_result_rows=args.budget_rows)
        if args.budget_rows is not None
        else None
    )
    service = QueryService(
        source,
        workers=args.workers,
        max_queue=args.max_queue,
        cache=AccessCache(),
        retry=RetryPolicy(),
        default_deadline=args.deadline,
        default_budget=budget,
        executor=args.executor,
        worker_pool=worker_pool,
        plan_cache=plan_cache,
        calibration=calibration,
    )
    tier = args.worker_tier if worker_pool is not None else "in-service"
    print(
        f"\nserving {args.requests} requests on {args.workers} workers "
        f"(queue {args.max_queue}, per-access latency {args.latency}s, "
        f"execution tier {tier}, source {args.source})\n"
    )
    with service:
        tickets = []
        for index in range(args.requests):
            priority = PRIORITY_CLASSES[index % len(PRIORITY_CLASSES)]
            try:
                if use_plan_cache:
                    ticket = service.submit_query(
                        scenario.query,
                        search_options=search_options,
                        priority=priority,
                    )
                else:
                    ticket = service.submit(plan, priority=priority)
                tickets.append((priority, ticket))
            except ServiceOverloaded as error:
                print(
                    f"q{index + 1} ({PRIORITY_NAMES[priority]}): SHED at "
                    f"admission -- {error} "
                    f"(retry after {error.retry_after:.3f}s)"
                )
        for priority, ticket in tickets:
            response = ticket.result(timeout=60)
            print(f"{PRIORITY_NAMES[priority]:>11}: {response.describe()}")
        health = service.health()
    print(f"\nhealth: {health.summary()}")
    if health.cache:
        print(f"cache: hits={health.cache['hits']} "
              f"misses={health.cache['misses']} "
              f"stampedes collapsed={health.cache['stampedes_collapsed']}")
    if health.plan_cache is not None:
        print(f"plan cache: hits={health.plan_cache['hits']} "
              f"misses={health.plan_cache['misses']} "
              f"disk hits={health.plan_cache['disk_hits']} "
              f"searches run={health.planned}")
    if health.worker_tier is not None:
        print(f"worker tier: {health.worker_tier}")
    if health.calibration is not None:
        print(
            f"calibration: v{health.calibration['version']} "
            f"({health.calibration['observations']} commands over "
            f"{health.calibration['methods']} methods, "
            f"persisted={health.calibration['persistent']})"
        )
    adapter = _adapter_summary(backend)
    if adapter:
        print(f"adapter: {adapter}")
    return 0


def _chaos_scenario(args) -> int:
    """Run one deterministic chaos scenario and print its report.

    Exit status 0 when every invariant held (terminate / sound /
    accounted / typed), 3 when the report carries violations or hangs.
    """
    from repro.chaos import run_scenario

    report = run_scenario(args.chaos_scenario, seed=args.seed, quick=True)
    print(report.summary())
    print(f"  outcomes: {dict(report.outcomes)}")
    if report.error_types:
        print(f"  typed errors: {dict(report.error_types)}")
    for key, value in sorted(report.details.items()):
        print(f"  {key}: {value}")
    if not report.ok:
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
        return 3
    return 0


def _chase_policy(args, schema):
    """The schema-appropriate chase policy with the requested strategy."""
    policy = default_policy_for(schema)
    policy.strategy = args.chase_strategy
    return policy


def _print_chase_stats(args, result) -> None:
    if args.chase_stats:
        print(f"chase [{result.stats.chase.summary()}]\n")


def _print_search_stats(args, result) -> None:
    if args.search_stats:
        print(f"search stats:\n{result.stats.summary()}\n")


def _plan(args, check_only: bool) -> int:
    with open(args.schema) as handle:
        schema = schema_from_dict(json.load(handle))
    query = parse_cq(args.query)
    result = find_best_plan(
        schema,
        query,
        SearchOptions(
            max_accesses=args.max_accesses,
            chase_policy=_chase_policy(args, schema),
            domination_index=args.domination_index,
        ),
    )
    _print_chase_stats(args, result)
    _print_search_stats(args, result)
    if not result.found:
        print("not answerable within the access budget")
        return 2
    if check_only:
        print(f"answerable (cheapest plan cost: {result.best_cost})")
        return 0
    print(result.best_plan.describe())
    print(f"\nstatic cost: {result.best_cost}")
    print(f"proof: {result.best_proof}")
    if args.sql:
        print("\n-- SQL rendering --")
        print(to_sql(result.best_plan))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
