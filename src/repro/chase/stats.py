"""Instrumentation for chase runs.

:class:`ChaseStats` is the per-run (and aggregable) measurement record of
the fixpoint engine: how many rounds the run took, how many candidate
matches were enumerated versus actually fired, how hard the backtracking
join worked, and where the wall time went (trigger search vs. firing).

The planner aggregates one instance across the many per-node saturations
of an Algorithm 1 search (see ``SaturationLog``), which is what the CLI
and the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.homomorphisms import HomStats


@dataclass
class ChaseStats:
    """Counters and timings for one (or several merged) chase runs.

    * ``rounds`` -- sweeps over the rule list until no rule fired;
    * ``triggers_enumerated`` -- body homomorphisms produced by trigger
      search, *before* the restricted-chase head filter;
    * ``triggers_filtered`` -- enumerated matches discarded because their
      head was already satisfied;
    * ``triggers_fired`` -- firings that added at least one fact;
    * ``hom`` -- backtracking-join effort (candidate scans, dead ends);
    * ``time_search`` / ``time_fire`` -- wall seconds spent enumerating
      triggers vs. firing them (depth check, blocking check, insertion);
    * ``runs`` -- how many chase runs were merged into this record.
    """

    strategy: str = ""
    rounds: int = 0
    triggers_enumerated: int = 0
    triggers_filtered: int = 0
    triggers_fired: int = 0
    hom: HomStats = field(default_factory=HomStats)
    time_search: float = 0.0
    time_fire: float = 0.0
    # 0 for a fresh aggregate; the engine stamps 1 on each run's record.
    runs: int = 0

    def absorb(self, other: "ChaseStats") -> None:
        """Accumulate another run's counters into this aggregate."""
        if not self.strategy:
            self.strategy = other.strategy
        self.rounds += other.rounds
        self.triggers_enumerated += other.triggers_enumerated
        self.triggers_filtered += other.triggers_filtered
        self.triggers_fired += other.triggers_fired
        self.hom.absorb(other.hom)
        self.time_search += other.time_search
        self.time_fire += other.time_fire
        self.runs += other.runs

    def as_dict(self) -> dict:
        """A JSON-ready flat rendering (used by benchmark reports)."""
        return {
            "strategy": self.strategy,
            "rounds": self.rounds,
            "triggers_enumerated": self.triggers_enumerated,
            "triggers_filtered": self.triggers_filtered,
            "triggers_fired": self.triggers_fired,
            "hom_candidates_scanned": self.hom.candidates_scanned,
            "hom_backtracks": self.hom.backtracks,
            "time_search": self.time_search,
            "time_fire": self.time_fire,
            "runs": self.runs,
        }

    def summary(self) -> str:
        """A one-line human rendering for CLI output."""
        return (
            f"{self.strategy or 'chase'}: {self.rounds} rounds, "
            f"{self.triggers_fired}/{self.triggers_enumerated} "
            f"triggers fired/enumerated, "
            f"{self.hom.candidates_scanned} candidates scanned "
            f"({self.time_search * 1e3:.1f} ms search, "
            f"{self.time_fire * 1e3:.1f} ms fire, {self.runs} runs)"
        )
