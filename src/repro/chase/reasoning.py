"""Chase-based reasoning services.

The classical reduction (stated as "well-known" in Section 4 of the
paper): ``Q entails Q' w.r.t. TGDs`` iff some chase sequence from the
canonical database of Q reaches a configuration with a match for Q' that
preserves the free variables.  When the chase terminates this is a
decision procedure; otherwise the bounded run gives a sound
semi-decision ("yes" answers are always correct).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, ChaseResult, chase_to_fixpoint
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import NullFactory


def entails_under_constraints(
    premise: ConjunctiveQuery,
    conclusion: ConjunctiveQuery,
    constraints: Sequence[TGD],
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """``premise`` entails ``conclusion`` w.r.t. the constraints.

    Both queries must share head arity; head variables are matched
    pairwise.  Incomplete (may answer False spuriously) only when the
    chase run is truncated by its policy.
    """
    if len(premise.head) != len(conclusion.head):
        return False
    facts, frozen = premise.canonical_database(prefix="ent")
    config = ChaseConfiguration(facts)
    chase_to_fixpoint(config, list(constraints), NullFactory("ent"), policy)
    seed = Substitution(
        {
            cv: frozen[pv]
            for cv, pv in zip(conclusion.head, premise.head)
        }
    )
    return (
        find_homomorphism(list(conclusion.atoms), config.index, seed)
        is not None
    )


def is_contained_under(
    contained: ConjunctiveQuery,
    container: ConjunctiveQuery,
    constraints: Sequence[TGD],
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """CQ containment relative to TGD constraints."""
    return entails_under_constraints(
        contained, container, constraints, policy
    )


def certain_answer_holds(
    query: ConjunctiveQuery,
    facts: Iterable[Atom],
    constraints: Sequence[TGD],
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """Boolean certain-answer check: chase the facts, evaluate the query."""
    config = ChaseConfiguration(facts)
    chase_to_fixpoint(config, list(constraints), NullFactory("ca"), policy)
    return query.holds_in(config.index)
