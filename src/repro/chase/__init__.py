"""The chase: forward-chaining proof system for TGDs (Section 4).

A chase proof starts from the canonical database of a query and fires
dependencies until the target query matches.  This subpackage provides the
fact-store :class:`ChaseConfiguration` with provenance, trigger detection
and rule firing, a fixpoint engine with pluggable termination policies
(bounded firing, guarded-bag blocking), eager-proof saturation, and
chase-based reasoning services (entailment and containment under TGDs).
"""

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.firing import (
    FiringResult,
    Trigger,
    find_triggers,
    find_triggers_delta,
    fire_trigger,
)
from repro.chase.engine import (
    ChaseBudgetExceeded,
    ChasePolicy,
    ChaseResult,
    NonTerminatingChaseError,
    chase_to_fixpoint,
    saturate,
)
from repro.chase.stats import ChaseStats
from repro.chase.blocking import BagTree, BlockingPolicy
from repro.chase.reasoning import (
    certain_answer_holds,
    entails_under_constraints,
    is_contained_under,
)

__all__ = [
    "BagTree",
    "BlockingPolicy",
    "ChaseBudgetExceeded",
    "ChaseConfiguration",
    "ChasePolicy",
    "ChaseResult",
    "ChaseStats",
    "FiringResult",
    "NonTerminatingChaseError",
    "Provenance",
    "Trigger",
    "certain_answer_holds",
    "chase_to_fixpoint",
    "entails_under_constraints",
    "find_triggers",
    "find_triggers_delta",
    "fire_trigger",
    "is_contained_under",
    "saturate",
]
