"""Trigger detection and rule firing.

A *candidate match* (trigger) for a TGD in a configuration is a
homomorphism of the body whose head is not yet satisfied (the *restricted*
chase check -- the variant the paper's Section 4 uses: a candidate match
exists only when "there is no f such that rho(e, f) holds").  Firing a
trigger adds head facts, inventing fresh labelled nulls for existential
variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.homomorphisms import find_homomorphism, find_homomorphisms
from repro.logic.terms import NullFactory, Variable
from repro.schema.accessible import ChaseRule

RuleLike = Union[TGD, ChaseRule]


def _tgd_of(rule: RuleLike) -> TGD:
    return rule.tgd if isinstance(rule, ChaseRule) else rule


@dataclass(frozen=True)
class Trigger:
    """A rule plus a body homomorphism, ready to fire."""

    rule: RuleLike
    homomorphism: Substitution

    @property
    def tgd(self) -> TGD:
        """The underlying dependency of the trigger's rule."""
        return _tgd_of(self.rule)

    def body_image(self) -> Tuple[Atom, ...]:
        """The facts the body maps onto."""
        return tuple(atom.apply(self.homomorphism) for atom in self.tgd.body)

    def key(self) -> Tuple[str, Tuple[Atom, ...]]:
        """Identity of the trigger for deduplication."""
        return (self.tgd.name, self.body_image())

    def __repr__(self) -> str:
        return f"Trigger({self.tgd.name}, {self.homomorphism!r})"


@dataclass(frozen=True)
class FiringResult:
    """Outcome of firing one trigger."""

    trigger: Trigger
    new_facts: Tuple[Atom, ...]

    @property
    def changed(self) -> bool:
        """Whether the firing added at least one new fact."""
        return bool(self.new_facts)


def head_satisfied(
    tgd: TGD, homomorphism: Substitution, config: ChaseConfiguration
) -> bool:
    """True when the head already holds under the body match.

    Existential head variables may map to *any* value of the configuration
    (this is what makes the chase "restricted"/standard rather than
    oblivious).
    """
    binding = homomorphism.restrict(tgd.frontier())
    return (
        find_homomorphism(list(tgd.head), config.index, binding) is not None
    )


def find_triggers(
    rule: RuleLike,
    config: ChaseConfiguration,
    restricted: bool = True,
) -> Iterator[Trigger]:
    """All candidate matches of the rule in the configuration."""
    tgd = _tgd_of(rule)
    for hom in find_homomorphisms(list(tgd.body), config.index):
        body_binding = hom.restrict(tgd.body_variables())
        if restricted and head_satisfied(tgd, body_binding, config):
            continue
        yield Trigger(rule, body_binding)


def fire_trigger(
    trigger: Trigger,
    config: ChaseConfiguration,
    nulls: NullFactory,
) -> FiringResult:
    """Fire a trigger in place, returning the facts that were added."""
    tgd = trigger.tgd
    binding = trigger.homomorphism
    for variable in sorted(
        tgd.existential_variables(), key=lambda v: v.name
    ):
        binding = binding.extended(variable, nulls(hint=variable.name))
    trigger_facts = trigger.body_image()
    depth = 1 + max(
        (config.depth(fact) for fact in trigger_facts if fact in config),
        default=0,
    )
    provenance = Provenance(
        rule=tgd.name, trigger_facts=trigger_facts, depth=depth
    )
    new_facts = []
    for head_atom in tgd.head:
        fact = head_atom.apply(binding)
        if config.add(fact, provenance):
            new_facts.append(fact)
    return FiringResult(trigger, tuple(new_facts))


def fire_all_once(
    rules: Iterable[RuleLike],
    config: ChaseConfiguration,
    nulls: NullFactory,
    restricted: bool = True,
) -> Tuple[FiringResult, ...]:
    """One parallel round: fire every current trigger of every rule.

    Triggers are computed against the configuration as it was at the start
    of the round semantics-wise; because firing only ever adds facts, new
    triggers created mid-round are simply picked up next round.
    """
    results = []
    for rule in rules:
        for trigger in list(find_triggers(rule, config, restricted)):
            if restricted and head_satisfied(
                trigger.tgd, trigger.homomorphism, config
            ):
                continue
            results.append(fire_trigger(trigger, config, nulls))
    return tuple(results)
