"""Trigger detection and rule firing.

A *candidate match* (trigger) for a TGD in a configuration is a
homomorphism of the body whose head is not yet satisfied (the *restricted*
chase check -- the variant the paper's Section 4 uses: a candidate match
exists only when "there is no f such that rho(e, f) holds").  Firing a
trigger adds head facts, inventing fresh labelled nulls for existential
variables.

Two enumeration modes back the fixpoint engine:

* :func:`find_triggers` -- the naive mode: every body homomorphism over
  the whole configuration;
* :func:`find_triggers_delta` -- the semi-naive mode: only homomorphisms
  whose body image touches at least one fact added after a generation
  watermark, found by seeding the join at each (body atom, delta fact)
  pivot via :func:`repro.logic.homomorphisms.find_homomorphisms_through`.

Both are generators whose restricted-chase head filter runs when a
trigger is *requested* (i.e., against the configuration as it stands at
that moment), so a streaming consumer that fires each yielded trigger
immediately needs no second ``head_satisfied`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.stats import ChaseStats
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.homomorphisms import (
    find_homomorphism,
    find_homomorphisms,
    find_homomorphisms_through,
)
from repro.logic.terms import NullFactory, Variable
from repro.schema.accessible import ChaseRule

RuleLike = Union[TGD, ChaseRule]


def _tgd_of(rule: RuleLike) -> TGD:
    return rule.tgd if isinstance(rule, ChaseRule) else rule


@dataclass(frozen=True)
class Trigger:
    """A rule plus a body homomorphism, ready to fire."""

    rule: RuleLike
    homomorphism: Substitution

    @property
    def tgd(self) -> TGD:
        """The underlying dependency of the trigger's rule."""
        return _tgd_of(self.rule)

    def body_image(self) -> Tuple[Atom, ...]:
        """The facts the body maps onto."""
        return tuple(atom.apply(self.homomorphism) for atom in self.tgd.body)

    def key(self) -> Tuple[str, Tuple[Atom, ...]]:
        """Identity of the trigger for deduplication."""
        return (self.tgd.name, self.body_image())

    def __repr__(self) -> str:
        return f"Trigger({self.tgd.name}, {self.homomorphism!r})"


@dataclass(frozen=True)
class FiringResult:
    """Outcome of firing one trigger."""

    trigger: Trigger
    new_facts: Tuple[Atom, ...]

    @property
    def changed(self) -> bool:
        """Whether the firing added at least one new fact."""
        return bool(self.new_facts)


def head_satisfied(
    tgd: TGD, homomorphism: Substitution, config: ChaseConfiguration
) -> bool:
    """True when the head already holds under the body match.

    Existential head variables may map to *any* value of the configuration
    (this is what makes the chase "restricted"/standard rather than
    oblivious).
    """
    binding = homomorphism.restrict(tgd.frontier())
    return (
        find_homomorphism(list(tgd.head), config.index, binding) is not None
    )


def find_triggers(
    rule: RuleLike,
    config: ChaseConfiguration,
    restricted: bool = True,
    *,
    snapshot: bool = False,
    stats: Optional[ChaseStats] = None,
) -> Iterator[Trigger]:
    """All candidate matches of the rule in the configuration.

    With ``snapshot=True`` candidate scans run over immutable copies, so
    the consumer may fire each yielded trigger (adding facts) without
    corrupting the enumeration; facts added mid-stream are picked up by
    the next round.
    """
    tgd = _tgd_of(rule)
    hom_stats = stats.hom if stats is not None else None
    for hom in find_homomorphisms(
        list(tgd.body), config.index, snapshot=snapshot, stats=hom_stats
    ):
        if stats is not None:
            stats.triggers_enumerated += 1
        body_binding = hom.restrict(tgd.body_variables())
        if restricted and head_satisfied(tgd, body_binding, config):
            if stats is not None:
                stats.triggers_filtered += 1
            continue
        yield Trigger(rule, body_binding)


def find_triggers_delta(
    rule: RuleLike,
    config: ChaseConfiguration,
    since_generation: int,
    restricted: bool = True,
    *,
    stats: Optional[ChaseStats] = None,
) -> Iterator[Trigger]:
    """Candidate matches whose body image touches the delta.

    The delta is every fact the configuration acquired after
    ``since_generation``.  For each body atom and each delta fact of its
    relation, the backtracking join is seeded at that pivot; the remaining
    body atoms join against the *full* index.  A match containing several
    delta facts is found once per delta pivot, so matches are deduplicated
    by body image before the head filter runs.

    Soundness of the restriction: a candidate match containing *no* delta
    fact was already enumerable when every fact of its body image existed,
    i.e. in an earlier pass -- where it was fired, head-filtered, or
    suppressed, and all three outcomes are permanent (facts are never
    removed).  Candidate scans always snapshot, so the consumer may fire
    triggers while streaming.
    """
    delta = config.facts_since(since_generation)
    if not delta:
        return
    tgd = _tgd_of(rule)
    body = list(tgd.body)
    by_relation: Dict[str, List[Atom]] = {}
    for fact in delta:
        by_relation.setdefault(fact.relation, []).append(fact)
    hom_stats = stats.hom if stats is not None else None
    seen: Set[Tuple[str, Tuple[Atom, ...]]] = set()
    for pivot_atom in body:
        pivot_facts = by_relation.get(pivot_atom.relation)
        if not pivot_facts:
            continue
        for pivot_fact in pivot_facts:
            for hom in find_homomorphisms_through(
                body,
                config.index,
                pivot_atom,
                pivot_fact,
                snapshot=True,
                stats=hom_stats,
            ):
                binding = hom.restrict(tgd.body_variables())
                trigger = Trigger(rule, binding)
                key = trigger.key()
                if key in seen:
                    continue
                seen.add(key)
                if stats is not None:
                    stats.triggers_enumerated += 1
                if restricted and head_satisfied(tgd, binding, config):
                    if stats is not None:
                        stats.triggers_filtered += 1
                    continue
                yield trigger


def fire_trigger(
    trigger: Trigger,
    config: ChaseConfiguration,
    nulls: NullFactory,
) -> FiringResult:
    """Fire a trigger in place, returning the facts that were added."""
    tgd = trigger.tgd
    binding = trigger.homomorphism
    for variable in sorted(
        tgd.existential_variables(), key=lambda v: v.name
    ):
        binding = binding.extended(variable, nulls(hint=variable.name))
    trigger_facts = trigger.body_image()
    depth = 1 + max(
        (config.depth(fact) for fact in trigger_facts if fact in config),
        default=0,
    )
    provenance = Provenance(
        rule=tgd.name, trigger_facts=trigger_facts, depth=depth
    )
    new_facts = []
    for head_atom in tgd.head:
        fact = head_atom.apply(binding)
        if config.add(fact, provenance):
            new_facts.append(fact)
    return FiringResult(trigger, tuple(new_facts))


def fire_all_once(
    rules: Iterable[RuleLike],
    config: ChaseConfiguration,
    nulls: NullFactory,
    restricted: bool = True,
) -> Tuple[FiringResult, ...]:
    """One parallel round: fire every current trigger of every rule.

    Triggers are computed against the configuration as it was at the start
    of the round semantics-wise; because firing only ever adds facts, new
    triggers created mid-round are simply picked up next round.
    """
    results = []
    for rule in rules:
        # Materialise before firing: this is round-at-once ("parallel")
        # semantics, so the head filter inside find_triggers ran against
        # the round's *initial* configuration.  A firing earlier in the
        # materialised list can satisfy a later trigger's head, hence the
        # re-verify below is NOT redundant here (unlike the streaming
        # fixpoint engine, where the filter runs at fire time).
        for trigger in list(find_triggers(rule, config, restricted)):
            if restricted and head_satisfied(
                trigger.tgd, trigger.homomorphism, config
            ):
                continue
            results.append(fire_trigger(trigger, config, nulls))
    return tuple(results)
