"""Guarded-bag blocking (Section 5, "Search order and termination").

For Guarded TGDs the chase can run forever, but every configuration can be
organized into a tree of *guarded bags*: sets of facts whose nulls all
occur together in some guard atom.  A rule firing that would create a new
bag is *blocked* when an already-existing bag receives a homomorphic image
of the candidate bag -- any rule firings possible in the new bag would have
duplicates in the old one, so exploring it cannot change which queries
match.  The paper notes this simple check ("very naive compared to the
optimized blocking strategies of the description-logic community") is
enough for termination: there are finitely many bag types, which bounds
the depth of any path of non-blocked bags.

This module is deliberately conservative: blocking more aggressively than
the paper's refined condition can only suppress derived facts, which keeps
every generated plan sound (plans are built from firings that *did*
happen) at a possible cost in completeness of the proof search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.logic.atoms import Atom
from repro.logic.homomorphisms import FactIndex, find_homomorphism
from repro.logic.terms import Null


class BagTree:
    """The tree of guarded bags built during one chase run."""

    __slots__ = ("_bags", "_parent", "_bag_of_null", "_depth", "_next_id")

    def __init__(self) -> None:
        self._bags: Dict[int, Tuple[Atom, ...]] = {}
        self._parent: Dict[int, Optional[int]] = {}
        self._bag_of_null: Dict[Null, int] = {}
        self._depth: Dict[int, int] = {}
        self._next_id = 0

    def register_initial(self, facts: Iterable[Atom]) -> int:
        """Bag 0: the canonical database / initial configuration."""
        return self._new_bag(tuple(facts), parent=None)

    def _new_bag(self, facts: Tuple[Atom, ...], parent: Optional[int]) -> int:
        bag_id = self._next_id
        self._next_id += 1
        self._bags[bag_id] = facts
        self._parent[bag_id] = parent
        self._depth[bag_id] = (
            0 if parent is None else self._depth[parent] + 1
        )
        for fact in facts:
            for null in fact.nulls():
                self._bag_of_null.setdefault(null, bag_id)
        return bag_id

    def bag_of(self, null: Null) -> Optional[int]:
        """The bag owning a null (None for never-registered nulls)."""
        return self._bag_of_null.get(null)

    def depth_of_bag(self, bag_id: int) -> int:
        """Distance of a bag from the root bag."""
        return self._depth[bag_id]

    def facts_of(self, bag_id: int) -> Tuple[Atom, ...]:
        """The facts a bag was created with."""
        return self._bags[bag_id]

    def __len__(self) -> int:
        return len(self._bags)

    def home_bag(self, trigger_facts: Tuple[Atom, ...]) -> Optional[int]:
        """The deepest bag owning a null of the trigger facts (or bag 0)."""
        best: Optional[int] = None
        for fact in trigger_facts:
            for null in fact.nulls():
                bag = self._bag_of_null.get(null)
                if bag is not None and (
                    best is None or self._depth[bag] > self._depth[best]
                ):
                    best = bag
        if best is None and self._bags:
            return 0
        return best

    def is_blocked(self, candidate_facts: Tuple[Atom, ...]) -> bool:
        """True when some existing bag homomorphically absorbs the candidate.

        Nulls of the candidate (both the fresh ones and those inherited
        from the parent) are mappable; schema constants are rigid.
        """
        pattern = list(candidate_facts)
        for bag_id, facts in self._bags.items():
            if len(facts) < len(set(candidate_facts)):
                continue
            index = FactIndex(facts)
            if find_homomorphism(pattern, index, map_nulls=True) is not None:
                return True
        return False

    def register_firing(
        self,
        trigger_facts: Tuple[Atom, ...],
        new_facts: Tuple[Atom, ...],
    ) -> int:
        """Record the bag created by a successful existential firing."""
        parent = self.home_bag(trigger_facts)
        return self._new_bag(tuple(new_facts), parent=parent)


@dataclass
class BlockingPolicy:
    """Configuration of the blocking check used by the chase engine.

    ``max_bag_depth`` is a belt-and-braces cap on the bag-tree depth for
    constraint sets that are not actually guarded (where the blocking
    theorem does not apply).
    """

    enabled: bool = True
    max_bag_depth: Optional[int] = None

    def fresh_tree(self, initial_facts: Iterable[Atom]) -> BagTree:
        """A new bag tree seeded with the initial facts."""
        tree = BagTree()
        tree.register_initial(initial_facts)
        return tree

    def allows(
        self,
        tree: BagTree,
        trigger_facts: Tuple[Atom, ...],
        candidate_facts: Tuple[Atom, ...],
    ) -> bool:
        """Whether an existential firing may proceed."""
        if not self.enabled:
            return True
        if self.max_bag_depth is not None:
            home = tree.home_bag(trigger_facts)
            depth = 0 if home is None else tree.depth_of_bag(home)
            if depth + 1 > self.max_bag_depth:
                return False
        return not tree.is_blocked(candidate_facts)
