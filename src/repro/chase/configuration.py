"""Chase configurations: indexed fact sets with provenance.

A configuration is the set of facts of one element of a chase sequence.
Beyond membership it tracks, per fact, *how* the fact was derived
(:class:`Provenance`: producing rule, trigger facts, derivation depth).
Derivation depth is the paper's tie-breaking policy for choosing candidate
facts in Algorithm 1 ("a candidate node of minimal derivation depth").

Configurations support cheap copying, which the proof-search tree relies
on: every search node owns its own configuration.
"""

from __future__ import annotations

from collections import ChainMap
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from repro.logic.atoms import Atom
from repro.logic.homomorphisms import FactIndex
from repro.logic.terms import Constant, Null, Term
from repro.schema.accessible import ACCESSIBLE


@dataclass(frozen=True, slots=True)
class Provenance:
    """How a fact entered the configuration."""

    rule: str
    trigger_facts: Tuple[Atom, ...]
    depth: int

    @classmethod
    def initial(cls) -> "Provenance":
        """Provenance of facts present from the start (depth 0)."""
        return cls(rule="<initial>", trigger_facts=(), depth=0)


class ChaseConfiguration:
    """An indexed, provenance-tracking set of facts."""

    __slots__ = ("_index", "_provenance", "_accessible")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._index = FactIndex()
        self._provenance: MutableMapping[Atom, Provenance] = {}
        self._accessible: Set[Term] = set()
        initial = Provenance.initial()
        for fact in facts:
            self.add(fact, initial)

    # -------------------------------------------------------- mutation
    def add(self, fact: Atom, provenance: Optional[Provenance] = None) -> bool:
        """Insert a fact; returns False when it was already present."""
        if not fact.is_fact:
            raise ValueError(f"not a ground fact: {fact!r}")
        if not self._index.add(fact):
            return False
        self._provenance[fact] = (
            provenance if provenance is not None else Provenance.initial()
        )
        if fact.relation == ACCESSIBLE:
            self._accessible.add(fact.terms[0])
        return True

    def add_all(
        self, facts: Iterable[Atom], provenance: Optional[Provenance] = None
    ) -> Tuple[Atom, ...]:
        """Insert facts; returns those that were genuinely new."""
        added = []
        for fact in facts:
            if self.add(fact, provenance):
                added.append(fact)
        return tuple(added)

    # --------------------------------------------------------- queries
    @property
    def index(self) -> FactIndex:
        """The underlying indexed fact store."""
        return self._index

    @property
    def generation(self) -> int:
        """Monotone insertion counter (facts are never removed).

        Semi-naive chase evaluation records a generation watermark and
        later asks :meth:`facts_since` for the delta of facts added past
        it; see :mod:`repro.chase.engine`.
        """
        return self._index.generation

    def facts_since(self, generation: int) -> Tuple[Atom, ...]:
        """Facts added after ``generation``, oldest first (a stable
        snapshot -- safe to iterate while firing rules)."""
        return self._index.facts_since(generation)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._index)

    def facts_of(self, relation: str) -> FrozenSet[Atom]:
        """The facts of one relation (empty when none)."""
        return self._index.facts_of(relation)

    def relations(self) -> Iterable[str]:
        """Relation names with at least one fact."""
        return self._index.relations()

    def accessible_values(self) -> FrozenSet[Term]:
        """Values v with ``_accessible(v)`` in the configuration."""
        return frozenset(self._accessible)

    def is_accessible(self, term: Term) -> bool:
        """Whether ``_accessible(term)`` holds in this configuration."""
        return term in self._accessible

    def provenance(self, fact: Atom) -> Provenance:
        """How the fact was derived (rule, trigger facts, depth)."""
        return self._provenance[fact]

    def depth(self, fact: Atom) -> int:
        """Derivation depth (0 for initial facts)."""
        return self._provenance[fact].depth

    def nulls(self) -> FrozenSet[Null]:
        """Every labelled null occurring in some fact."""
        out: Set[Null] = set()
        for fact in self._index:
            out.update(fact.nulls())
        return frozenset(out)

    def relation_signature(self) -> Tuple[Tuple[str, int], ...]:
        """Sorted (relation, fact-count) pairs -- a cheap pre-filter for
        configuration-homomorphism checks in domination pruning."""
        return tuple(
            sorted(
                (relation, self._index.size_of(relation))
                for relation in self._index.relations()
            )
        )

    # ----------------------------------------------------------- copies
    def copy(self) -> "ChaseConfiguration":
        """An independent copy (used when the search tree branches).

        Copy-on-write: the fact index shares the parent's generation-log
        prefix and every bucket until one side mutates it
        (:meth:`FactIndex.fork`), and provenance is layered
        (:class:`collections.ChainMap`) so the copy is O(index keys), not
        O(total facts x arity).  Writes on either side never leak to the
        other; a fact re-added on one side shadows the shared provenance.
        """
        clone = ChaseConfiguration.__new__(ChaseConfiguration)
        clone._index = self._index.fork()
        provenance = self._provenance
        if isinstance(provenance, ChainMap):
            clone._provenance = provenance.new_child()
        else:
            clone._provenance = ChainMap({}, provenance)
        clone._accessible = set(self._accessible)
        return clone

    def deep_copy(self) -> "ChaseConfiguration":
        """A fully materialised copy sharing no mutable state.

        The pre-copy-on-write behaviour, kept for differential testing
        and as the baseline mode of the search benchmarks.
        """
        clone = ChaseConfiguration.__new__(ChaseConfiguration)
        clone._index = self._index.copy()
        clone._provenance = dict(self._provenance)
        clone._accessible = set(self._accessible)
        return clone

    def __repr__(self) -> str:
        return f"ChaseConfiguration({len(self._index)} facts)"
