"""The chase fixpoint engine.

Runs rules over a configuration until no candidate match remains, with
three safety valves:

* a total firing budget (``max_firings``),
* a cap on fact derivation depth (``max_depth``),
* guarded-bag blocking for existential rules (:mod:`repro.chase.blocking`).

The result reports whether a genuine fixpoint was reached or the run was
truncated; callers that need completeness guarantees (Theorem 6 view
rewriting, decision procedures for guarded schemas) check that flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.chase.blocking import BagTree, BlockingPolicy
from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.firing import (
    FiringResult,
    RuleLike,
    Trigger,
    _tgd_of,
    find_triggers,
    head_satisfied,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.terms import NullFactory


class NonTerminatingChaseError(RuntimeError):
    """Raised when the firing budget is exhausted and the policy says raise."""


@dataclass
class ChasePolicy:
    """Termination and blocking controls for one chase run."""

    max_firings: int = 100_000
    max_depth: Optional[int] = None
    blocking: Optional[BlockingPolicy] = None
    raise_on_budget: bool = False
    restricted: bool = True

    def for_saturation(self) -> "ChasePolicy":
        """A copy suitable for eager free-rule saturation in the planner."""
        return ChasePolicy(
            max_firings=self.max_firings,
            max_depth=self.max_depth,
            blocking=self.blocking,
            raise_on_budget=False,
            restricted=self.restricted,
        )


@dataclass
class ChaseResult:
    """Statistics and status of a chase run."""

    reached_fixpoint: bool
    firings: int = 0
    blocked: int = 0
    depth_truncated: int = 0
    new_facts: Tuple[Atom, ...] = ()

    @property
    def is_complete(self) -> bool:
        """No trigger was suppressed: the chase genuinely terminated."""
        return (
            self.reached_fixpoint
            and self.blocked == 0
            and self.depth_truncated == 0
        )


def chase_to_fixpoint(
    config: ChaseConfiguration,
    rules: Sequence[RuleLike],
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    bag_tree: Optional[BagTree] = None,
) -> ChaseResult:
    """Fire rules in place until fixpoint (or a safety valve trips)."""
    policy = policy or ChasePolicy()
    if policy.blocking is not None and bag_tree is None:
        bag_tree = policy.blocking.fresh_tree(list(config))
    firings = 0
    blocked = 0
    truncated = 0
    all_new: List[Atom] = []
    suppressed: Set[Tuple[str, Tuple[Atom, ...]]] = set()
    progress = True
    while progress:
        progress = False
        for rule in rules:
            for trigger in list(
                find_triggers(rule, config, policy.restricted)
            ):
                if firings >= policy.max_firings:
                    if policy.raise_on_budget:
                        raise NonTerminatingChaseError(
                            f"chase exceeded {policy.max_firings} firings"
                        )
                    return ChaseResult(
                        reached_fixpoint=False,
                        firings=firings,
                        blocked=blocked,
                        depth_truncated=truncated,
                        new_facts=tuple(all_new),
                    )
                if trigger.key() in suppressed:
                    continue
                # Re-verify: an earlier firing this round may satisfy it.
                if policy.restricted and head_satisfied(
                    trigger.tgd, trigger.homomorphism, config
                ):
                    continue
                outcome = _fire_checked(
                    trigger, config, nulls, policy, bag_tree
                )
                if outcome == "fired":
                    firings += 1
                    progress = True
                elif outcome == "blocked":
                    blocked += 1
                    suppressed.add(trigger.key())
                elif outcome == "depth":
                    truncated += 1
                    suppressed.add(trigger.key())
    return ChaseResult(
        reached_fixpoint=True,
        firings=firings,
        blocked=blocked,
        depth_truncated=truncated,
        new_facts=tuple(all_new),
    )


def _fire_checked(
    trigger: Trigger,
    config: ChaseConfiguration,
    nulls: NullFactory,
    policy: ChasePolicy,
    bag_tree: Optional[BagTree],
) -> str:
    """Fire one trigger subject to depth and blocking checks."""
    tgd = trigger.tgd
    trigger_facts = trigger.body_image()
    depth = 1 + max(
        (config.depth(f) for f in trigger_facts if f in config), default=0
    )
    if policy.max_depth is not None and depth > policy.max_depth:
        return "depth"
    binding = trigger.homomorphism
    has_existentials = bool(tgd.existential_variables())
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        binding = binding.extended(variable, nulls(hint=variable.name))
    candidate = tuple(atom.apply(binding) for atom in tgd.head)
    if (
        has_existentials
        and policy.blocking is not None
        and bag_tree is not None
        and not policy.blocking.allows(bag_tree, trigger_facts, candidate)
    ):
        return "blocked"
    provenance = Provenance(
        rule=tgd.name, trigger_facts=trigger_facts, depth=depth
    )
    added_any = False
    for fact in candidate:
        if config.add(fact, provenance):
            added_any = True
    if has_existentials and bag_tree is not None:
        bag_tree.register_firing(trigger_facts, candidate)
    return "fired" if added_any else "noop"


def saturate(
    config: ChaseConfiguration,
    rules: Sequence[RuleLike],
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    bag_tree: Optional[BagTree] = None,
) -> ChaseResult:
    """Eager saturation: alias of :func:`chase_to_fixpoint`.

    Named separately because the planner uses it for the "fire cost-free
    rules immediately" discipline of eager proofs (Section 4), where the
    rule set excludes accessibility axioms.
    """
    return chase_to_fixpoint(config, rules, nulls, policy, bag_tree)
