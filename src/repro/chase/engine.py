"""The chase fixpoint engine.

Runs rules over a configuration until no candidate match remains, with
three safety valves:

* a total firing budget (``max_firings``),
* a cap on fact derivation depth (``max_depth``),
* guarded-bag blocking for existential rules (:mod:`repro.chase.blocking`).

The result reports whether a genuine fixpoint was reached or the run was
truncated; callers that need completeness guarantees (Theorem 6 view
rewriting, decision procedures for guarded schemas) check that flag.

Evaluation strategies
---------------------

``ChasePolicy.strategy`` selects how candidate matches are enumerated:

* ``"semi-naive"`` (default): delta-driven.  The engine keeps a per-rule
  generation watermark into the configuration's append-only fact log and,
  on each pass, only searches for matches whose body image touches a fact
  added after the rule's watermark (:func:`find_triggers_delta`).  A match
  among exclusively-old facts was enumerable in an earlier pass, where it
  was fired, head-filtered, or suppressed -- all permanent outcomes, so
  skipping it is sound.  Saturations that *resume* an already-saturated
  configuration (the planner's per-node eager saturation) pass
  ``since_generation`` so even the first pass is delta-restricted.
* ``"naive"``: re-enumerate every body homomorphism of every rule over
  the entire configuration each round -- the textbook loop, kept as the
  differential-testing oracle.

Both strategies stream triggers: enumeration and firing interleave, and
the restricted-chase head filter inside the trigger generators runs when
each trigger is requested, i.e. immediately before it is fired.  The
engine therefore needs no second ``head_satisfied`` check (contrast
:func:`repro.chase.firing.fire_all_once`, which materialises a round up
front and must re-verify).

Every run returns a :class:`ChaseStats` on its :class:`ChaseResult`:
rounds, triggers enumerated/filtered/fired, join effort, and wall time
split between trigger search and firing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.chase.blocking import BagTree, BlockingPolicy
from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.firing import (
    FiringResult,
    RuleLike,
    Trigger,
    _tgd_of,
    find_triggers,
    find_triggers_delta,
    head_satisfied,
)
from repro.chase.stats import ChaseStats
from repro.errors import ChaseBudgetExceeded, NonTerminatingChaseError
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.terms import NullFactory

SEMI_NAIVE = "semi-naive"
NAIVE = "naive"
_STRATEGIES = (SEMI_NAIVE, NAIVE)


@dataclass
class ChasePolicy:
    """Termination, blocking, and evaluation controls for one chase run.

    ``max_firings`` is the soft budget: when it trips the run returns a
    truncated (``reached_fixpoint=False``) result, or raises
    :class:`NonTerminatingChaseError` under ``raise_on_budget``.

    ``max_steps`` / ``max_seconds`` are the *hard* fail-fast budgets for
    non-terminating TGD sets: ``max_steps`` bounds the total number of
    triggers the engine processes (fired, filtered or suppressed) and
    ``max_seconds`` bounds wall-clock time.  Tripping either raises
    :class:`~repro.errors.ChaseBudgetExceeded` carrying the partial
    :class:`ChaseStats`, so a hung saturation surfaces as a structured
    error instead of stalling the planner.
    """

    max_firings: int = 100_000
    max_depth: Optional[int] = None
    blocking: Optional[BlockingPolicy] = None
    raise_on_budget: bool = False
    restricted: bool = True
    strategy: str = SEMI_NAIVE
    max_steps: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown chase strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be positive when given")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive when given")

    def for_saturation(self) -> "ChasePolicy":
        """A copy suitable for eager free-rule saturation in the planner."""
        return ChasePolicy(
            max_firings=self.max_firings,
            max_depth=self.max_depth,
            blocking=self.blocking,
            raise_on_budget=False,
            restricted=self.restricted,
            strategy=self.strategy,
            max_steps=self.max_steps,
            max_seconds=self.max_seconds,
        )


@dataclass
class ChaseResult:
    """Statistics and status of a chase run."""

    reached_fixpoint: bool
    firings: int = 0
    blocked: int = 0
    depth_truncated: int = 0
    new_facts: Tuple[Atom, ...] = ()
    stats: ChaseStats = field(default_factory=ChaseStats)

    @property
    def is_complete(self) -> bool:
        """No trigger was suppressed: the chase genuinely terminated."""
        return (
            self.reached_fixpoint
            and self.blocked == 0
            and self.depth_truncated == 0
        )


def chase_to_fixpoint(
    config: ChaseConfiguration,
    rules: Sequence[RuleLike],
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    bag_tree: Optional[BagTree] = None,
    since_generation: int = 0,
) -> ChaseResult:
    """Fire rules in place until fixpoint (or a safety valve trips).

    ``since_generation`` (semi-naive only) declares that the configuration
    was already saturated under these rules up to that fact-log
    generation: the first pass then restricts trigger search to matches
    touching the facts added since.  Callers must only pass a non-zero
    value when the prior saturation genuinely reached a fixpoint with the
    same rule set; resuming a *truncated* saturation this way may leave
    old-fact triggers unfired (such runs are already flagged
    ``is_complete=False``, so certified-negative reasoning is unaffected).
    """
    policy = policy or ChasePolicy()
    if policy.blocking is not None and bag_tree is None:
        bag_tree = policy.blocking.fresh_tree(list(config))
    delta_mode = policy.strategy == SEMI_NAIVE
    stats = ChaseStats(strategy=policy.strategy, runs=1)
    budget_started = time.perf_counter()
    steps = 0
    firings = 0
    blocked = 0
    truncated = 0
    all_new: List[Atom] = []
    suppressed: Set[Tuple[str, Tuple[Atom, ...]]] = set()
    # Per-rule watermark into the fact log: a pass over a rule only looks
    # for matches touching facts newer than its watermark.
    marks = [since_generation if delta_mode else 0] * len(rules)
    progress = True
    while progress:
        progress = False
        stats.rounds += 1
        for slot, rule in enumerate(rules):
            current_generation = config.generation
            if delta_mode:
                if marks[slot] >= current_generation:
                    continue  # nothing new since this rule's last pass
                triggers = find_triggers_delta(
                    rule,
                    config,
                    marks[slot],
                    policy.restricted,
                    stats=stats,
                )
                marks[slot] = current_generation
            else:
                triggers = find_triggers(
                    rule,
                    config,
                    policy.restricted,
                    snapshot=True,
                    stats=stats,
                )
            iterator = iter(triggers)
            while True:
                tick = time.perf_counter()
                trigger = next(iterator, None)
                stats.time_search += time.perf_counter() - tick
                if trigger is None:
                    break
                steps += 1
                if policy.max_steps is not None and steps > policy.max_steps:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded {policy.max_steps} trigger steps "
                        f"({firings} firings, {stats.rounds} rounds)",
                        stats=stats,
                        steps=steps,
                        elapsed=time.perf_counter() - budget_started,
                    )
                if policy.max_seconds is not None:
                    elapsed = time.perf_counter() - budget_started
                    if elapsed > policy.max_seconds:
                        raise ChaseBudgetExceeded(
                            f"chase exceeded {policy.max_seconds}s wall clock "
                            f"({steps} steps, {firings} firings)",
                            stats=stats,
                            steps=steps,
                            elapsed=elapsed,
                        )
                if firings >= policy.max_firings:
                    if policy.raise_on_budget:
                        raise NonTerminatingChaseError(
                            f"chase exceeded {policy.max_firings} firings"
                        )
                    return ChaseResult(
                        reached_fixpoint=False,
                        firings=firings,
                        blocked=blocked,
                        depth_truncated=truncated,
                        new_facts=tuple(all_new),
                        stats=stats,
                    )
                if trigger.key() in suppressed:
                    continue
                # No head re-check here: the generators above filter
                # satisfied heads at yield time, and nothing fires
                # between the yield and this point.
                tick = time.perf_counter()
                outcome, added = _fire_checked(
                    trigger, config, nulls, policy, bag_tree
                )
                stats.time_fire += time.perf_counter() - tick
                if outcome == "fired":
                    firings += 1
                    stats.triggers_fired += 1
                    all_new.extend(added)
                    progress = True
                elif outcome == "blocked":
                    blocked += 1
                    suppressed.add(trigger.key())
                elif outcome == "depth":
                    truncated += 1
                    suppressed.add(trigger.key())
    return ChaseResult(
        reached_fixpoint=True,
        firings=firings,
        blocked=blocked,
        depth_truncated=truncated,
        new_facts=tuple(all_new),
        stats=stats,
    )


def _fire_checked(
    trigger: Trigger,
    config: ChaseConfiguration,
    nulls: NullFactory,
    policy: ChasePolicy,
    bag_tree: Optional[BagTree],
) -> Tuple[str, Tuple[Atom, ...]]:
    """Fire one trigger subject to depth and blocking checks."""
    tgd = trigger.tgd
    trigger_facts = trigger.body_image()
    depth = 1 + max(
        (config.depth(f) for f in trigger_facts if f in config), default=0
    )
    if policy.max_depth is not None and depth > policy.max_depth:
        return "depth", ()
    binding = trigger.homomorphism
    has_existentials = bool(tgd.existential_variables())
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        binding = binding.extended(variable, nulls(hint=variable.name))
    candidate = tuple(atom.apply(binding) for atom in tgd.head)
    if (
        has_existentials
        and policy.blocking is not None
        and bag_tree is not None
        and not policy.blocking.allows(bag_tree, trigger_facts, candidate)
    ):
        return "blocked", ()
    provenance = Provenance(
        rule=tgd.name, trigger_facts=trigger_facts, depth=depth
    )
    added: List[Atom] = []
    for fact in candidate:
        if config.add(fact, provenance):
            added.append(fact)
    if has_existentials and bag_tree is not None:
        bag_tree.register_firing(trigger_facts, candidate)
    return ("fired" if added else "noop"), tuple(added)


def saturate(
    config: ChaseConfiguration,
    rules: Sequence[RuleLike],
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    bag_tree: Optional[BagTree] = None,
    since_generation: int = 0,
) -> ChaseResult:
    """Eager saturation: alias of :func:`chase_to_fixpoint`.

    Named separately because the planner uses it for the "fire cost-free
    rules immediately" discipline of eager proofs (Section 4), where the
    rule set excludes accessibility axioms.  The planner threads
    ``since_generation`` so each per-node re-saturation only joins
    through the freshly exposed facts.
    """
    return chase_to_fixpoint(
        config, rules, nulls, policy, bag_tree, since_generation
    )
