"""Runtime data substrate: instances, access-enforced sources, AccPart.

The paper assumes remote datasources (web forms, services, legacy DBs)
reachable only through access methods, each access carrying a cost.  This
package simulates that substrate: :class:`Instance` is plain relational
data; :class:`InMemorySource` exposes an instance *only* through the
schema's access methods, logging and charging every access -- exactly the
interface plans run against.  ``accessible_part`` implements the
``AccPart(I)`` fixpoint of Section 3, and ``generators`` builds random
constraint-satisfying instances for tests and benchmarks.
"""

from repro.data.instance import Instance, InstanceError
from repro.data.source import (
    AccessRecord,
    AccessViolation,
    InMemorySource,
    ShardedInMemorySource,
    partition_instance,
    shard_of,
)
from repro.data.accessible_part import AccessiblePart, accessible_part
from repro.data.generators import (
    InstanceGenerator,
    random_instance,
    repair_instance,
)

__all__ = [
    "AccessRecord",
    "AccessViolation",
    "AccessiblePart",
    "InMemorySource",
    "Instance",
    "InstanceError",
    "InstanceGenerator",
    "ShardedInMemorySource",
    "accessible_part",
    "partition_instance",
    "random_instance",
    "repair_instance",
    "shard_of",
]
