"""The accessible part ``AccPart(I)`` of an instance (Section 3).

Everything a querier could ever extract from an instance: start from the
schema constants, repeatedly enter every known value combination into
every access method, and collect the returned facts and values, until a
fixpoint.  Two instances with the same accessible part are
indistinguishable to any plan -- this is the semantic core of
access-determinacy and of Theorems 1-3.

The computation here works directly on an :class:`Instance` (not through
an :class:`InMemorySource`) because it is a *semantic* construction used
by tests and determinacy checks, not a runtime one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

import itertools

from repro.data.instance import Instance
from repro.logic.terms import Constant
from repro.schema.core import Schema


@dataclass(frozen=True)
class AccessiblePart:
    """The result of the AccPart fixpoint."""

    accessed: Dict[str, FrozenSet[Tuple[Constant, ...]]]
    accessible_values: FrozenSet[Constant]
    rounds: int

    def accessed_tuples(self, relation: str) -> FrozenSet[Tuple[Constant, ...]]:
        """The accessed tuples of one relation."""
        return self.accessed.get(relation, frozenset())

    def as_instance(self) -> Instance:
        """The accessible part seen as an instance over original names.

        This is the structure I' of Proposition 2: relation R interpreted
        by the accessed R-tuples.
        """
        instance = Instance()
        for relation, rows in self.accessed.items():
            for row in rows:
                instance.add(relation, row)
        return instance

    def is_subpart_of(self, other: "AccessiblePart") -> bool:
        """Fact containment (the preorder behind Theorem 1)."""
        return all(
            rows <= other.accessed_tuples(relation)
            for relation, rows in self.accessed.items()
        )

    def is_induced_subpart_of(self, other: "AccessiblePart") -> bool:
        """Induced-subinstance containment (the preorder behind Theorem 3).

        Beyond containment, every fact of ``other`` whose values are all
        accessible *here* must already be accessed here.
        """
        if not self.is_subpart_of(other):
            return False
        for relation, rows in other.accessed.items():
            mine = self.accessed_tuples(relation)
            for row in rows:
                if row in mine:
                    continue
                if all(value in self.accessible_values for value in row):
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AccessiblePart):
            mine = {r: v for r, v in self.accessed.items() if v}
            theirs = {r: v for r, v in other.accessed.items() if v}
            return (
                mine == theirs
                and self.accessible_values == other.accessible_values
            )
        return NotImplemented


def accessible_part(schema: Schema, instance: Instance) -> AccessiblePart:
    """Compute ``AccPart(I)`` by the paper's fixpoint iteration.

    The iteration is delta-driven: each method keeps a worklist of rows
    it has not yet returned, and each round only re-examines those, then
    propagates accessibility from the rows accessed *this* round (the
    defining axioms) instead of rescanning everything accessed so far.
    Round boundaries match the naive formulation -- values exposed in a
    round only unlock accesses from the next round on -- so the reported
    ``rounds`` count is unchanged.
    """
    accessible: Set[Constant] = set(schema.constants)
    accessed: Dict[str, Set[Tuple[Constant, ...]]] = {
        relation.name: set() for relation in schema.relations
    }
    # Per-method worklist of rows not yet returned through that method.
    pending: Dict[str, List[Tuple[Constant, ...]]] = {
        method.name: list(instance.tuples(method.relation))
        for method in schema.methods
    }
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        newly_accessed: List[Tuple[Constant, ...]] = []
        for method in schema.methods:
            relation = method.relation
            still_pending: List[Tuple[Constant, ...]] = []
            for row in pending[method.name]:
                if row in accessed[relation]:
                    continue
                if all(
                    row[p] in accessible for p in method.input_positions
                ):
                    accessed[relation].add(row)
                    newly_accessed.append(row)
                    changed = True
                else:
                    still_pending.append(row)
            pending[method.name] = still_pending
        # Defining axioms: all positions of accessed facts become
        # accessible.  Only this round's rows can contribute new values.
        for row in newly_accessed:
            for value in row:
                if value not in accessible:
                    accessible.add(value)
                    changed = True
    return AccessiblePart(
        accessed={r: frozenset(v) for r, v in accessed.items()},
        accessible_values=frozenset(accessible),
        rounds=rounds,
    )
