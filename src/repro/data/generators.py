"""Random constraint-satisfying instance generation.

Benchmarks and soundness tests need many instances that satisfy a
schema's TGDs.  :func:`random_instance` draws tuples from a value pool;
:func:`repair_instance` then closes the data under the constraints by a
ground chase (existential positions are filled with fresh constants),
which terminates whenever the constraint set has a terminating chase and
is cut off by a budget otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.instance import Instance
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.logic.homomorphisms import find_homomorphism, find_homomorphisms
from repro.logic.terms import Constant
from repro.schema.core import Schema


def random_instance(
    schema: Schema,
    sizes: Optional[Dict[str, int]] = None,
    default_size: int = 10,
    pool_size: int = 20,
    seed: int = 0,
    repair: bool = True,
    max_repair_rounds: int = 50,
) -> Instance:
    """A random instance for the schema, optionally constraint-repaired."""
    rng = random.Random(seed)
    pool = [Constant(f"v{i}") for i in range(pool_size)]
    # Schema constants should appear in the data too, so that selections
    # over them are non-trivially exercised.
    pool.extend(schema.constants)
    instance = Instance()
    for relation in schema.relations:
        count = (sizes or {}).get(relation.name, default_size)
        for _ in range(count):
            row = tuple(rng.choice(pool) for _ in range(relation.arity))
            instance.add(relation.name, row)
    if repair and schema.constraints:
        repair_instance(
            instance, schema.constraints, max_rounds=max_repair_rounds,
            seed=seed,
        )
    return instance


def repair_instance(
    instance: Instance,
    constraints: Sequence[TGD],
    max_rounds: int = 50,
    seed: int = 0,
) -> bool:
    """Chase the instance with ground facts until the constraints hold.

    Existential variables are witnessed by fresh constants.  Returns True
    when the instance satisfies all constraints on exit; False when the
    round budget ran out first (possible for non-terminating TGD sets).
    """
    counter = _FreshCounter(seed)
    for _ in range(max_rounds):
        fired = False
        for tgd in constraints:
            for violation in _violations(instance, tgd):
                binding = violation
                for variable in sorted(
                    tgd.existential_variables(), key=lambda v: v.name
                ):
                    binding = binding.extended(variable, counter.fresh())
                for atom in tgd.head:
                    instance.add_fact(atom.apply(binding))
                fired = True
        if not fired:
            return True
    return instance.satisfies_all(constraints)


def _violations(instance: Instance, tgd: TGD) -> List[Substitution]:
    """Body matches with no head extension (a snapshot, for safe mutation)."""
    index = instance.fact_index()
    out = []
    for hom in find_homomorphisms(list(tgd.body), index):
        binding = hom.restrict(tgd.frontier())
        if find_homomorphism(list(tgd.head), index, binding) is None:
            out.append(hom.restrict(tgd.body_variables()))
    return out


class _FreshCounter:
    """Mints fresh repair constants, deterministically per seed."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._count = 0

    def fresh(self) -> Constant:
        """A new constant never used before by this counter."""
        self._count += 1
        return Constant(f"fresh_{self._seed}_{self._count}")


@dataclass
class InstanceGenerator:
    """Reusable generator: one configuration, many seeded instances."""

    schema: Schema
    sizes: Optional[Dict[str, int]] = None
    default_size: int = 10
    pool_size: int = 20
    repair: bool = True

    def generate(self, seed: int) -> Instance:
        """One seeded instance from this generator's configuration."""
        return random_instance(
            self.schema,
            sizes=self.sizes,
            default_size=self.default_size,
            pool_size=self.pool_size,
            seed=seed,
            repair=self.repair,
        )

    def series(self, count: int, start_seed: int = 0) -> Iterable[Instance]:
        """A stream of instances over consecutive seeds."""
        for offset in range(count):
            yield self.generate(start_seed + offset)
