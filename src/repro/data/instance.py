"""Database instances: ground relational data.

An :class:`Instance` assigns each relation a set of tuples of schema
constants.  Instances can be queried directly (for computing the *true*
answer of a query when checking that a plan is complete) and are wrapped
by :class:`~repro.data.source.InMemorySource` for access-restricted
execution.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.homomorphisms import FactIndex, find_homomorphism
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Term


class InstanceError(ValueError):
    """Raised for malformed instance data."""


def _to_constant(value: object) -> Constant:
    if isinstance(value, Constant):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Constant(value)
    raise InstanceError(f"cannot store {value!r} in an instance")


class Instance:
    """A finite database instance (relation name -> set of tuples)."""

    def __init__(
        self, data: Optional[Mapping[str, Iterable[Sequence[object]]]] = None
    ) -> None:
        self._data: Dict[str, Set[Tuple[Constant, ...]]] = {}
        self._index: Optional[FactIndex] = None
        self._version = 0
        if data:
            for relation, tuples in data.items():
                for row in tuples:
                    self.add(relation, row)

    def add(self, relation: str, row: Sequence[object]) -> bool:
        """Insert one tuple (values are coerced to schema constants)."""
        constants = tuple(_to_constant(v) for v in row)
        bucket = self._data.setdefault(relation, set())
        if constants in bucket:
            return False
        bucket.add(constants)
        self._index = None
        self._version += 1
        return True

    def add_fact(self, fact: Atom) -> bool:
        """Insert a ground atom; returns False on duplicates."""
        if not fact.is_fact:
            raise InstanceError(f"not ground: {fact!r}")
        return self.add(fact.relation, fact.terms)

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumps on every successful insert.

        Derived structures (the fact index, per-method access indexes in
        :class:`~repro.data.source.InMemorySource`) use it to detect
        staleness cheaply instead of re-hashing the data.
        """
        return self._version

    def tuples(self, relation: str) -> FrozenSet[Tuple[Constant, ...]]:
        """The stored tuples of one relation (empty when unknown)."""
        return frozenset(self._data.get(relation, ()))

    def relations(self) -> Tuple[str, ...]:
        """Names of relations with at least one stored tuple."""
        return tuple(self._data.keys())

    def size(self, relation: Optional[str] = None) -> int:
        """Tuple count of one relation, or of the whole instance."""
        if relation is not None:
            return len(self._data.get(relation, ()))
        return sum(len(bucket) for bucket in self._data.values())

    def facts(self) -> Iterator[Atom]:
        """Every stored tuple as a ground atom."""
        for relation, bucket in self._data.items():
            for row in bucket:
                yield Atom(relation, row)

    def domain(self) -> FrozenSet[Constant]:
        """The active domain: every value occurring in some tuple."""
        values: Set[Constant] = set()
        for bucket in self._data.values():
            for row in bucket:
                values.update(row)
        return frozenset(values)

    def fact_index(self) -> FactIndex:
        """A (cached) fact index for homomorphism-based evaluation."""
        if self._index is None:
            self._index = FactIndex(self.facts())
        return self._index

    # -------------------------------------------------------- semantics
    def evaluate(self, query: ConjunctiveQuery) -> Set[Tuple[Term, ...]]:
        """The exact answer of a CQ over this instance."""
        return query.evaluate(self.fact_index())

    def satisfies(self, tgd: TGD) -> bool:
        """Integrity check: every body match extends to a head match."""
        index = self.fact_index()
        from repro.logic.homomorphisms import find_homomorphisms

        for hom in find_homomorphisms(list(tgd.body), index):
            binding = hom.restrict(tgd.frontier())
            if find_homomorphism(list(tgd.head), index, binding) is None:
                return False
        return True

    def satisfies_all(self, constraints: Iterable[TGD]) -> bool:
        """Whether every constraint holds on this data."""
        return all(self.satisfies(tgd) for tgd in constraints)

    def violations(self, constraints: Iterable[TGD]) -> Tuple[TGD, ...]:
        """The constraints that do not hold."""
        return tuple(
            tgd for tgd in constraints if not self.satisfies(tgd)
        )

    def copy(self) -> "Instance":
        """An independent deep copy of the stored data."""
        clone = Instance()
        clone._data = {r: set(b) for r, b in self._data.items()}
        clone._version = self._version
        return clone

    # ---------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, list]:
        """A canonical JSON-able dump: relation -> sorted value rows.

        Cell values are the raw scalars behind the stored constants
        (instances hold ground data only), and both relations and rows
        are emitted in sorted order, so equal instances serialize to
        equal bytes -- which is what lets a worker process rehydrate
        "the same source" from a spec instead of receiving pickles.
        """
        return {
            relation: sorted(
                [cell.value for cell in row] for row in bucket
            )
            for relation, bucket in sorted(self._data.items())
            if bucket
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence[object]]]) -> "Instance":
        """Rebuild an instance serialized by :meth:`to_dict`."""
        return cls(data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            mine = {r: b for r, b in self._data.items() if b}
            theirs = {r: b for r, b in other._data.items() if b}
            return mine == theirs
        return NotImplemented

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r}:{len(b)}" for r, b in sorted(self._data.items())
        )
        return f"Instance({parts})"
