"""Access-enforced data sources with per-access metering.

:class:`InMemorySource` is the simulation of the paper's remote
datasources: the *only* way to read data is to invoke a declared access
method with values for all of its input positions.  Every invocation is
logged, so tests and benchmarks can check both the "fewer accesses"
runtime order of Theorem 8 (the set of (method, input-tuple) pairs
touched) and the money/latency cost a cost function assigns.

By default the source answers accesses through a lazily built
*per-method hash index*: the first invocation of a method buckets the
relation's tuples by their values at the method's input positions, and
every later invocation is a dictionary lookup instead of a full
relation scan.  The index is invalidated automatically when the
underlying :class:`~repro.data.instance.Instance` mutates (tracked via
``Instance.version``).  Construct with ``indexed=False`` for the
original scan-per-access behaviour -- the benchmarks' naive reference.
Metering is identical either way: the index changes how an access is
*answered*, never whether it is logged or charged.
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.data.instance import Instance, _to_constant
from repro.errors import AccessViolation
from repro.logic.terms import Constant
from repro.schema.core import AccessMethod, Schema, SchemaError

# Per-method index: input-position value tuple -> matching relation rows.
_MethodIndex = Dict[Tuple[Constant, ...], FrozenSet[Tuple[Constant, ...]]]


@dataclass(frozen=True)
class AccessRecord:
    """One logged invocation of an access method."""

    method: str
    relation: str
    inputs: Tuple[Constant, ...]
    results: int


class InMemorySource:
    """An instance exposed only through its schema's access methods."""

    def __init__(
        self, schema: Schema, instance: Instance, indexed: bool = True
    ) -> None:
        self.schema = schema
        self.instance = instance
        self.indexed = indexed
        self.log: List[AccessRecord] = []
        self._indexes: Dict[str, _MethodIndex] = {}
        self._indexed_version = instance.version
        # Guards the lazy index build (check-version/clear/build) and the
        # metering log, so one source can serve many worker threads; the
        # single-threaded path just pays one uncontended acquisition.
        self._lock = threading.RLock()

    # ------------------------------------------------------------ access
    def access(
        self, method_name: str, inputs: Sequence[object] = ()
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Invoke a method: return all relation tuples matching the inputs.

        ``inputs`` must supply exactly one value per input position of the
        method, in the order the method declares them.
        """
        method = self.schema.method(method_name)
        values = tuple(_to_constant(v) for v in inputs)
        if len(values) != len(method.input_positions):
            raise AccessViolation(
                f"method {method_name} needs {len(method.input_positions)} "
                f"inputs, got {len(values)}",
                method=method_name,
                relation=method.relation,
                inputs=values,
            )
        matching = self._lookup(method, values)
        with self._lock:
            self.log.append(
                AccessRecord(
                    method=method_name,
                    relation=method.relation,
                    inputs=values,
                    results=len(matching),
                )
            )
        return matching

    def epoch(self) -> int:
        """The snapshot token of the adapter protocol: instance version.

        The in-memory source never reconnects, so its epoch is exactly
        the instance's mutation counter -- the token the
        :class:`~repro.exec.cache.AccessCache` has always invalidated
        on.
        """
        return self.instance.version

    def _lookup(
        self, method: AccessMethod, values: Tuple[Constant, ...]
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Answer one access *without* logging it.

        The logging/metering in :meth:`access` stays at the outermost
        source, so composite sources (sharding below) can delegate the
        data question to sub-sources while still charging one access.
        """
        if self.indexed:
            return self._method_index(method).get(values, frozenset())
        return self._scan(method, values)

    def _scan(
        self, method: AccessMethod, values: Tuple[Constant, ...]
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """The original per-access full relation scan."""
        return frozenset(
            row
            for row in self.instance.tuples(method.relation)
            if all(
                row[position] == value
                for position, value in zip(method.input_positions, values)
            )
        )

    def _method_index(self, method: AccessMethod) -> _MethodIndex:
        """The (lazily built, staleness-checked) index of one method.

        The whole check-version / clear / build / install sequence runs
        under the source lock, so concurrent first accesses to a method
        build its index exactly once and never observe a half-cleared
        index map.
        """
        with self._lock:
            if self.instance.version != self._indexed_version:
                self._indexes.clear()
                self._indexed_version = self.instance.version
            index = self._indexes.get(method.name)
            if index is None:
                buckets: Dict[
                    Tuple[Constant, ...], Set[Tuple[Constant, ...]]
                ] = {}
                positions = method.input_positions
                for row in self.instance.tuples(method.relation):
                    buckets.setdefault(
                        tuple(row[p] for p in positions), set()
                    ).add(row)
                index = {
                    key: frozenset(rows) for key, rows in buckets.items()
                }
                self._indexes[method.name] = index
            return index

    # ---------------------------------------------------------- metering
    def reset_log(self) -> None:
        """Clear the access log and counters."""
        with self._lock:
            self.log.clear()

    @property
    def total_invocations(self) -> int:
        """Every logged call, including repeats."""
        return len(self.log)

    def _log_snapshot(self) -> Tuple[AccessRecord, ...]:
        """A point-in-time copy of the log, safe against appenders."""
        with self._lock:
            return tuple(self.log)

    def distinct_accesses(self) -> FrozenSet[Tuple[str, Tuple[Constant, ...]]]:
        """The set of (method, inputs) pairs -- Theorem 8's access measure."""
        return frozenset(
            (rec.method, rec.inputs) for rec in self._log_snapshot()
        )

    def invocations_of(self, method_name: str) -> int:
        """Logged invocation count for one method."""
        return sum(
            1 for rec in self._log_snapshot() if rec.method == method_name
        )

    def charged_cost(self, per_method: Optional[Dict[str, float]] = None) -> float:
        """Total runtime cost: per-method weight (default: declared cost)."""
        total = 0.0
        for record in self._log_snapshot():
            if per_method is not None and record.method in per_method:
                total += per_method[record.method]
            else:
                total += self.schema.method(record.method).cost
        return total

    def __repr__(self) -> str:
        return (
            f"InMemorySource({self.schema.name}, "
            f"{self.instance.size()} tuples, {len(self.log)} accesses)"
        )


# ------------------------------------------------------------------ sharding
def shard_of(relation: str, row: Sequence[Constant], shards: int) -> int:
    """Deterministic shard index of one tuple.

    Uses BLAKE2b over a canonical JSON encoding of the raw cell values,
    *not* Python's builtin ``hash`` -- the builtin is salted per process,
    and shard assignment must agree between the parent and any worker
    process that rehydrates the same data.
    """
    payload = json.dumps(
        [
            relation,
            [
                cell.value if isinstance(cell, Constant) else cell
                for cell in row
            ],
        ],
        separators=(",", ":"),
        default=str,
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def partition_instance(instance: Instance, shards: int) -> Tuple[Instance, ...]:
    """Hash-partition an instance into ``shards`` disjoint instances.

    Every tuple lands in exactly one partition (keyed by
    :func:`shard_of`), so the union of the partitions equals the
    original instance and any per-partition scan results can be merged
    by plain set union without double counting.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts = [Instance() for _ in range(shards)]
    for relation in instance.relations():
        for row in instance.tuples(relation):
            parts[shard_of(relation, row, shards)].add(relation, row)
    return tuple(parts)


class ShardedInMemorySource(InMemorySource):
    """An :class:`InMemorySource` whose data is hash-partitioned.

    Answering an access becomes a *parallel partial scan*: each shard
    answers the access over its own partition (using its own per-method
    index) and the partial results are merged by set union.  This is
    sound because the partitions are disjoint and

    ``access(m, v) over R  ==  U_i access(m, v) over R_i``

    holds for selection-style accesses -- the merge point restores set
    semantics exactly like the columnar dedup boundary.  Note the whole
    *plan* is never run per shard (that would lose cross-shard join
    pairs); only individual accesses fan out.

    Metering is unchanged: one logical access is logged and charged
    once at this source, never per shard.  Pass a
    ``concurrent.futures`` executor as ``pool`` to scan partitions
    concurrently; by default shards are scanned inline.
    """

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        shards: int = 4,
        indexed: bool = True,
        pool: Optional["Executor"] = None,
    ) -> None:
        super().__init__(schema, instance, indexed=indexed)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.pool = pool
        self._partitions: Tuple[InMemorySource, ...] = ()
        self._partition_version = -1
        self._repartition()

    def _repartition(self) -> None:
        self._partitions = tuple(
            InMemorySource(self.schema, part, indexed=self.indexed)
            for part in partition_instance(self.instance, self.shards)
        )
        self._partition_version = self.instance.version

    @property
    def partitions(self) -> Tuple[InMemorySource, ...]:
        """The shard sub-sources (rebuilt lazily after mutations)."""
        with self._lock:
            if self.instance.version != self._partition_version:
                self._repartition()
            return self._partitions

    def _lookup(
        self, method: AccessMethod, values: Tuple[Constant, ...]
    ) -> FrozenSet[Tuple[Constant, ...]]:
        partitions = self.partitions
        if len(partitions) == 1:
            return partitions[0]._lookup(method, values)
        if self.pool is not None:
            futures = [
                self.pool.submit(part._lookup, method, values)
                for part in partitions
            ]
            partials = [future.result() for future in futures]
        else:
            partials = [
                part._lookup(method, values) for part in partitions
            ]
        merged: Set[Tuple[Constant, ...]] = set()
        for partial in partials:
            merged |= partial
        return frozenset(merged)

    def __repr__(self) -> str:
        return (
            f"ShardedInMemorySource({self.schema.name}, "
            f"{self.instance.size()} tuples, {self.shards} shards, "
            f"{len(self.log)} accesses)"
        )
