"""Source decorators: caching, budgets, and failure injection.

Real restricted interfaces are rate-limited, flaky, and worth caching.
These wrappers compose around any source exposing
``access(method, inputs)`` (duck-typed; :class:`~repro.data.source.
InMemorySource` or another decorator):

* :class:`CachingSource` -- memoizes (method, inputs) pairs, so repeated
  probes (common in proof-generated plans whose accesses are driven by
  overlapping temporary tables) hit the backend once.
* :class:`BudgetedSource` -- enforces a hard invocation or cost budget,
  raising :class:`AccessBudgetExceeded`; useful to assert a plan's
  runtime frugality in tests.
* :class:`FlakySource` -- fails deterministically on chosen invocation
  indices, for failure-injection testing of harness code.
* :class:`LatencySource` -- adds a fixed real-time delay per access,
  modelling remote-call latency; this is what makes worker threads in a
  :class:`~repro.service.QueryService` overlap usefully (the sleep
  releases the GIL), so the service benchmark measures real concurrency
  wins rather than pure-Python contention.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.data.instance import _to_constant
from repro.errors import AccessBudgetExceeded, SourceUnavailable
from repro.logic.terms import Constant


class _Wrapper:
    """Shared plumbing: delegate everything, intercept ``access``."""

    #: Never delegate the batch endpoint: a wrapper that intercepts
    #: ``access`` but silently forwards ``access_batch`` would let the
    #: batch path route around its caching/budgeting/fault logic.
    #: Wrappers that can batch safely override this with a real method.
    access_batch = None

    def __init__(self, inner) -> None:
        self.inner = inner

    @property
    def schema(self):
        """The wrapped source's schema."""
        return self.inner.schema

    def __getattr__(self, name):
        return getattr(self.inner, name)


class CachingSource(_Wrapper):
    """Memoize accesses by (method, inputs)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        self._cache: Dict[
            Tuple[str, Tuple[Constant, ...]],
            FrozenSet[Tuple[Constant, ...]],
        ] = {}
        self.hits = 0
        self.misses = 0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        key = (method_name, tuple(_to_constant(v) for v in inputs))
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = self.inner.access(method_name, inputs)
        self._cache[key] = result
        return result


class BudgetedSource(_Wrapper):
    """Refuse accesses beyond an invocation-count or cost budget."""

    def __init__(
        self,
        inner,
        max_invocations: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> None:
        super().__init__(inner)
        self.max_invocations = max_invocations
        self.max_cost = max_cost
        self.invocations = 0
        self.spent = 0.0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        cost = self.schema.method(method_name).cost
        if (
            self.max_invocations is not None
            and self.invocations + 1 > self.max_invocations
        ):
            raise AccessBudgetExceeded(
                f"invocation budget {self.max_invocations} exhausted",
                method=method_name,
                relation=self.schema.method(method_name).relation,
                inputs=tuple(inputs),
            )
        if self.max_cost is not None and self.spent + cost > self.max_cost:
            raise AccessBudgetExceeded(
                f"cost budget {self.max_cost} exhausted "
                f"(spent {self.spent}, next access costs {cost})",
                method=method_name,
                relation=self.schema.method(method_name).relation,
                inputs=tuple(inputs),
            )
        self.invocations += 1
        self.spent += cost
        return self.inner.access(method_name, inputs)


class FlakySource(_Wrapper):
    """Fail on selected invocation indices (0-based), or by predicate."""

    def __init__(
        self,
        inner,
        fail_on: Sequence[int] = (),
        predicate: Optional[Callable[[str, Tuple], bool]] = None,
    ) -> None:
        super().__init__(inner)
        self.fail_on = frozenset(fail_on)
        self.predicate = predicate
        self.calls = 0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        index = self.calls
        self.calls += 1
        if index in self.fail_on or (
            self.predicate is not None
            and self.predicate(method_name, tuple(inputs))
        ):
            raise SourceUnavailable(
                f"injected failure on call #{index}",
                method=method_name,
                inputs=tuple(inputs),
            )
        return self.inner.access(method_name, inputs)


class LatencySource(_Wrapper):
    """Delay every access by a fixed latency (default: real sleep).

    ``sleep`` is injectable for tests; the production default
    ``time.sleep`` releases the GIL, so concurrent workers genuinely
    overlap their waits.  The call counter is lock-protected -- this
    wrapper is meant to sit under a multi-threaded service.
    """

    def __init__(self, inner, latency: float, sleep: Callable[[float], None] = time.sleep) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        super().__init__(inner)
        self.latency = latency
        self._sleep = sleep
        self._lock = threading.Lock()
        self.calls = 0
        self.slept = 0.0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        if self.latency:
            self._sleep(self.latency)
        with self._lock:
            self.calls += 1
            self.slept += self.latency
        return self.inner.access(method_name, inputs)


class StormyLatencySource(_Wrapper):
    """Latency with a deterministic tail: every k-th access is slow.

    Models the P99 regime hedged execution targets -- a backend that is
    usually fast but periodically stalls (GC pause, cold replica, page
    fault storm).  Every access sleeps ``base_latency`` except each
    ``slow_every``-th one (per *instance* call counter, 1-based), which
    sleeps ``slow_latency`` instead.  The counter is lock-protected and
    per instance, so two worker processes rehydrating the same spec
    storm independently -- which is exactly why a hedge duplicate,
    landing on a different counter, usually dodges the slow tick.
    """

    def __init__(
        self,
        inner,
        base_latency: float,
        slow_latency: float,
        slow_every: int,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if base_latency < 0 or slow_latency < 0:
            raise ValueError("latencies must be non-negative")
        if slow_every < 1:
            raise ValueError("slow_every must be at least 1")
        super().__init__(inner)
        self.base_latency = base_latency
        self.slow_latency = slow_latency
        self.slow_every = slow_every
        self._sleep = sleep
        self._lock = threading.Lock()
        self.calls = 0
        self.slow_calls = 0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        with self._lock:
            self.calls += 1
            slow = self.calls % self.slow_every == 0
            if slow:
                self.slow_calls += 1
        delay = self.slow_latency if slow else self.base_latency
        if delay:
            self._sleep(delay)
        return self.inner.access(method_name, inputs)


def calibrate_costs(source) -> Dict[str, float]:
    """Fit simple-cost weights from an executed source's log.

    Per method: the total runtime charge observed, i.e. declared
    per-invocation cost times invocation count.  Feeding the result into
    ``SimpleCostFunction(per_method=...)`` makes a *re*-planning run see
    each method at the price one access command actually cost last time
    (the fan-out of probe methods is priced in), which is the simplest
    feedback loop between execution and the static search.
    """
    from collections import defaultdict

    invocations: Dict[str, int] = defaultdict(int)
    for record in source.log:
        invocations[record.method] += 1
    return {
        method: source.schema.method(method).cost * count
        for method, count in invocations.items()
    }
