"""Requests, responses, and tickets of the concurrent query service.

A :class:`QueryRequest` is everything one serving needs: the plan (or a
plan plus parameter bindings rewritten via
:func:`~repro.exec.batch.substitute_constants`), a priority class, an
optional per-request deadline, and an optional
:class:`~repro.exec.budget.ResourceBudget`.  Submitting one yields a
:class:`Ticket` -- a tiny thread-safe future the caller blocks on --
and the worker resolves it with a :class:`QueryResponse`, which follows
PR 4's :class:`~repro.exec.failover.FailoverOutcome` convention: the
outcome is always *explicitly marked* (``complete`` / ``partial`` /
``error``), never silently degraded.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.exec.budget import ResourceBudget
from repro.exec.stats import ExecStats
from repro.plans.plan import Plan

# Priority classes, lower = more important.  Admission preempts queue
# slots strictly downwards: a HIGH arrival may evict a queued
# BEST_EFFORT (or NORMAL) request, never a peer or better.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_BEST_EFFORT = 2
PRIORITY_CLASSES = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_BEST_EFFORT)
PRIORITY_NAMES = {
    PRIORITY_HIGH: "high",
    PRIORITY_NORMAL: "normal",
    PRIORITY_BEST_EFFORT: "best-effort",
}


@dataclass
class QueryRequest:
    """One unit of admitted work: a plan run with its governance."""

    plan: Plan
    bindings: Optional[Mapping[object, object]] = None
    priority: int = PRIORITY_NORMAL
    deadline_seconds: Optional[float] = None
    budget: Optional[ResourceBudget] = None
    request_id: str = ""
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")


@dataclass
class QueryResponse:
    """The explicitly marked outcome of one served request.

    Exactly one of the three shapes holds: ``complete`` (full answer),
    ``partial`` (a marked under-approximation -- today: a result-row
    budget truncated the output), or neither with ``error`` set (the
    request failed or was shed; the error is always a typed
    :class:`~repro.errors.ReproError`).
    """

    request_id: str
    table: Optional[object] = None
    complete: bool = False
    partial: bool = False
    error: Optional[Exception] = None
    truncated_rows: int = 0
    stats: Optional[ExecStats] = None
    queue_wait: float = 0.0
    wall_time: float = 0.0
    #: True when this response was served while the service's method
    #: health registry had a nonempty dead set -- planning was degraded
    #: (the plan avoids the dead methods, or the answer is the marked
    #: accessible-part fallback).  Orthogonal to complete/partial: a
    #: degraded *complete* response is still the certain answers.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """Whether any answer (complete or partial) was produced."""
        return self.table is not None

    def describe(self) -> str:
        """A one-line human-readable digest."""
        if self.complete:
            status = "complete"
            if self.degraded:
                status = "complete (degraded planning)"
        elif self.partial:
            status = f"PARTIAL ({self.truncated_rows} rows truncated)"
        else:
            status = f"FAILED ({self.error})"
        rows = len(self.table.rows) if self.table is not None else 0
        return (
            f"{self.request_id or 'request'}: {status}, {rows} rows, "
            f"waited {self.queue_wait * 1e3:.1f} ms, "
            f"ran {self.wall_time * 1e3:.1f} ms"
        )


class Ticket:
    """A thread-safe handle on one submitted request's future response."""

    def __init__(self, request: QueryRequest) -> None:
        self.request = request
        self._done = threading.Event()
        self._response: Optional[QueryResponse] = None

    def resolve(self, response: QueryResponse) -> None:
        """Deliver the response and wake every waiter (service-internal)."""
        self._response = response
        self._done.set()

    def done(self) -> bool:
        """Whether the response has arrived."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the response arrives and return it.

        Raises :class:`TimeoutError` if ``timeout`` elapses first; the
        request itself keeps running (or queued) -- a result() timeout
        is the caller giving up on *waiting*, not a cancellation.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"no response for {self.request.request_id or 'request'} "
                f"within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"Ticket({self.request.request_id or 'request'}: {state})"
