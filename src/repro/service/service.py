"""The concurrent query service: a bounded worker pool over one runtime.

:class:`QueryService` is the serving loop the ROADMAP's "heavy traffic"
north star needs: many clients submit plan runs concurrently, a fixed
pool of worker threads executes them over *shared* runtime state (one
:class:`~repro.data.source.InMemorySource` with its per-method indexes,
one :class:`~repro.exec.cache.AccessCache`, one
:class:`~repro.exec.resilience.BreakerRegistry`), and the service stays
correct and responsive no matter the offered load:

* **admission control** -- a bounded priority queue
  (:class:`~repro.service.admission.AdmissionQueue`); overload is shed
  fast with typed :class:`~repro.errors.ServiceOverloaded` errors
  carrying queue depth and a retry-after hint, and high-priority
  arrivals may preempt queued best-effort work.
* **per-request governance** -- each request runs under its own
  :class:`~repro.exec.resilience.Deadline` (measured from *submission*,
  so time spent queued counts) and
  :class:`~repro.exec.budget.ResourceBudget` (row budgets inside
  :meth:`Plan.execute <repro.plans.plan.Plan.execute>`, access/cost
  budgets via :class:`~repro.data.decorators.BudgetedSource`), so one
  pathological request degrades to a typed error or an explicitly
  marked partial answer instead of starving the pool.
* **isolation of mutable state** -- workers share only lock-protected
  structures; every request gets its own
  :class:`~repro.exec.resilience.ResilientDispatcher` (forked over the
  shared breakers) and its own :class:`~repro.exec.stats.ExecStats`,
  merged into the service aggregate under the service lock.
* **lifecycle** -- :meth:`start` / :meth:`drain` / :meth:`shutdown`
  with the drain guarantee (in-flight and queued requests finish, new
  ones are rejected) and a :meth:`health` snapshot for operators.

Soundness of the sharing is argued in ``docs/theory.md`` ("Concurrent
serving"): memoization and breaker state are *monotone observations* of
a deterministic source, so interleaving requests cannot change any
request's answer -- the differential test suite asserts exactly that.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Mapping, Optional

from repro.cost.bounds import SizeBounds
from repro.cost.calibration import CalibrationStore
from repro.data.accessible_part import accessible_part
from repro.data.decorators import BudgetedSource
from repro.data.instance import _to_constant
from repro.errors import (
    DeadlineExceeded,
    ExecutionError,
    MethodOutage,
    NoViablePlan,
    PlanFailed,
    PlanInadmissible,
    ReproError,
    ServiceOverloaded,
    ServiceStopped,
)
from repro.exec.batch import substitute_constants
from repro.exec.budget import ERROR, ResourceBudget
from repro.exec.cache import AccessCache
from repro.exec.resilience import (
    CLOSED,
    BreakerRegistry,
    Deadline,
    ResilientDispatcher,
    RetryPolicy,
    Sleep,
)
from repro.exec.stats import ExecStats
from repro.logic.atoms import Atom
from repro.logic.queries import ConjunctiveQuery
from repro.planner.plan_cache import PlanCache, canonical_query_text, plan_cache_key
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.expressions import NamedTable
from repro.plans.ir import table_from_ir
from repro.plans.plan import Plan
from repro.service.admission import AdmissionQueue
from repro.service.method_health import MethodHealthRegistry
from repro.service.workers import (
    WorkerPool,
    encode_bindings,
    encoded_plan_ir,
    rebuild_error,
    retry_to_dict,
)
from repro.service.request import (
    PRIORITY_NORMAL,
    QueryRequest,
    QueryResponse,
    Ticket,
)

#: retry-after floor when the service has not served anything yet.
_DEFAULT_SERVICE_TIME = 0.05


@dataclass
class ServiceHealth:
    """A point-in-time operational snapshot of a :class:`QueryService`."""

    running: bool
    accepting: bool
    workers: int
    queue_depth: int
    queue_capacity: int
    in_flight: int
    served: int
    completed: int
    partial: int
    failed: int
    shed: int
    rejected: int
    preempted: int
    mean_service_time: float
    breakers: Dict[str, str]
    cache: Optional[Dict]
    stats: Optional[Dict]
    #: Execution-tier liveness (None when running in the worker threads).
    worker_tier: Optional[Dict] = None
    #: Plan-cache counters (None when no plan cache is configured).
    plan_cache: Optional[Dict] = None
    #: How many times Algorithm 1 search actually ran for submit_query.
    planned: int = 0
    #: Cost-calibration counters (None when no store is configured):
    #: observation totals, store version, estimate hit/fallback counts.
    calibration: Optional[Dict] = None
    #: Requests rejected at admission because their static result-size
    #: bound already exceeded the budget's row ceiling.
    rejected_inadmissible: int = 0
    #: Method-health registry snapshot: the current dead-method set,
    #: outage observations, recoveries, plus how often planning re-ran
    #: over a degraded schema (``replans``) and how many responses were
    #: served under a nonempty dead set (``degraded_served``).
    method_health: Optional[Dict] = None

    def summary(self) -> str:
        """A one-line human-readable digest."""
        open_breakers = [
            method for method, state in self.breakers.items()
            if state != "closed"
        ]
        return (
            f"{'running' if self.running else 'stopped'}"
            f"{'' if self.accepting else ' (draining)'}: "
            f"{self.in_flight} in flight, "
            f"{self.queue_depth}/{self.queue_capacity} queued, "
            f"{self.served} served "
            f"({self.completed} complete / {self.partial} partial / "
            f"{self.failed} failed), {self.shed} shed"
            + (f", breakers not closed: {open_breakers}" if open_breakers else "")
            + (
                f", worker tier {self.worker_tier['tier']} DEGRADED"
                if self.worker_tier and not self.worker_tier.get("alive")
                else ""
            )
        )

    def as_dict(self) -> Dict:
        """A JSON-able representation."""
        return {
            "running": self.running,
            "accepting": self.accepting,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "in_flight": self.in_flight,
            "served": self.served,
            "completed": self.completed,
            "partial": self.partial,
            "failed": self.failed,
            "shed": self.shed,
            "rejected": self.rejected,
            "preempted": self.preempted,
            "mean_service_time": self.mean_service_time,
            "breakers": dict(self.breakers),
            "cache": self.cache,
            "stats": self.stats,
            "worker_tier": self.worker_tier,
            "plan_cache": self.plan_cache,
            "planned": self.planned,
            "calibration": self.calibration,
            "rejected_inadmissible": self.rejected_inadmissible,
            "method_health": self.method_health,
        }


class QueryService:
    """Serve plan runs concurrently over one shared, locked runtime."""

    def __init__(
        self,
        source,
        *,
        workers: int = 4,
        max_queue: int = 64,
        cache: Optional[AccessCache] = None,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
        default_deadline: Optional[float] = None,
        default_budget: Optional[ResourceBudget] = None,
        collect_stats: bool = True,
        clock=time.monotonic,
        sleep: Optional[Sleep] = None,
        name: str = "service",
        executor: str = "interpreter",
        worker_pool: Optional[WorkerPool] = None,
        plan_cache: Optional[PlanCache] = None,
        calibration: Optional[CalibrationStore] = None,
        size_bounds: Optional[SizeBounds] = None,
        method_health: Optional[MethodHealthRegistry] = None,
        allow_degraded: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.source = source
        self.workers = workers
        self.cache = cache
        self.executor = executor
        # Feedback loop: every served request's ExecStats are folded
        # into the calibration store (per-method fan-out/selectivity),
        # which cost functions holding the store read on the next plan.
        self.calibration = calibration
        # Static size bounds backing admission-time inadmissibility
        # checks: a plan whose provable result-size floor already
        # exceeds the request's hard row ceiling is rejected typed,
        # before a single access is dispatched.
        self.size_bounds = size_bounds
        schema = getattr(source, "schema", None)
        self._method_relations: Dict[str, str] = (
            {m.name: m.relation for m in schema.methods}
            if schema is not None
            else {}
        )
        self._rejected_inadmissible = 0
        # The execution tier: None keeps plan runs in this process's
        # worker threads; a WorkerPool ships them (plan IR + bindings +
        # budget, never pickles) to the tier -- typically a
        # ProcessWorkerPool, which is what escapes the GIL.
        self.worker_pool = worker_pool
        # Cross-request plan cache consulted by submit_query before
        # invoking Algorithm 1 search.
        self.plan_cache = plan_cache
        self._planned = 0
        # Health-aware degraded planning: outages observed while serving
        # mark methods dead here, and plan_for plans over the schema
        # minus the dead set -- one re-plan per outage, not one failure
        # per request.  allow_degraded additionally lets submit_query
        # fall back to a marked-partial accessible-part answer when no
        # full plan survives the dead set.
        self.method_health = (
            method_health if method_health is not None else MethodHealthRegistry()
        )
        self.allow_degraded = allow_degraded
        self._replans = 0
        self._degraded_served = 0
        self.retry = retry
        self.breakers = breakers if breakers is not None else BreakerRegistry(
            clock=clock
        )
        self.default_deadline = default_deadline
        self.default_budget = default_budget
        self.clock = clock
        self.sleep = sleep
        self.name = name
        self.stats: Optional[ExecStats] = ExecStats() if collect_stats else None
        self._queue = AdmissionQueue(max_queue)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._running = False
        self._accepting = False
        self._ids = itertools.count(1)
        self._in_flight = 0
        self._served = 0
        self._completed = 0
        self._partial = 0
        self._failed = 0
        self._shed = 0
        self._mean_service_time = 0.0

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "QueryService":
        """Spawn the worker pool and begin accepting requests."""
        with self._lock:
            if self._running:
                return self
            self._queue.reopen()
            self._running = True
            self._accepting = True
        if self.worker_pool is not None:
            self.worker_pool.start()
        with self._lock:
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"{self.name}-worker-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish queued + in-flight work, reject new.

        Returns True when everything finished within ``timeout``.
        """
        return self.shutdown(drain=True, timeout=timeout)

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the service; with ``drain=False`` queued work is shed.

        Already-executing requests always run to completion (their
        tickets resolve); with ``drain=False`` still-queued tickets are
        resolved with a typed :class:`ServiceStopped` error instead of
        executing.  Returns True when every worker exited in time.
        """
        with self._lock:
            self._accepting = False
        if not drain:
            for ticket in self._queue.evict_all():
                self._resolve_shed(
                    ticket,
                    ServiceStopped(
                        "service stopped before this request was served"
                    ),
                )
        self._queue.close()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        finished = True
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            finished = finished and not thread.is_alive()
        if self.worker_pool is not None:
            self.worker_pool.shutdown()
        with self._lock:
            self._running = not finished
        return finished

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ---------------------------------------------------------- submission
    def submit(
        self,
        plan: Plan,
        *,
        bindings: Optional[Mapping[object, object]] = None,
        priority: int = PRIORITY_NORMAL,
        deadline: Optional[float] = None,
        budget: Optional[ResourceBudget] = None,
        request_id: Optional[str] = None,
    ) -> Ticket:
        """Admit one request; returns its :class:`Ticket` immediately.

        Raises :class:`~repro.errors.ServiceOverloaded` (fast, typed,
        with queue depth and retry-after hint) when admission control
        sheds the request at the door, and
        :class:`~repro.errors.ServiceStopped` when the service is not
        accepting.  A lower-priority ticket preempted by this admission
        is resolved with the same typed overload error -- every
        submitted request is accounted for.
        """
        with self._lock:
            if not (self._running and self._accepting):
                raise ServiceStopped(
                    f"service {self.name!r} is not accepting requests"
                )
            rid = request_id or f"q{next(self._ids)}"
        if budget is None and self.default_budget is not None:
            budget = self.default_budget.fresh()
        self._check_admissible(plan, budget)
        seconds = deadline if deadline is not None else self.default_deadline
        request = QueryRequest(
            plan=plan,
            bindings=bindings,
            priority=priority,
            deadline_seconds=seconds,
            budget=budget,
            request_id=rid,
            submitted_at=self.clock(),
        )
        ticket = Ticket(request)
        ticket.deadline = (
            Deadline(seconds, clock=self.clock) if seconds is not None else None
        )
        try:
            evicted = self._queue.offer(
                ticket, retry_after=self._retry_after_hint()
            )
        except ServiceOverloaded:
            with self._lock:
                self._shed += 1
            raise
        if evicted is not None:
            depth = self._queue.depth()
            self._resolve_shed(
                evicted,
                ServiceOverloaded(
                    "request shed from the admission queue by a "
                    "higher-priority arrival",
                    queue_depth=depth,
                    retry_after=self._retry_after_hint(),
                    shed=True,
                ),
            )
        return ticket

    def _check_admissible(
        self, plan: Plan, budget: Optional[ResourceBudget]
    ) -> None:
        """Reject plans whose static result bound dooms the budget.

        Only fires when static size bounds are configured, the budget's
        result ceiling is a hard error (``on_result_overflow="error"``
        -- truncate-mode requests succeed partially, so they are never
        doomed), and the bound is *finite*: an unknown (infinite) bound
        proves nothing, and admission stays permissive on no-proof.
        Conversely a finite bound at or under the ceiling proves the
        admitted request can never trip the result check.
        """
        if (
            self.size_bounds is None
            or budget is None
            or budget.max_result_rows is None
            or budget.on_result_overflow != ERROR
        ):
            return
        bound = self.size_bounds.result_bound(plan)
        if math.isinf(bound) or bound <= budget.max_result_rows:
            return
        with self._lock:
            self._rejected_inadmissible += 1
        raise PlanInadmissible(
            f"plan {plan.name!r} statically bounded to "
            f"{bound:.0f} result rows, over the hard budget ceiling of "
            f"{budget.max_result_rows}; rejected before execution",
            kind="result",
            bound=bound,
            ceiling=budget.max_result_rows,
        )

    def serve(
        self,
        plan: Plan,
        *,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> QueryResponse:
        """Submit and block for the response (convenience wrapper)."""
        return self.submit(plan, **kwargs).result(timeout)

    # ------------------------------------------------------ query planning
    def current_dead_methods(self) -> tuple:
        """The dead-method set planning must avoid right now, sorted.

        The union of the method-health registry and any breakers
        force-opened by a hard outage (failover's diagnosis path);
        force-opened breakers are folded *into* the registry so the
        two views converge.  Recovery is observed here too: a dead
        method whose breaker has closed again (a half-open probe
        succeeded, or :meth:`mark_method_recovered` reset it) leaves
        the dead set.
        """
        dead = set(self.method_health.dead_methods())
        for method in self.breakers.forced_open_methods():
            if method not in dead:
                self.method_health.mark_dead(method, reason="breaker forced open")
                dead.add(method)
        if dead:
            states = self.breakers.states()
            for method in list(dead):
                if states.get(method) == CLOSED:
                    self.method_health.mark_recovered(method)
                    dead.discard(method)
        return tuple(sorted(dead))

    def mark_method_recovered(self, method: str) -> bool:
        """Declare one method's outage over (operator/probe action).

        Resets the method's breaker (a *forced*-open breaker never
        half-opens by itself) and clears the registry entry, so the
        next planning pass sees the full schema again -- whose cached
        plan, keyed by the healthy schema fingerprint, is still warm.
        Returns True when the method was actually marked dead.
        """
        self.breakers.reset_method(method)
        return self.method_health.mark_recovered(method)

    def plan_for(
        self,
        query: ConjunctiveQuery,
        *,
        search_options: Optional[SearchOptions] = None,
    ) -> Plan:
        """The best plan for a query, via the plan cache when configured.

        The cache key covers the *whole* planning problem -- canonical
        query text, schema fingerprint, cost-model identity (see
        :mod:`repro.planner.plan_cache`) -- so a hit is exactly as good
        as re-running Algorithm 1.  On a miss the search runs here, in
        the submitting thread (planning is request-shaping work, like
        admission), and the result is stored for every later request.
        Concurrent misses on the same key may both search; both store
        the same answer, so this is wasted work at worst, never a wrong
        plan.

        Under a nonempty dead-method set, planning runs over
        ``schema.without_methods(dead)``: the degraded schema has a
        *different fingerprint*, so the dead set is part of the cache
        key by construction -- an outage costs one re-plan (a cache
        miss on the degraded key), then every request hits the degraded
        entry until recovery swings the key back.  Raises typed
        :class:`~repro.errors.NoViablePlan` when no plan avoids the
        dead methods.
        """
        options = search_options if search_options is not None else SearchOptions()
        dead = self.current_dead_methods()
        schema = self.source.schema
        if dead:
            schema = schema.without_methods(dead)
        key = None
        if self.plan_cache is not None:
            key = plan_cache_key(query, schema, options.cost)
            hit = self.plan_cache.get(key)
            if hit is not None:
                return hit.plan
        if dead and not schema.methods:
            raise NoViablePlan(
                "every access method is dead", dead_methods=dead
            )
        result = find_best_plan(schema, query, options)
        with self._lock:
            self._planned += 1
            if dead:
                self._replans += 1
        if not result.found:
            if dead:
                raise NoViablePlan(
                    f"no plan for {canonical_query_text(query)} avoids "
                    f"the dead methods",
                    dead_methods=dead,
                )
            raise ExecutionError(
                f"no plan within the search budget for query "
                f"{canonical_query_text(query)}"
            )
        if self.plan_cache is not None and key is not None:
            meta = {
                "query": canonical_query_text(query),
                "schema": schema.fingerprint(),
            }
            if dead:
                meta["dead_methods"] = list(dead)
            self.plan_cache.put(key, result.best_plan, result.best_cost, meta=meta)
        return result.best_plan

    def submit_query(
        self,
        query: ConjunctiveQuery,
        *,
        search_options: Optional[SearchOptions] = None,
        **kwargs,
    ) -> Ticket:
        """Plan a query (cache-first) and admit the resulting plan run.

        This is the millions-of-users entry point: many clients, few
        distinct queries.  With a warm :class:`PlanCache` the search
        step disappears and only execution remains; ``kwargs`` are
        those of :meth:`submit` (bindings, priority, deadline, budget).

        When the dead-method set leaves *no* viable plan and
        ``allow_degraded`` is on, the request is served anyway: the
        query is evaluated over the accessible part of the surviving
        schema and the response comes back explicitly marked
        ``partial`` and ``degraded`` -- a sound under-approximation of
        the certain answers, never a silent wrong answer and never a
        per-request error storm.
        """
        try:
            plan = self.plan_for(query, search_options=search_options)
        except NoViablePlan:
            if not self.allow_degraded:
                raise
            return self._degraded_ticket(query, **kwargs)
        return self.submit(plan, **kwargs)

    def _degraded_ticket(
        self,
        query: ConjunctiveQuery,
        *,
        bindings: Optional[Mapping[object, object]] = None,
        priority: int = PRIORITY_NORMAL,
        deadline: Optional[float] = None,
        budget: Optional[ResourceBudget] = None,
        request_id: Optional[str] = None,
    ) -> Ticket:
        """Serve a no-viable-plan query from the accessible part, marked.

        The answer is computed synchronously (it reads the wrapped
        instance directly -- the simulation's ground truth restricted
        to what surviving methods can reveal, the same fallback
        :class:`~repro.exec.failover.FailoverExecutor` uses) and the
        ticket comes back already resolved with a ``partial`` +
        ``degraded`` response.  The request is fully accounted: it
        counts as served/partial in :meth:`health`, so the accounting
        identity holds with zero special cases.
        """
        with self._lock:
            if not (self._running and self._accepting):
                raise ServiceStopped(
                    f"service {self.name!r} is not accepting requests"
                )
            rid = request_id or f"q{next(self._ids)}"
        bound_query = self._bind_query(query, bindings)
        dead = self.current_dead_methods()
        schema = self.source.schema.without_methods(dead)
        started = perf_counter()
        part = accessible_part(schema, self.source.instance).as_instance()
        answers = part.evaluate(bound_query)
        table = NamedTable(
            tuple(variable.name for variable in bound_query.head),
            frozenset(answers),
        )
        request = QueryRequest(
            plan=None,  # no plan survives the dead set; served degraded
            bindings=bindings,
            priority=priority,
            deadline_seconds=deadline,
            budget=budget,
            request_id=rid,
            submitted_at=self.clock(),
        )
        ticket = Ticket(request)
        response = QueryResponse(
            rid,
            table=table,
            complete=False,
            partial=True,
            degraded=True,
            wall_time=perf_counter() - started,
        )
        ticket.resolve(response)
        with self._lock:
            self._in_flight += 1  # balances _account's decrement
        self._account(response)
        return ticket

    @staticmethod
    def _bind_query(
        query: ConjunctiveQuery,
        bindings: Optional[Mapping[object, object]],
    ) -> ConjunctiveQuery:
        """Substitute parameter constants into a query's body atoms."""
        if not bindings:
            return query
        mapping = {
            _to_constant(key): _to_constant(value)
            for key, value in bindings.items()
        }
        atoms = tuple(
            Atom(
                atom.relation,
                tuple(mapping.get(term, term) for term in atom.terms),
            )
            for atom in query.atoms
        )
        return ConjunctiveQuery(query.head, atoms, name=query.name)

    # ------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.take()
            if ticket is None:
                return
            with self._lock:
                self._in_flight += 1
            try:
                response = self._execute(ticket)
            except Exception as error:  # never leave a ticket hanging
                response = QueryResponse(
                    ticket.request.request_id,
                    error=(
                        error
                        if isinstance(error, ReproError)
                        else ExecutionError(
                            f"unexpected worker failure: {error!r}"
                        )
                    ),
                )
            if not response.degraded and self.method_health.dead_methods():
                # Anything served while the dead set is nonempty is
                # visibly flagged: the answer may be complete (a
                # re-planned full plan still computes the certain
                # answers) but the serving regime is degraded.
                response.degraded = True
            ticket.resolve(response)
            self._account(response)

    def _execute(self, ticket: Ticket) -> QueryResponse:
        request = ticket.request
        queue_wait = max(0.0, self.clock() - request.submitted_at)
        deadline: Optional[Deadline] = ticket.deadline
        stats = ExecStats() if self.stats is not None else None
        if deadline is not None and deadline.expired:
            return QueryResponse(
                request.request_id,
                error=DeadlineExceeded(
                    f"deadline of {request.deadline_seconds}s expired "
                    f"after {queue_wait:.3f}s in the admission queue"
                ),
                stats=stats,
                queue_wait=queue_wait,
            )
        if self.worker_pool is not None:
            return self._execute_on_pool(ticket, queue_wait, stats)
        plan = request.plan
        if request.bindings:
            plan = substitute_constants(plan, request.bindings)
        source = self.source
        budget = request.budget
        if budget is not None and (
            budget.max_accesses is not None or budget.max_cost is not None
        ):
            source = BudgetedSource(
                source,
                max_invocations=budget.max_accesses,
                max_cost=budget.max_cost,
            )
        dispatcher = ResilientDispatcher(
            retry=self.retry,
            breakers=self.breakers,
            deadline=deadline,
            sleep=self.sleep,
        )
        started = perf_counter()
        try:
            table = plan.execute(
                source,
                cache=self.cache,
                stats=stats,
                resilience=dispatcher,
                budget=budget,
                executor=self.executor,
            )
        except ReproError as error:
            return QueryResponse(
                request.request_id,
                error=error,
                stats=stats,
                queue_wait=queue_wait,
                wall_time=perf_counter() - started,
            )
        truncated = budget.truncated_rows if budget is not None else 0
        return QueryResponse(
            request.request_id,
            table=table,
            complete=truncated == 0,
            partial=truncated > 0,
            truncated_rows=truncated,
            stats=stats,
            queue_wait=queue_wait,
            wall_time=perf_counter() - started,
        )

    def _execute_on_pool(
        self,
        ticket: Ticket,
        queue_wait: float,
        stats: Optional[ExecStats],
    ) -> QueryResponse:
        """Ship one admitted request to the execution tier.

        The request crosses the boundary as data -- plan IR, term-IR
        bindings, a budget dict, a retry-policy dict -- and the answer
        comes back as sorted rows plus a stats dict.  The per-request
        deadline is enforced parent-side as the blocking-wait timeout
        (worker processes cannot share the parent's clock); tier-level
        failures (a killed worker, a timeout) surface as typed errors
        on this ticket only, and the pool recovers for the next one.
        """
        request = ticket.request
        budget = request.budget
        deadline: Optional[Deadline] = ticket.deadline
        payload = {
            # Memoized per plan object: a hot plan (and every hedge
            # duplicate the tier issues for it) is encoded once.
            "plan": encoded_plan_ir(request.plan),
            "bindings": encode_bindings(request.bindings),
            "executor": self.executor,
            "collect_stats": stats is not None,
            "budget": budget.as_dict() if budget is not None else None,
            "retry": retry_to_dict(self.retry),
        }
        timeout = deadline.remaining() if deadline is not None else None
        started = perf_counter()
        try:
            result = self.worker_pool.run_request(payload, timeout=timeout)
        except ReproError as error:
            return QueryResponse(
                request.request_id,
                error=error,
                stats=stats,
                queue_wait=queue_wait,
                wall_time=perf_counter() - started,
            )
        wall_time = perf_counter() - started
        if stats is not None and result.get("stats"):
            stats.merge(ExecStats.from_dict(result["stats"]))
        if not result.get("ok"):
            return QueryResponse(
                request.request_id,
                error=rebuild_error(result),
                stats=stats,
                queue_wait=queue_wait,
                wall_time=wall_time,
            )
        truncated = int(result.get("truncated", 0))
        if budget is not None:
            budget.truncated_rows = truncated
        return QueryResponse(
            request.request_id,
            table=table_from_ir(result["table"]),
            complete=truncated == 0,
            partial=truncated > 0,
            truncated_rows=truncated,
            stats=stats,
            queue_wait=queue_wait,
            wall_time=wall_time,
        )

    def _observe_outage(self, response: QueryResponse) -> None:
        """Mark the failing method dead on a hard-outage response.

        This is the feed of the method-health registry: a typed
        :class:`~repro.errors.MethodOutage` (direct from in-process
        execution, rebuilt with its method context from a worker-tier
        failure dict, or wrapped in a :class:`PlanFailed`) means the
        method is hard-down -- the *next* planning pass avoids it.
        """
        error = response.error
        if isinstance(error, PlanFailed) and error.cause is not None:
            error = error.cause
        if isinstance(error, MethodOutage):
            method = getattr(error, "method", None)
            if method:
                self.method_health.mark_dead(method)

    def _account(self, response: QueryResponse) -> None:
        # Fold the request's observed row flow into the calibration
        # store *outside* the service lock -- the store has its own --
        # so planning threads reading estimates never wait on accounting.
        if self.calibration is not None and response.stats is not None:
            try:
                self.calibration.observe_stats(
                    response.stats, relation_of=self._method_relations
                )
            except Exception:  # pragma: no cover -- feedback is advisory
                # The calibration fold must never stop the books from
                # balancing: the ticket is already resolved, and an
                # unaccounted request breaks served-counter invariants.
                pass
        if response.error is not None:
            self._observe_outage(response)
        with self._lock:
            self._in_flight -= 1
            self._served += 1
            if response.degraded:
                self._degraded_served += 1
            if response.complete:
                self._completed += 1
            elif response.partial:
                self._partial += 1
            else:
                self._failed += 1
            if response.wall_time:
                # EWMA feeding the retry-after hint.
                if self._mean_service_time:
                    self._mean_service_time = (
                        0.8 * self._mean_service_time
                        + 0.2 * response.wall_time
                    )
                else:
                    self._mean_service_time = response.wall_time
            if self.stats is not None and response.stats is not None:
                self.stats.merge(response.stats)
            self._idle.notify_all()

    def _resolve_shed(self, ticket: Ticket, error: ReproError) -> None:
        ticket.resolve(
            QueryResponse(ticket.request.request_id, error=error)
        )
        with self._lock:
            self._shed += 1

    def _retry_after_hint(self) -> float:
        """Expected seconds until capacity frees up (a hint, not a vow).

        Little's-law shape: (work waiting) x (mean service time) /
        (effective parallelism).  With an execution tier configured the
        effective width is the *narrower* of the service thread pool
        and the tier's worker count -- a 2-process tier behind 8
        service threads drains 2 requests at a time, not 8 -- and the
        tier's own backlog beyond this service's in-flight requests
        (hedge duplicates, other clients of a shared pool) counts as
        waiting work too.
        """
        with self._lock:
            mean = self._mean_service_time or _DEFAULT_SERVICE_TIME
            waiting = self._queue.depth() + self._in_flight
        width = self.workers
        if self.worker_pool is not None:
            tier_width = getattr(self.worker_pool, "workers", 0) or 0
            if tier_width:
                width = min(width, tier_width)
            try:
                backlog = self.worker_pool.backlog()
            except Exception:  # pragma: no cover -- defensive
                backlog = 0
            with self._lock:
                waiting += max(0, backlog - self._in_flight)
        return max(mean, waiting * mean / width)

    # ---------------------------------------------------------- inspection
    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or in flight (for tests/drains)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._idle:
            while self._in_flight or self._queue.depth():
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining if remaining is not None else 0.1)
        return True

    @property
    def shed_count(self) -> int:
        """Requests shed so far (door rejections + preemptions + stop)."""
        with self._lock:
            return self._shed

    def health(self) -> ServiceHealth:
        """A point-in-time snapshot of queue, tiers, breakers and caches.

        ``worker_tier`` reports the execution tier's liveness (its
        ``alive`` flag goes false when a broken process pool could not
        be replaced -- the degradation is visible here, and requests
        fail with typed :class:`~repro.errors.WorkerCrashed`, never
        hang); ``plan_cache`` carries the hit/miss/invalidation
        counters and ``planned`` how often search actually ran.
        """
        worker_tier = (
            self.worker_pool.health() if self.worker_pool is not None else None
        )
        plan_cache = (
            self.plan_cache.counters() if self.plan_cache is not None else None
        )
        calibration = (
            self.calibration.counters()
            if self.calibration is not None
            else None
        )
        method_health = self.method_health.counters()
        with self._lock:
            method_health["replans"] = self._replans
            method_health["degraded_served"] = self._degraded_served
            return ServiceHealth(
                running=self._running,
                accepting=self._accepting,
                workers=self.workers,
                queue_depth=self._queue.depth(),
                queue_capacity=self._queue.capacity,
                in_flight=self._in_flight,
                served=self._served,
                completed=self._completed,
                partial=self._partial,
                failed=self._failed,
                shed=self._shed,
                rejected=self._queue.rejected,
                preempted=self._queue.preempted,
                mean_service_time=self._mean_service_time,
                breakers=self.breakers.states(),
                cache=self.cache.as_dict() if self.cache is not None else None,
                stats=self.stats.as_dict() if self.stats is not None else None,
                worker_tier=worker_tier,
                plan_cache=plan_cache,
                planned=self._planned,
                calibration=calibration,
                rejected_inadmissible=self._rejected_inadmissible,
                method_health=method_health,
            )

    def __repr__(self) -> str:
        return f"QueryService({self.name}: {self.health().summary()})"
