"""The process-parallel worker tier: ship plans and specs, not pickles.

CPython's GIL means the thread pool inside :class:`~repro.service.
QueryService` only scales when requests *wait* (the `LatencySource`
benchmark); CPU-bound chase/search/columnar work serializes.  This
module moves plan execution into worker **processes** while keeping the
service's externally observable behaviour bit-identical:

* **What crosses the boundary is data, never live objects.**  A
  :func:`source_to_spec` *source spec* (plain JSON-able dict: schema
  serialization, canonical instance dump, wrapper stack) is shipped
  once per worker via the executor's initializer, so each worker
  rehydrates its own source -- with its own per-method indexes -- once,
  not per request.  Requests then ship only the plan IR
  (:mod:`repro.plans.ir`), encoded bindings and a budget dict; answers
  come back as sorted row lists (:func:`~repro.plans.ir.table_to_ir`)
  plus an ``ExecStats.as_dict()`` payload the parent rebuilds and
  merges.  No pickled closures, no live sources -- which is also what
  makes the tier ``spawn``-safe (the default start method here).

* **What does NOT cross the boundary** -- the parent's
  :class:`~repro.exec.cache.AccessCache`, circuit breakers and fault
  wrapper attempt counters -- is per-process state in the workers.
  That is still sound: caches and breakers are *monotone observations*
  of a deterministic source (docs/theory.md, "Concurrent serving"), so
  partitioning observations among processes can change efficiency,
  never answers; the seeded fault schedule is keyed by
  ``(seed, method, inputs)`` (not by call order), so a faulty access
  fails the same way in any process.

* **Crashes are typed, not hung.**  A killed worker breaks the whole
  ``ProcessPoolExecutor``; :class:`ProcessWorkerPool` maps that to a
  typed :class:`~repro.errors.WorkerCrashed` for the affected request,
  recreates the pool, and counts the restart -- surfaced through
  ``QueryService.health()``.

:class:`ThreadWorkerPool` keeps the old in-process behaviour behind the
same interface (useful on small data, where serialization dominates,
and as the degraded fallback when processes are unavailable).
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import repro.errors as errors_module
from repro.data.decorators import (
    CachingSource,
    LatencySource,
    StormyLatencySource,
)
from repro.data.instance import Instance, _to_constant
from repro.data.source import InMemorySource, ShardedInMemorySource
from repro.errors import (
    AccessError,
    DeadlineExceeded,
    ExecutionError,
    ReproError,
    WorkerCrashed,
    WorkerStalled,
)
from repro.exec.batch import substitute_constants
from repro.exec.budget import ResourceBudget
from repro.exec.resilience import (
    BreakerRegistry,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.exec.stats import ExecStats
from repro.faults.policy import FaultPolicy
from repro.faults.source import FaultInjectingSource
from repro.logic.terms import Constant
from repro.plans.ir import (
    ir_to_plan,
    plan_to_ir,
    table_from_ir,
    table_to_ir,
    term_from_ir,
    term_to_ir,
)
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.sources.base import (
    AdaptiveConcurrencySource,
    CoalescingSource,
    PacedSource,
    source_epoch,
)
from repro.sources.http import HTTPSource, StubTransport
from repro.sources.sqlite import SQLiteSource

#: Format marker stamped into every source spec.
SPEC_KIND = "repro.source-spec"
SPEC_VERSION = 1


class SourceSpecError(ValueError):
    """Raised when a source (stack) cannot be described as a spec."""


# -------------------------------------------------------------- source spec
def source_to_spec(source) -> Dict[str, Any]:
    """Describe a source (possibly a wrapper stack) as a plain dict.

    Supported: :class:`InMemorySource`, :class:`ShardedInMemorySource`,
    and stacks of :class:`LatencySource` / :class:`CachingSource` /
    :class:`FaultInjectingSource` over them.  Stateful wrappers whose
    behaviour depends on global call order (``FlakySource``,
    ``BudgetedSource``) are rejected: replaying them per worker would
    change semantics, and budgets are shipped per request instead.
    """
    if isinstance(source, StormyLatencySource):
        # Per-instance call counters make the storm *schedule* differ
        # between workers, but latency is timing-only nondeterminism:
        # answers are unchanged, which is what makes this (unlike
        # FlakySource) safe to replay per worker -- and what hedged
        # dispatch exploits.
        return {
            "wrap": "storm",
            "base_latency": source.base_latency,
            "slow_latency": source.slow_latency,
            "slow_every": source.slow_every,
            "inner": source_to_spec(source.inner),
        }
    if isinstance(source, LatencySource):
        return {
            "wrap": "latency",
            "latency": source.latency,
            "inner": source_to_spec(source.inner),
        }
    if isinstance(source, CachingSource):
        return {"wrap": "caching", "inner": source_to_spec(source.inner)}
    if isinstance(source, PacedSource):
        return {
            "wrap": "paced",
            "rate": source.rate,
            "capacity": source.capacity,
            "max_wait": source.max_wait,
            "inner": source_to_spec(source.inner),
        }
    if isinstance(source, AdaptiveConcurrencySource):
        # The evolved AIMD limit is deliberately not shipped: each
        # worker starts its own probe from the configured ceiling, the
        # same way per-worker breakers start closed.
        return {
            "wrap": "aimd",
            "max_concurrency": source.max_concurrency,
            "increase": source.increase,
            "inner": source_to_spec(source.inner),
        }
    if isinstance(source, CoalescingSource):
        return {"wrap": "coalescing", "inner": source_to_spec(source.inner)}
    if isinstance(source, FaultInjectingSource):
        policy = source.policy
        return {
            "wrap": "faults",
            "policy": {
                "seed": policy.seed,
                "unavailable_rate": policy.unavailable_rate,
                "timeout_rate": policy.timeout_rate,
                "rate_limit_rate": policy.rate_limit_rate,
                "truncation_rate": policy.truncation_rate,
                "burst": policy.burst,
                "truncation_keep": policy.truncation_keep,
                "latency": policy.latency,
                "outages": dict(policy.outages),
            },
            "inner": source_to_spec(source.inner),
        }
    if isinstance(source, ShardedInMemorySource):
        return {
            "format": SPEC_KIND,
            "version": SPEC_VERSION,
            "kind": "sharded",
            "schema": schema_to_dict(source.schema),
            "instance": source.instance.to_dict(),
            "shards": source.shards,
            "indexed": source.indexed,
        }
    if isinstance(source, InMemorySource):
        return {
            "format": SPEC_KIND,
            "version": SPEC_VERSION,
            "kind": "memory",
            "schema": schema_to_dict(source.schema),
            "instance": source.instance.to_dict(),
            "indexed": source.indexed,
        }
    if isinstance(source, SQLiteSource):
        # Each worker rehydrates its *own* database from the canonical
        # instance dump (":memory:" by construction) -- workers never
        # share a connection, so there is nothing to contend on.
        return {
            "format": SPEC_KIND,
            "version": SPEC_VERSION,
            "kind": "sqlite",
            "schema": schema_to_dict(source.schema),
            "instance": source.instance.to_dict(),
            "max_reconnects": source.max_reconnects,
            "backoff": source.backoff,
            "max_backoff": source.max_backoff,
            "drop_every": source.drop_every,
        }
    if isinstance(source, HTTPSource):
        spec_config = getattr(source.transport, "spec_config", None)
        if not callable(spec_config):
            raise SourceSpecError(
                f"HTTPSource transport {type(source.transport).__name__} "
                "is not spec-able: it exposes no spec_config()"
            )
        return {
            "format": SPEC_KIND,
            "version": SPEC_VERSION,
            "kind": "http",
            "schema": schema_to_dict(source.transport.schema),
            "instance": source.transport.instance.to_dict(),
            "transport": spec_config(),
            "max_retry_after_waits": source.max_retry_after_waits,
            "max_snapshot_restarts": source.max_snapshot_restarts,
        }
    raise SourceSpecError(
        f"cannot describe {type(source).__name__} as a worker source spec"
    )


def spec_to_source(spec: Mapping[str, Any]):
    """Rehydrate the source (stack) described by :func:`source_to_spec`."""
    wrap = spec.get("wrap")
    if wrap == "storm":
        return StormyLatencySource(
            spec_to_source(spec["inner"]),
            float(spec["base_latency"]),
            float(spec["slow_latency"]),
            int(spec["slow_every"]),
        )
    if wrap == "latency":
        return LatencySource(
            spec_to_source(spec["inner"]), float(spec["latency"])
        )
    if wrap == "caching":
        return CachingSource(spec_to_source(spec["inner"]))
    if wrap == "paced":
        return PacedSource(
            spec_to_source(spec["inner"]),
            float(spec["rate"]),
            capacity=float(spec["capacity"]),
            max_wait=float(spec["max_wait"]),
        )
    if wrap == "aimd":
        return AdaptiveConcurrencySource(
            spec_to_source(spec["inner"]),
            max_concurrency=int(spec["max_concurrency"]),
            increase=float(spec["increase"]),
        )
    if wrap == "coalescing":
        return CoalescingSource(spec_to_source(spec["inner"]))
    if wrap == "faults":
        policy = spec["policy"]
        return FaultInjectingSource(
            spec_to_source(spec["inner"]),
            FaultPolicy(
                seed=policy["seed"],
                unavailable_rate=policy["unavailable_rate"],
                timeout_rate=policy["timeout_rate"],
                rate_limit_rate=policy["rate_limit_rate"],
                truncation_rate=policy["truncation_rate"],
                burst=policy["burst"],
                truncation_keep=policy["truncation_keep"],
                latency=policy["latency"],
                outages=dict(policy["outages"]),
            ),
        )
    if spec.get("format") != SPEC_KIND or spec.get("version") != SPEC_VERSION:
        raise SourceSpecError(
            f"not a source spec (format={spec.get('format')!r}, "
            f"version={spec.get('version')!r})"
        )
    schema = schema_from_dict(spec["schema"])
    instance = Instance.from_dict(spec["instance"])
    if spec["kind"] == "sharded":
        return ShardedInMemorySource(
            schema,
            instance,
            shards=int(spec["shards"]),
            indexed=bool(spec.get("indexed", True)),
        )
    if spec["kind"] == "memory":
        return InMemorySource(
            schema, instance, indexed=bool(spec.get("indexed", True))
        )
    if spec["kind"] == "sqlite":
        drop_every = spec.get("drop_every")
        return SQLiteSource(
            schema,
            instance,
            max_reconnects=int(spec.get("max_reconnects", 4)),
            backoff=float(spec.get("backoff", 0.01)),
            max_backoff=float(spec.get("max_backoff", 0.5)),
            drop_every=None if drop_every is None else int(drop_every),
        )
    if spec["kind"] == "http":
        config = spec["transport"]
        policy = config.get("fault_policy")
        transport = StubTransport(
            schema,
            instance,
            latency=float(config.get("latency", 0.0)),
            page_size=config.get("page_size"),
            rate_limit=config.get("rate_limit"),
            burst=config.get("burst"),
            fault_policy=None
            if policy is None
            else FaultPolicy(
                seed=policy["seed"],
                unavailable_rate=policy["unavailable_rate"],
                timeout_rate=policy["timeout_rate"],
                rate_limit_rate=policy["rate_limit_rate"],
                truncation_rate=policy["truncation_rate"],
                burst=policy["burst"],
                truncation_keep=policy["truncation_keep"],
                latency=policy["latency"],
                outages=dict(policy["outages"]),
            ),
        )
        return HTTPSource(
            transport,
            max_retry_after_waits=int(spec.get("max_retry_after_waits", 8)),
            max_snapshot_restarts=int(spec.get("max_snapshot_restarts", 8)),
        )
    raise SourceSpecError(f"unknown source spec kind {spec['kind']!r}")


# ----------------------------------------------------------- request payload
def encode_bindings(
    bindings: Optional[Mapping[object, object]]
) -> Optional[List[List[Dict[str, Any]]]]:
    """Encode a constant-substitution mapping as term-IR pairs."""
    if not bindings:
        return None
    return [
        [term_to_ir(_to_constant(key)), term_to_ir(_to_constant(value))]
        for key, value in bindings.items()
    ]


def decode_bindings(
    encoded: Optional[List[List[Dict[str, Any]]]]
) -> Optional[Dict[Constant, Constant]]:
    """Inverse of :func:`encode_bindings`."""
    if not encoded:
        return None
    return {
        term_from_ir(key): term_from_ir(value) for key, value in encoded
    }


def _budget_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[ResourceBudget]:
    if data is None:
        return None
    return ResourceBudget(
        max_result_rows=data.get("max_result_rows"),
        max_resident_rows=data.get("max_resident_rows"),
        max_accesses=data.get("max_accesses"),
        max_cost=data.get("max_cost"),
        on_result_overflow=data.get("on_result_overflow", "truncate"),
    )


def _retry_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[RetryPolicy]:
    if data is None:
        return None
    return RetryPolicy(
        max_attempts=int(data.get("max_attempts", 4)),
        base_delay=float(data.get("base_delay", 0.05)),
        multiplier=float(data.get("multiplier", 2.0)),
        max_delay=float(data.get("max_delay", 2.0)),
        jitter=float(data.get("jitter", 0.1)),
    )


def retry_to_dict(retry: Optional[RetryPolicy]) -> Optional[Dict[str, Any]]:
    """Encode a retry policy for the request payload."""
    if retry is None:
        return None
    return {
        "max_attempts": retry.max_attempts,
        "base_delay": retry.base_delay,
        "multiplier": retry.multiplier,
        "max_delay": retry.max_delay,
        "jitter": retry.jitter,
    }


# Encoded-plan memo: hedged process-tier dispatch ships the full plan IR
# per duplicate, and a hot plan (plan-cache hit) is re-encoded for every
# request.  Keyed weakly by the (frozen, hashable) Plan object so the
# memo lives exactly as long as the plan-cache entry that keeps the plan
# alive; encoding happens at most once per plan object.
_ENCODED_PLANS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_ENCODED_PLANS_LOCK = threading.Lock()


def encoded_plan_ir(plan) -> Dict[str, Any]:
    """``plan_to_ir(plan)``, memoized per plan object.

    The dispatch-path encoder: every pool payload (and every hedge
    duplicate of it) shares one encoded IR dict per plan.  Sound
    because plans are immutable and :func:`~repro.plans.ir.ir_to_plan`
    never mutates its input.  Unhashable/unweakreferenceable plans fall
    back to plain encoding.
    """
    try:
        with _ENCODED_PLANS_LOCK:
            cached = _ENCODED_PLANS.get(plan)
    except TypeError:
        return plan_to_ir(plan)
    if cached is not None:
        return cached
    encoded = plan_to_ir(plan)
    try:
        with _ENCODED_PLANS_LOCK:
            _ENCODED_PLANS[plan] = encoded
    except TypeError:
        pass
    return encoded


def execute_payload(
    source, payload: Mapping[str, Any], cancel=None
) -> Dict[str, Any]:
    """Run one shipped request against a source; return a plain dict.

    This is the single execution path both pool flavours share: the
    process tier calls it in the worker against the rehydrated source,
    the thread tier calls it in-process against the shared source.
    Errors come back as ``{"ok": False, "error_type", "error"}`` so the
    parent can re-raise the matching typed :mod:`repro.errors` class --
    exception *instances* never cross the boundary.

    ``cancel`` (thread tier only) is a :class:`threading.Event` the
    interpreter polls between commands: a hedge duplicate whose twin
    already won stops cooperatively instead of running to completion.
    A successful result carries the source's epoch token (``"epoch"``)
    so callers can tell which backend snapshot answered.
    """
    try:
        plan = ir_to_plan(payload["plan"])
        bindings = decode_bindings(payload.get("bindings"))
        if bindings:
            plan = substitute_constants(plan, bindings)
        budget = _budget_from_dict(payload.get("budget"))
        run_source = source
        if budget is not None and (
            budget.max_accesses is not None or budget.max_cost is not None
        ):
            from repro.data.decorators import BudgetedSource

            run_source = BudgetedSource(
                source,
                max_invocations=budget.max_accesses,
                max_cost=budget.max_cost,
            )
        stats = ExecStats() if payload.get("collect_stats") else None
        dispatcher = ResilientDispatcher(
            retry=_retry_from_dict(payload.get("retry")),
            breakers=BreakerRegistry(),
        )
        table = plan.execute(
            run_source,
            stats=stats,
            resilience=dispatcher,
            budget=budget,
            executor=payload.get("executor", "interpreter"),
            cancel=cancel,
        )
        return {
            "ok": True,
            "table": table_to_ir(table),
            "truncated": budget.truncated_rows if budget is not None else 0,
            "stats": stats.as_dict() if stats is not None else None,
            "epoch": source_epoch(source),
        }
    except ReproError as error:
        failure = {
            "ok": False,
            "error_type": type(error).__name__,
            "error": str(error),
        }
        # Access-layer context crosses the boundary too: the service's
        # method-health registry needs to know *which* method died, and
        # a string message is not a protocol.
        for attribute in ("method", "relation"):
            value = getattr(error, attribute, None)
            if isinstance(value, str):
                failure[attribute] = value
        return failure


def rebuild_error(result: Mapping[str, Any]) -> ReproError:
    """Rebuild the typed error a worker reported for one request.

    Access errors are rebuilt *with* their method/relation context when
    the worker shipped it, so parent-side consumers (the service's
    method-health registry, failover diagnosis) see the same typed
    error they would have seen executing in-process.
    """
    error_type = result.get("error_type", "ExecutionError")
    error_class = getattr(errors_module, error_type, ExecutionError)
    if not (
        isinstance(error_class, type) and issubclass(error_class, ReproError)
    ):
        error_class = ExecutionError
    message = str(result.get("error", "worker failure"))
    kwargs: Dict[str, Any] = {}
    if issubclass(error_class, AccessError):
        for attribute in ("method", "relation"):
            value = result.get(attribute)
            if isinstance(value, str):
                kwargs[attribute] = value
    try:
        return error_class(message, **kwargs)
    except TypeError:
        return ExecutionError(message)


# ------------------------------------------------------- worker process side
#: The once-per-worker rehydrated source (set by the pool initializer).
_WORKER_SOURCE = None


def _init_worker(spec: Mapping[str, Any]) -> None:
    """Executor initializer: rehydrate the source once per process."""
    global _WORKER_SOURCE
    _WORKER_SOURCE = spec_to_source(spec)


def _run_payload_task(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The task the parent submits; referenced by name, so spawn-safe."""
    if _WORKER_SOURCE is None:
        return {
            "ok": False,
            "error_type": "ExecutionError",
            "error": "worker process was never initialized with a source spec",
        }
    return execute_payload(_WORKER_SOURCE, payload)


# -------------------------------------------------------- latency tracking
class LatencyTracker:
    """Streaming EWMA mean + P95 estimate of request service times.

    The P95 is a Robbins-Monro stochastic quantile approximation: each
    sample nudges the estimate up by a ``quantile`` fraction of one
    step when the sample lies above it, down by ``1 - quantile`` when
    below, with the step scaled to the current mean -- so the tail
    estimate converges without storing any samples.  :meth:`hedge_delay`
    is what hedged dispatch waits before duplicating a request: the
    current P95 (clamped into ``[min_delay, max_delay]``), i.e. long
    enough that ~95% of requests come back unhedged and only the tail
    pays for a duplicate.  Until ``warmup`` samples arrive the tracker
    answers ``initial_delay`` -- a cold estimator should not hedge
    aggressively.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        quantile: float = 0.95,
        initial_delay: float = 0.05,
        min_delay: float = 0.001,
        max_delay: float = 5.0,
        warmup: int = 5,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be within (0, 1]")
        if not 0 < quantile < 1:
            raise ValueError("quantile must be within (0, 1)")
        self.alpha = alpha
        self.quantile = quantile
        self.initial_delay = initial_delay
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.warmup = warmup
        self._lock = threading.Lock()
        self.samples = 0
        self.mean = 0.0
        self.p95 = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one observed request service time in."""
        if seconds < 0:
            return
        with self._lock:
            self.samples += 1
            if self.samples == 1:
                self.mean = seconds
                self.p95 = seconds
                return
            self.mean += self.alpha * (seconds - self.mean)
            step = self.alpha * max(self.mean, 1e-6)
            if seconds > self.p95:
                self.p95 += step * self.quantile
            else:
                self.p95 = max(0.0, self.p95 - step * (1.0 - self.quantile))

    def hedge_delay(self) -> float:
        """How long to wait before issuing a hedge duplicate."""
        with self._lock:
            if self.samples < self.warmup:
                return self.initial_delay
            return min(self.max_delay, max(self.min_delay, self.p95))

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-able snapshot (surfaced by pool ``health()``)."""
        with self._lock:
            return {
                "samples": self.samples,
                "mean": self.mean,
                "p95": self.p95,
            }


# ------------------------------------------------------------------- pools
class WorkerPool:
    """The execution-tier interface ``QueryService`` dispatches through.

    One blocking call per request: :meth:`run_request` takes the plain
    payload dict and returns the plain result dict of
    :func:`execute_payload` (raising typed errors only for tier-level
    failures: crash, stall, timeout).  ``start``/``shutdown`` bracket
    the tier's lifetime; :meth:`health` is a JSON-able liveness
    snapshot.

    Both concrete tiers share two opt-in resilience features:

    * a **watchdog** (``watchdog_seconds``): a stall bound per request,
      independent of (and typically much tighter than) the request
      deadline.  A request that exceeds it while its worker is alive
      but stuck surfaces typed :class:`~repro.errors.WorkerStalled`
      instead of blocking its slot forever -- the process tier also
      kills and recreates the pool to reclaim the slot;
    * **hedged dispatch** (``hedge=True``): after an adaptive
      EWMA-P95-based delay (see :class:`LatencyTracker`) the request is
      duplicated to a second worker and the first result wins, cutting
      tail latency.  Safe because plan execution is deterministic and
      accesses are idempotent under set semantics (docs/theory.md,
      "Chaos model, hedging, and degraded serving").
    """

    kind = "none"

    def _init_resilience(
        self,
        watchdog_seconds: Optional[float],
        hedge: bool,
        hedge_delay: Optional[float],
    ) -> None:
        """Shared constructor plumbing for watchdog + hedging state."""
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive")
        if hedge_delay is not None and hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive")
        self.watchdog_seconds = watchdog_seconds
        self.hedge = hedge
        self._hedge_delay = hedge_delay
        self.latency = LatencyTracker()
        self.stalls = 0
        self.watchdog_kills = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_waste = 0
        self.hedge_cancelled = 0
        self._pending = 0

    def hedge_delay(self) -> float:
        """The delay before a hedge duplicate (fixed or adaptive)."""
        if self._hedge_delay is not None:
            return self._hedge_delay
        return self.latency.hedge_delay()

    def backlog(self) -> int:
        """Requests currently inside the tier (submitted, unfinished)."""
        with self._lock:
            return self._pending

    def _resilience_health(self) -> Dict[str, Any]:
        """The watchdog/hedging slice of ``health()``; caller holds lock."""
        return {
            "pending": self._pending,
            "watchdog_seconds": self.watchdog_seconds,
            "stalls": self.stalls,
            "watchdog_kills": self.watchdog_kills,
            "hedge": self.hedge,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_waste": self.hedge_waste,
            "hedge_cancelled": self.hedge_cancelled,
            "latency": self.latency.as_dict(),
        }

    def _wait_hedged(
        self,
        primary: Future,
        submit: Callable[[], Future],
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        """Await a request future, duplicating it after the hedge delay.

        Returns the winner's result dict; raises ``FutureTimeoutError``
        when neither copy answered within ``timeout`` (both copies are
        cancelled best-effort first) and whatever the winner raised
        otherwise.  Counter protocol: ``hedges`` counts duplicates
        issued, ``hedge_wins`` duplicates that answered first,
        ``hedge_waste`` duplicates outrun by their primary.
        """
        started = time.monotonic()
        delay = self.hedge_delay()
        if not self.hedge or (timeout is not None and delay >= timeout):
            return primary.result(timeout=timeout)
        try:
            return primary.result(timeout=delay)
        except FutureTimeoutError:
            pass
        hedge = submit()
        with self._lock:
            self.hedges += 1
        remaining = (
            None
            if timeout is None
            else max(0.0, timeout - (time.monotonic() - started))
        )
        done, _ = futures_wait(
            [primary, hedge], timeout=remaining, return_when=FIRST_COMPLETED
        )
        if not done:
            self._cancel_loser(hedge)
            raise FutureTimeoutError()
        # Prefer the primary when both raced to completion: its result
        # is identical (deterministic execution) and the accounting
        # then calls the duplicate what it was -- waste.
        winner = primary if primary in done else hedge
        loser = hedge if winner is primary else primary
        with self._lock:
            if winner is hedge:
                self.hedge_wins += 1
            else:
                self.hedge_waste += 1
        self._cancel_loser(loser)
        return winner.result()

    def _cancel_loser(self, future: Future) -> None:
        """Reclaim a hedge loser's slot, best-effort.

        The base behaviour is ``Future.cancel()`` -- which only helps
        while the loser is still queued.  Tiers that can reach into a
        *running* duplicate (the thread tier's cancellation tokens)
        override this.
        """
        future.cancel()

    def start(self) -> "WorkerPool":
        """Bring the tier up; returns ``self`` for ``with``-chaining."""
        return self

    def shutdown(self) -> None:  # pragma: no cover - trivial default
        """Tear the tier down; idempotent."""
        pass

    def run_request(
        self, payload: Mapping[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Execute one request payload and return its result dict."""
        raise NotImplementedError

    def health(self) -> Dict[str, Any]:
        """A JSON-able liveness/counters snapshot of the tier."""
        return {"tier": self.kind, "alive": True}

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


class ProcessWorkerPool(WorkerPool):
    """Plan execution on a ``ProcessPoolExecutor`` over a source spec.

    ``start_method`` defaults to ``"spawn"``: slowest to start but
    immune to fork-time lock/thread hazards, and it proves the spec
    path carries *everything* a worker needs (fork can silently lean on
    inherited state).  The differential tests run both.

    A broken pool (a worker killed mid-request) fails the affected
    request with :class:`~repro.errors.WorkerCrashed` and the pool is
    recreated immediately, so the next request is served by fresh
    workers -- liveness is reported via :meth:`health`.
    """

    kind = "process"

    def __init__(
        self,
        source_spec: Mapping[str, Any],
        workers: int = 8,
        start_method: str = "spawn",
        watchdog_seconds: Optional[float] = None,
        hedge: bool = False,
        hedge_delay: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.source_spec = dict(source_spec)
        self.workers = workers
        self.start_method = start_method
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._started = False
        self.tasks = 0
        self.crashes = 0
        self.restarts = 0
        self._init_resilience(watchdog_seconds, hedge, hedge_delay)

    @classmethod
    def for_source(
        cls, source, workers: int = 8, start_method: str = "spawn", **kwargs
    ) -> "ProcessWorkerPool":
        """Build a pool from a live source (via :func:`source_to_spec`)."""
        return cls(
            source_to_spec(source),
            workers=workers,
            start_method=start_method,
            **kwargs,
        )

    def start(self) -> "ProcessWorkerPool":
        """Spin up the process executor (workers rehydrate the spec)."""
        with self._lock:
            self._started = True
            self._ensure_executor()
        return self

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """Create (or recreate) the executor; caller holds the lock."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self.start_method),
                initializer=_init_worker,
                initargs=(self.source_spec,),
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the executor and mark the tier not-started."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._started = False
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def run_request(
        self, payload: Mapping[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Ship one payload to a worker process and await its result.

        A broken pool (killed worker) raises typed :class:`WorkerCrashed`
        and recreates the executor so the next request can succeed.
        With a watchdog configured, a request that exceeds its stall
        bound while its worker is alive-but-stuck raises typed
        :class:`~repro.errors.WorkerStalled` and the pool is killed and
        recreated -- the slot is reclaimed instead of blocked forever
        (collateral in-flight requests on the killed pool surface as
        :class:`WorkerCrashed`, typed, never hung).  With ``hedge``
        enabled the request is duplicated to a second worker after the
        adaptive hedge delay and the first result wins.
        """
        with self._lock:
            if not self._started:
                raise WorkerCrashed(
                    "process worker pool is not running",
                    restarts=self.restarts,
                )
            executor = self._ensure_executor()
            self.tasks += 1
            self._pending += 1
        effective = timeout
        if self.watchdog_seconds is not None:
            effective = (
                self.watchdog_seconds
                if timeout is None
                else min(timeout, self.watchdog_seconds)
            )
        started = time.monotonic()
        future: Optional[Future] = None
        try:
            future = executor.submit(_run_payload_task, dict(payload))
            submit = lambda: executor.submit(_run_payload_task, dict(payload))
            result = self._wait_hedged(future, submit, effective)
            self.latency.observe(time.monotonic() - started)
            return result
        except FutureTimeoutError:
            raise self._timeout_error(
                executor, future, timeout, effective
            ) from None
        except BrokenExecutor as broken:
            restarts = self._recreate(executor)
            raise WorkerCrashed(
                f"worker process died executing this request: {broken}",
                restarts=restarts,
            ) from broken
        finally:
            with self._lock:
                self._pending -= 1

    def _timeout_error(
        self,
        executor: ProcessPoolExecutor,
        future: Optional[Future],
        timeout: Optional[float],
        effective: Optional[float],
    ) -> ReproError:
        """Map one request timeout to its typed error (watchdog-aware)."""
        watchdog_fired = self.watchdog_seconds is not None and (
            timeout is None or self.watchdog_seconds < timeout
        )
        cancelled = future.cancel() if future is not None else True
        if not watchdog_fired:
            # The request's own deadline expired first.  Without a
            # watchdog the stuck future is merely abandoned (its slot
            # stays blocked until the task finishes -- the pre-watchdog
            # behaviour); with one, a running worker is killed so the
            # slot comes back.
            if not cancelled and self.watchdog_seconds is not None:
                self._watchdog_recycle(executor)
            return DeadlineExceeded(
                f"worker did not answer within {timeout:.3f}s"
            )
        with self._lock:
            self.stalls += 1
            stalls = self.stalls
        if cancelled:
            # Never started: the whole tier is busy (likely stuck
            # behind other stalled requests).  The slot was reclaimed
            # by the cancel, so no kill is needed.
            return WorkerStalled(
                f"request waited {effective:.3f}s unstarted in the worker "
                f"tier (watchdog bound {self.watchdog_seconds}s): all "
                f"workers busy",
                stalls=stalls,
                killed=False,
            )
        self._watchdog_recycle(executor)
        return WorkerStalled(
            f"worker made no progress within the {self.watchdog_seconds}s "
            "watchdog bound; pool killed and recreated",
            stalls=stalls,
            killed=True,
        )

    def _watchdog_recycle(self, stuck: ProcessPoolExecutor) -> None:
        """Kill a stuck executor's workers and install a fresh pool.

        ``Future.cancel`` cannot stop a *running* task, so reclaiming
        the slot means killing the worker processes.  Requests in
        flight on the killed pool fail with typed
        :class:`WorkerCrashed` via the normal broken-pool path --
        collateral, but never a hang and never a wrong answer.
        """
        with self._lock:
            self.watchdog_kills += 1
            if self._executor is stuck:
                self._executor = None
                if self._started:
                    self.restarts += 1
                    self._ensure_executor()
        processes = getattr(stuck, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover -- already dead
                pass
        stuck.shutdown(wait=False, cancel_futures=True)

    def _recreate(self, broken: ProcessPoolExecutor) -> int:
        """Replace a broken executor with a fresh one; returns restarts."""
        with self._lock:
            self.crashes += 1
            if self._executor is broken:
                self._executor = None
                if self._started:
                    self.restarts += 1
                    self._ensure_executor()
            restarts = self.restarts
        broken.shutdown(wait=False, cancel_futures=True)
        return restarts

    def alive(self) -> bool:
        """Whether the tier can currently take requests."""
        with self._lock:
            return self._started and self._executor is not None

    def health(self) -> Dict[str, Any]:
        """A JSON-able liveness/counters snapshot of the tier."""
        with self._lock:
            snapshot = {
                "tier": self.kind,
                "alive": self._started and self._executor is not None,
                "workers": self.workers,
                "start_method": self.start_method,
                "tasks": self.tasks,
                "crashes": self.crashes,
                "restarts": self.restarts,
            }
            snapshot.update(self._resilience_health())
            return snapshot

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "stopped"
        return (
            f"ProcessWorkerPool({self.workers} x {self.start_method}, "
            f"{state}, {self.tasks} tasks, {self.crashes} crashes)"
        )


class ThreadWorkerPool(WorkerPool):
    """The same payload protocol, executed in-process over a shared source.

    The fallback tier: no serialization, no processes, no GIL escape.
    Useful on small data (where shipping rows costs more than computing
    them) and in environments where spawning processes is not allowed.
    Answers are byte-identical to the process tier by construction --
    both run :func:`execute_payload`.
    """

    kind = "thread"

    def __init__(
        self,
        source,
        workers: int = 8,
        watchdog_seconds: Optional[float] = None,
        hedge: bool = False,
        hedge_delay: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.source = source
        self.workers = workers
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self.tasks = 0
        # future -> its cooperative cancellation token.  Weak keys: an
        # entry lives exactly as long as something still holds the
        # future (the executor while running, the caller while waiting).
        self._cancel_tokens: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._init_resilience(watchdog_seconds, hedge, hedge_delay)

    def start(self) -> "ThreadWorkerPool":
        """Spin up the thread executor over the shared live source."""
        with self._lock:
            self._started = True
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="exec-tier",
                )
        return self

    def shutdown(self) -> None:
        """Stop the executor and mark the tier not-started."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._started = False
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def run_request(
        self, payload: Mapping[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Execute one payload on a pool thread against the live source.

        The watchdog surfaces a stuck request as typed
        :class:`~repro.errors.WorkerStalled` -- but unlike the process
        tier it cannot reclaim the slot: Python threads cannot be
        killed, so the stalled thread leaks until its task finishes
        (counted in ``stalls``; documented, not hidden).  Hedging works
        as on the process tier.
        """
        with self._lock:
            if not self._started or self._executor is None:
                raise WorkerCrashed("thread worker pool is not running")
            executor = self._executor
            self.tasks += 1
            self._pending += 1
        effective = timeout
        if self.watchdog_seconds is not None:
            effective = (
                self.watchdog_seconds
                if timeout is None
                else min(timeout, self.watchdog_seconds)
            )
        started = time.monotonic()
        future: Optional[Future] = None

        def submit() -> Future:
            """Submit one copy of the request with its own cancel token.

            ``_cancel_loser`` sets the token when the copy loses a
            hedge race while already running, so the duplicate stops at
            its next between-commands check instead of finishing.
            """
            token = threading.Event()
            submitted = executor.submit(
                execute_payload, self.source, payload, cancel=token
            )
            with self._lock:
                self._cancel_tokens[submitted] = token
            return submitted

        try:
            future = submit()
            result = self._wait_hedged(future, submit, effective)
            self.latency.observe(time.monotonic() - started)
            return result
        except FutureTimeoutError:
            watchdog_fired = self.watchdog_seconds is not None and (
                timeout is None or self.watchdog_seconds < timeout
            )
            cancelled = future.cancel() if future is not None else True
            if future is not None and not cancelled:
                # Already running: ask it to stop between commands so
                # the leaked thread frees its slot early (best-effort;
                # not counted as a hedge cancellation).
                with self._lock:
                    token = self._cancel_tokens.get(future)
                if token is not None:
                    token.set()
            if not watchdog_fired:
                raise DeadlineExceeded(
                    f"worker did not answer within {timeout:.3f}s"
                ) from None
            with self._lock:
                self.stalls += 1
                stalls = self.stalls
            detail = (
                "all workers busy"
                if cancelled
                else "worker thread leaked until its task finishes"
            )
            raise WorkerStalled(
                f"request made no progress within the "
                f"{self.watchdog_seconds}s watchdog bound ({detail})",
                stalls=stalls,
                killed=False,
            ) from None
        finally:
            with self._lock:
                self._pending -= 1

    def _cancel_loser(self, future: Future) -> None:
        """Reclaim a hedge loser's slot: dequeue it, or flag it down.

        A loser still queued is plainly cancelled.  A loser already
        *running* cannot be killed (Python threads), but its
        cancellation token is set, so it raises
        :class:`~repro.errors.PlanCancelled` at its next
        between-commands check and frees its slot early -- counted in
        ``hedge_cancelled`` (the result is never read: the winner
        already answered).
        """
        if future.cancel():
            return
        with self._lock:
            token = self._cancel_tokens.get(future)
            if token is not None and not token.is_set():
                token.set()
                self.hedge_cancelled += 1

    def alive(self) -> bool:
        """Whether the tier can currently take requests."""
        with self._lock:
            return self._started and self._executor is not None

    def health(self) -> Dict[str, Any]:
        """A JSON-able liveness/counters snapshot of the tier."""
        with self._lock:
            snapshot = {
                "tier": self.kind,
                "alive": self._started and self._executor is not None,
                "workers": self.workers,
                "tasks": self.tasks,
                "crashes": 0,
                "restarts": 0,
            }
            snapshot.update(self._resilience_health())
            return snapshot

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "stopped"
        return f"ThreadWorkerPool({self.workers} threads, {state})"


def merge_answer_tables(results: List[Mapping[str, Any]]):
    """Union several workers' shipped answers into one table.

    Set semantics are restored at this merge point: each worker ships
    its rows sorted, the union dedups, and the caller re-sorts for
    rendering -- deterministic regardless of completion order.  All
    parts must agree on attributes (they ran the same plan).
    """
    if not results:
        raise ValueError("nothing to merge")
    tables = [table_from_ir(r["table"]) for r in results]
    first = tables[0]
    for other in tables[1:]:
        if other.attributes != first.attributes:
            raise ValueError(
                f"cannot merge answers with attributes {other.attributes} "
                f"vs {first.attributes}"
            )
    rows = frozenset().union(*(t.rows for t in tables))
    return type(first)(first.attributes, rows)
