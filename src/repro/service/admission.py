"""Admission control: a bounded, priority-aware queue that sheds load.

The overload behaviour a mediator needs is *fail fast and say so*: once
the queue is full, accepting more work only grows latency for everyone,
so excess requests are rejected immediately with a typed
:class:`~repro.errors.ServiceOverloaded` carrying the observed queue
depth and a retry-after hint.  Admission is priority-aware -- when the
queue is full, a new request may *preempt* a queue slot from a strictly
lower-priority queued request (the newest one, which has waited least):
the evicted request is shed with the same typed error (``shed=True``),
so every submitted request is always accounted for -- served, rejected
at the door, or shed with an explicit error.  Nothing is silently
dropped.

Dequeue order is strict priority, FIFO within a class.  All state lives
behind one lock + condition; :meth:`take` is the blocking worker side.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ServiceOverloaded, ServiceStopped
from repro.service.request import PRIORITY_CLASSES, PRIORITY_NAMES, Ticket


class AdmissionQueue:
    """Bounded priority queue with load shedding and preemption."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queues: Dict[int, Deque[Ticket]] = {
            priority: deque() for priority in PRIORITY_CLASSES
        }
        self._closed = False
        self.admitted = 0
        self.rejected = 0
        self.preempted = 0

    # -------------------------------------------------------- inspection
    def depth(self) -> int:
        """How many requests are queued right now."""
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def closed(self) -> bool:
        """Whether the queue has stopped accepting work."""
        with self._lock:
            return self._closed

    # --------------------------------------------------------- admission
    def offer(
        self, ticket: Ticket, retry_after: Optional[float] = None
    ) -> Optional[Ticket]:
        """Admit a ticket, possibly preempting a lower-priority one.

        Returns the *evicted* ticket when admission preempted a queued
        strictly-lower-priority request (the caller must resolve it as
        shed), or ``None`` when the ticket was admitted without
        eviction.  Raises :class:`ServiceOverloaded` when the queue is
        full and holds no lower-priority victim, and
        :class:`ServiceStopped` when the queue is closed.
        """
        priority = ticket.request.priority
        with self._lock:
            if self._closed:
                raise ServiceStopped(
                    "service is draining: new requests are not accepted"
                )
            depth = self._depth_locked()
            evicted: Optional[Ticket] = None
            if depth >= self.capacity:
                # Preempt the newest queued request of the lowest
                # strictly-worse priority class, if any.
                for victim_class in reversed(PRIORITY_CLASSES):
                    if victim_class <= priority:
                        break
                    if self._queues[victim_class]:
                        evicted = self._queues[victim_class].pop()
                        self.preempted += 1
                        break
                if evicted is None:
                    self.rejected += 1
                    raise ServiceOverloaded(
                        f"admission queue full ({depth}/{self.capacity}) "
                        f"and no lower-priority request to preempt "
                        f"({PRIORITY_NAMES[priority]} arrival)",
                        queue_depth=depth,
                        retry_after=retry_after,
                    )
            self._queues[priority].append(ticket)
            self.admitted += 1
            self._not_empty.notify()
            return evicted

    # ------------------------------------------------------------ workers
    def take(self, timeout: Optional[float] = None) -> Optional[Ticket]:
        """Block for the next request: strict priority, FIFO within.

        Returns ``None`` when the queue is closed and empty (workers
        exit) or when ``timeout`` elapses without work.
        """
        with self._not_empty:
            while True:
                for priority in PRIORITY_CLASSES:
                    if self._queues[priority]:
                        return self._queues[priority].popleft()
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop accepting new work and wake every blocked worker."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def reopen(self) -> None:
        """Accept work again (service restart)."""
        with self._lock:
            self._closed = False

    def evict_all(self) -> List[Ticket]:
        """Remove and return every queued ticket (non-graceful stop)."""
        with self._lock:
            evicted: List[Ticket] = []
            for priority in PRIORITY_CLASSES:
                evicted.extend(self._queues[priority])
                self._queues[priority].clear()
            return evicted

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue({self.depth()}/{self.capacity} queued, "
            f"{self.admitted} admitted, {self.rejected} rejected, "
            f"{self.preempted} preempted)"
        )
