"""The concurrent query service (admission, shedding, governance).

Public surface of :mod:`repro.service`:

* :class:`~repro.service.service.QueryService` -- the bounded worker
  pool serving plan runs over one shared, lock-protected runtime.
* :class:`~repro.service.request.QueryRequest` /
  :class:`~repro.service.request.QueryResponse` /
  :class:`~repro.service.request.Ticket` -- one serving's input,
  explicitly marked outcome, and thread-safe future.
* :class:`~repro.service.admission.AdmissionQueue` -- bounded
  priority-aware admission with load shedding and preemption.
* The priority classes ``PRIORITY_HIGH`` / ``PRIORITY_NORMAL`` /
  ``PRIORITY_BEST_EFFORT``.
"""

from repro.service.admission import AdmissionQueue
from repro.service.request import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CLASSES,
    PRIORITY_HIGH,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    QueryRequest,
    QueryResponse,
    Ticket,
)
from repro.service.service import QueryService, ServiceHealth

__all__ = [
    "AdmissionQueue",
    "PRIORITY_BEST_EFFORT",
    "PRIORITY_CLASSES",
    "PRIORITY_HIGH",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServiceHealth",
    "Ticket",
]
