"""The concurrent query service (admission, shedding, governance).

Public surface of :mod:`repro.service`:

* :class:`~repro.service.service.QueryService` -- the bounded worker
  pool serving plan runs over one shared, lock-protected runtime.
* :class:`~repro.service.request.QueryRequest` /
  :class:`~repro.service.request.QueryResponse` /
  :class:`~repro.service.request.Ticket` -- one serving's input,
  explicitly marked outcome, and thread-safe future.
* :class:`~repro.service.admission.AdmissionQueue` -- bounded
  priority-aware admission with load shedding and preemption.
* The priority classes ``PRIORITY_HIGH`` / ``PRIORITY_NORMAL`` /
  ``PRIORITY_BEST_EFFORT``.
* :class:`~repro.service.workers.WorkerPool` and its
  :class:`~repro.service.workers.ProcessWorkerPool` /
  :class:`~repro.service.workers.ThreadWorkerPool` implementations --
  the execution tier that ships plan IR (not pickles) to worker
  processes to scale CPU-bound serving past the GIL.
* :class:`~repro.service.method_health.MethodHealthRegistry` -- the
  dead-method ledger behind health-aware degraded planning, and
  :class:`~repro.service.workers.LatencyTracker` -- the EWMA/P95
  estimator behind adaptive hedged dispatch.
"""

from repro.service.admission import AdmissionQueue
from repro.service.method_health import MethodHealthRegistry
from repro.service.request import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CLASSES,
    PRIORITY_HIGH,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    QueryRequest,
    QueryResponse,
    Ticket,
)
from repro.service.service import QueryService, ServiceHealth
from repro.service.workers import (
    LatencyTracker,
    ProcessWorkerPool,
    SourceSpecError,
    ThreadWorkerPool,
    WorkerPool,
    source_to_spec,
    spec_to_source,
)

__all__ = [
    "AdmissionQueue",
    "LatencyTracker",
    "MethodHealthRegistry",
    "ProcessWorkerPool",
    "PRIORITY_BEST_EFFORT",
    "PRIORITY_CLASSES",
    "PRIORITY_HIGH",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServiceHealth",
    "SourceSpecError",
    "ThreadWorkerPool",
    "Ticket",
    "WorkerPool",
    "source_to_spec",
    "spec_to_source",
]
