"""Service-level method health: turn N request failures into one re-plan.

Before this module, a permanent access-method outage was paid for *per
request*: every admitted plan touching the dead method failed (typed,
but failed), because the service kept planning over the full schema.
The paper's own machinery has the better answer -- proofs enumerate
*many* plans, and :meth:`Schema.without_methods
<repro.schema.core.Schema.without_methods>` expresses "the schema minus
the dead methods" -- so the service should re-plan *once* and keep
serving.

:class:`MethodHealthRegistry` is the small shared ledger that makes
that possible: access-method outages observed anywhere in the serving
path (an in-process :class:`~repro.errors.MethodOutage`, a worker-tier
failure dict carrying its method context, a force-opened breaker) are
marked dead here, and :meth:`QueryService.plan_for
<repro.service.service.QueryService.plan_for>` plans over the schema
minus the current dead set.  Because the plan cache keys on the schema
*fingerprint*, the degraded schema lands on a different cache key
automatically -- the dead-method set is part of the key by
construction, so a healthy-schema plan can never be served while the
method is dead, and vice versa.

Recovery closes the loop: when a breaker half-opens and its probe
succeeds (or an operator declares the outage over), the method is
marked recovered, the dead set shrinks, and planning falls back to the
original schema -- whose cached plan is still there, under its own key.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple


class MethodHealthRegistry:
    """A thread-safe ledger of access methods currently believed dead.

    ``mark_dead`` / ``mark_recovered`` return whether the call changed
    anything, so callers can count *transitions* (one outage = one
    marking = one re-plan) instead of observations (one outage = N
    failing requests).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._dead: Dict[str, str] = {}
        self.outages_observed = 0
        self.recoveries = 0

    def mark_dead(self, method: str, reason: str = "outage") -> bool:
        """Record one method as dead; True when it was alive before."""
        if not method:
            return False
        with self._lock:
            self.outages_observed += 1
            if method in self._dead:
                return False
            self._dead[method] = reason
            return True

    def mark_recovered(self, method: str) -> bool:
        """Record one method as healthy again; True when it was dead."""
        with self._lock:
            if self._dead.pop(method, None) is None:
                return False
            self.recoveries += 1
            return True

    def is_dead(self, method: str) -> bool:
        """Whether one method is currently marked dead."""
        with self._lock:
            return method in self._dead

    def dead_methods(self) -> Tuple[str, ...]:
        """The current dead set, sorted (stable for cache keys/tests)."""
        with self._lock:
            return tuple(sorted(self._dead))

    def reason(self, method: str) -> Optional[str]:
        """Why one method is marked dead (None when it is not)."""
        with self._lock:
            return self._dead.get(method)

    def counters(self) -> Dict[str, object]:
        """A JSON-able snapshot (surfaced by ``QueryService.health()``)."""
        with self._lock:
            return {
                "dead_methods": sorted(self._dead),
                "outages_observed": self.outages_observed,
                "recoveries": self.recoveries,
            }

    def __repr__(self) -> str:
        dead = self.dead_methods()
        return (
            f"MethodHealthRegistry({len(dead)} dead"
            + (f": {list(dead)}" if dead else "")
            + ")"
        )
