"""Per-request resource governance for plan execution.

A service cannot let one pathological request starve the pool: a plan
whose intermediate tables explode, whose output is unboundedly large,
or whose access fan-out is unbounded must be cut off with a *typed*
outcome, not discovered via an out-of-memory kill.  A
:class:`ResourceBudget` states the ceilings and is threaded through
:meth:`Plan.execute <repro.plans.plan.Plan.execute>` (row budgets) and
wrapped around the source as a
:class:`~repro.data.decorators.BudgetedSource` (access/cost budgets,
the PR 4 :class:`~repro.errors.AccessBudgetExceeded` machinery) by the
:class:`~repro.service.QueryService`.

Degradation policy: a *resident*-row overflow (intermediate state) is
always an error -- there is no sound partial answer to salvage from a
half-built join.  A *result*-row overflow defaults to degradation: the
output is truncated to a deterministic prefix (sorted rows, so two runs
truncate identically) and the budget records how many rows were
dropped, which the caller surfaces as an explicitly marked partial
answer -- the same "marked, never silent" contract as PR 4's
:class:`~repro.exec.failover.FailoverOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import RowBudgetExceeded

#: result-row overflow policies
TRUNCATE = "truncate"
ERROR = "error"


@dataclass
class ResourceBudget:
    """Ceilings one request may not exceed, plus what tripping recorded.

    ``max_result_rows`` / ``max_resident_rows``
        row budgets enforced inside ``Plan.execute``: the output table
        size and the peak total of resident temporary rows.
    ``max_accesses`` / ``max_cost``
        access budgets, enforced by wrapping the request's source in a
        :class:`~repro.data.decorators.BudgetedSource` (raises
        :class:`~repro.errors.AccessBudgetExceeded`).
    ``on_result_overflow``
        ``"truncate"`` (default: degrade to a marked partial answer) or
        ``"error"`` (raise :class:`~repro.errors.RowBudgetExceeded`).
    ``truncated_rows``
        mutable outcome: how many result rows truncation dropped.  A
        budget instance is therefore per-request state; use
        :meth:`fresh` to stamp new requests from a shared template.
    """

    max_result_rows: Optional[int] = None
    max_resident_rows: Optional[int] = None
    max_accesses: Optional[int] = None
    max_cost: Optional[float] = None
    on_result_overflow: str = TRUNCATE
    truncated_rows: int = 0

    def __post_init__(self) -> None:
        for name in ("max_result_rows", "max_resident_rows", "max_accesses"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError("max_cost must be non-negative")
        if self.on_result_overflow not in (TRUNCATE, ERROR):
            raise ValueError(
                "on_result_overflow must be 'truncate' or 'error'"
            )

    def fresh(self) -> "ResourceBudget":
        """A clean per-request copy of this budget template."""
        return replace(self, truncated_rows=0)

    @property
    def truncated(self) -> bool:
        """Whether this request's answer was truncated (i.e. partial)."""
        return self.truncated_rows > 0

    # ------------------------------------------------------- enforcement
    def check_resident(self, rows: int) -> None:
        """Raise when the resident-row total exceeds the ceiling."""
        if (
            self.max_resident_rows is not None
            and rows > self.max_resident_rows
        ):
            raise RowBudgetExceeded(
                f"resident-row budget exceeded: {rows} rows live, "
                f"budget {self.max_resident_rows}",
                kind="resident",
                rows=rows,
                budget=self.max_resident_rows,
            )

    def admit_result(self, table):
        """Apply the result-row budget to the final output table.

        Returns the (possibly deterministically truncated) table;
        truncation is recorded in :attr:`truncated_rows`.  With
        ``on_result_overflow="error"`` an overflow raises instead.
        """
        if (
            self.max_result_rows is None
            or len(table.rows) <= self.max_result_rows
        ):
            return table
        if self.on_result_overflow == ERROR:
            raise RowBudgetExceeded(
                f"result-row budget exceeded: {len(table.rows)} rows, "
                f"budget {self.max_result_rows}",
                kind="result",
                rows=len(table.rows),
                budget=self.max_result_rows,
            )
        kept = frozenset(sorted(table.rows)[: self.max_result_rows])
        self.truncated_rows += len(table.rows) - len(kept)
        return type(table)(table.attributes, kept)

    def as_dict(self) -> Dict:
        """A JSON-able representation."""
        return {
            "max_result_rows": self.max_result_rows,
            "max_resident_rows": self.max_resident_rows,
            "max_accesses": self.max_accesses,
            "max_cost": self.max_cost,
            "on_result_overflow": self.on_result_overflow,
            "truncated_rows": self.truncated_rows,
        }
