"""Proof-driven plan failover: graceful degradation via re-planning.

The whole point of the paper is that a query usually has *many*
proof-derived plans over different access methods; cost picks one.  When
the picked plan's method dies mid-run -- a breaker opens, a
:class:`~repro.errors.MethodOutage` fires, retries give up -- the right
reaction is not "error", it is "plan again without that method": the
proof search already enumerates the alternatives, so the next-cheapest
viable plan over the *surviving* methods is one
:func:`~repro.planner.search.find_best_plan` call away
(:meth:`Schema.without_methods <repro.schema.core.Schema.without_methods>`
expresses "the schema minus the dead methods").

:class:`FailoverExecutor` drives that loop.  Its result is always an
explicit :class:`FailoverOutcome`:

* ``complete`` -- some plan ran to completion; its answers are certain
  answers of the query, identical to what the fault-free run returns
  (Proposition 2: every complete plan computes the certain answers).
* ``partial`` -- no full plan survives the dead methods.  The executor
  then falls back to the *accessible part* of what is still reachable
  (``AccPart`` over the surviving schema) and evaluates the query on
  it: a sound under-approximation of the certain answers, returned
  clearly marked rather than silently wrong.
* neither -- even the degraded path failed (e.g. the deadline expired);
  ``error`` says why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.data.accessible_part import accessible_part
from repro.errors import (
    AccessError,
    CircuitOpen,
    DeadlineExceeded,
    MethodOutage,
    NoViablePlan,
)
from repro.exec.resilience import ResilientDispatcher
from repro.exec.stats import ExecStats
from repro.logic.queries import ConjunctiveQuery
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.expressions import NamedTable
from repro.plans.plan import Plan
from repro.schema.core import Schema


@dataclass
class FailoverOutcome:
    """The explicitly marked result of a failover execution."""

    table: Optional[NamedTable]
    complete: bool
    partial: bool
    plans_tried: Tuple[str, ...] = ()
    dead_methods: Tuple[str, ...] = ()
    failovers: int = 0
    static_cost: Optional[float] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        """Whether any answer (complete or partial) was produced."""
        return self.table is not None

    def describe(self) -> str:
        """A one-line human-readable digest."""
        if self.complete:
            status = "complete"
        elif self.partial:
            status = "PARTIAL (accessible-part fallback)"
        else:
            status = f"FAILED ({self.error})"
        dead = f", dead={list(self.dead_methods)}" if self.dead_methods else ""
        return (
            f"{status}: {len(self.table.rows) if self.table else 0} rows "
            f"after {self.failovers} failover(s), "
            f"{len(self.plans_tried)} plan(s) tried{dead}"
        )


class FailoverExecutor:
    """Execute a query with automatic re-planning around dead methods.

    The executor owns the planning loop, not the source: pass any
    source (typically a
    :class:`~repro.faults.source.FaultInjectingSource` in tests and a
    real remote gateway in deployments) plus the resilience stack the
    accesses should run under.  Methods declared dead by the dispatcher
    (open breaker, hard outage, exhausted retries) accumulate in
    ``dead_methods`` and stay excluded for subsequent queries served by
    the same executor -- the serving-loop behaviour a mediator needs.
    """

    def __init__(
        self,
        schema: Schema,
        source,
        *,
        resilience: Optional[ResilientDispatcher] = None,
        options: Optional[SearchOptions] = None,
        cache=None,
        stats: Optional[ExecStats] = None,
        allow_partial: bool = True,
    ) -> None:
        self.schema = schema
        self.source = source
        self.resilience = resilience or ResilientDispatcher()
        self.options = options
        self.cache = cache
        self.stats = stats
        self.allow_partial = allow_partial
        self.dead_methods: List[str] = []

    # ------------------------------------------------------------ serving
    def run(self, query: ConjunctiveQuery) -> FailoverOutcome:
        """Serve one query, failing over across plans as methods die."""
        plans_tried: List[str] = []
        failovers = 0
        last_error: Optional[Exception] = None
        while True:
            try:
                plan, cost = self._plan(query)
            except NoViablePlan as error:
                last_error = error
                break
            plans_tried.append(plan.name)
            try:
                table = plan.execute(
                    self.source,
                    cache=self.cache,
                    stats=self.stats,
                    resilience=self.resilience,
                )
            except DeadlineExceeded as error:
                return self._finish(
                    None, plans_tried, failovers, error=error
                )
            except AccessError as error:
                last_error = error
                dead = self._diagnose(error)
                if dead is None:
                    return self._finish(
                        None, plans_tried, failovers, error=error
                    )
                failovers += 1
                if self.stats is not None:
                    self.stats.failovers += 1
                continue
            return self._finish(
                table,
                plans_tried,
                failovers,
                complete=True,
                static_cost=cost,
            )
        # No full plan survives: degrade to the accessible part.
        if self.allow_partial:
            try:
                return self._finish(
                    self._partial_answer(query),
                    plans_tried,
                    failovers,
                    partial=True,
                    error=last_error,
                )
            except Exception as error:  # pragma: no cover -- defensive
                last_error = error
        return self._finish(None, plans_tried, failovers, error=last_error)

    # ------------------------------------------------------------ helpers
    def _plan(self, query: ConjunctiveQuery) -> Tuple[Plan, float]:
        """The cheapest plan over the schema minus the dead methods."""
        schema = (
            self.schema.without_methods(self.dead_methods)
            if self.dead_methods
            else self.schema
        )
        if not schema.methods:
            raise NoViablePlan(
                "every access method is dead",
                dead_methods=tuple(self.dead_methods),
            )
        result = find_best_plan(schema, query, self.options)
        if not result.found:
            raise NoViablePlan(
                f"no plan for {query.name} avoids the dead methods",
                dead_methods=tuple(self.dead_methods),
            )
        plan = result.best_plan
        if self.dead_methods:
            plan = Plan(
                plan.commands,
                plan.output_table,
                name=f"{plan.name}~failover{len(self.dead_methods)}",
            )
        return plan, result.best_cost

    def _diagnose(self, error: AccessError) -> Optional[str]:
        """Mark the failing method dead; ``None`` when undiagnosable."""
        method = error.method
        if method is None or method in self.dead_methods:
            return None
        self.dead_methods.append(method)
        # Force the breaker open so later plans sharing the dispatcher
        # fail fast instead of re-probing a method we know is dead.
        if self.resilience.breakers is not None and isinstance(
            error, (MethodOutage, CircuitOpen)
        ):
            self.resilience.breakers.for_method(method).record_failure(
                permanent=True
            )
        return method

    def _partial_answer(self, query: ConjunctiveQuery) -> NamedTable:
        """The query over AccPart of the surviving methods, as a table.

        This reads the wrapped instance directly (the simulation's
        ground truth restricted to what surviving methods can reveal),
        so it stays correct even while the faulty access path is down.
        """
        schema = self.schema.without_methods(self.dead_methods)
        part = accessible_part(schema, self.source.instance).as_instance()
        answers = part.evaluate(query)
        attributes = tuple(variable.name for variable in query.head)
        return NamedTable(attributes, frozenset(answers))

    def _finish(
        self,
        table: Optional[NamedTable],
        plans_tried: List[str],
        failovers: int,
        complete: bool = False,
        partial: bool = False,
        static_cost: Optional[float] = None,
        error: Optional[Exception] = None,
    ) -> FailoverOutcome:
        return FailoverOutcome(
            table=table,
            complete=complete,
            partial=partial,
            plans_tried=tuple(plans_tried),
            dead_methods=tuple(self.dead_methods),
            failovers=failovers,
            static_cost=static_cost,
            error=error,
        )
