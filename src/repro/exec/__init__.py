"""Execution runtime: indexed, deduplicated, cached plan execution.

The planner's job ends with a complete, low-static-cost plan; this
package makes *running* that plan cheap.  Four cooperating pieces:

* per-method hash indexes inside
  :class:`~repro.data.source.InMemorySource` (each access is a bucket
  lookup instead of a relation scan),
* :class:`AccessCache` -- a bounded LRU memoizing ``(method, inputs)``
  results across commands, plans and batch runs, with an explicit
  metering policy (``charge_hits``),
* the tuned evaluator in :mod:`repro.plans` (deduplicated access
  dispatch, smaller-side hash joins, selection/projection fusion,
  temp-table freeing) driven by :meth:`repro.plans.plan.Plan.execute`,
* :class:`ExecStats` / :class:`BatchExecutor` -- the observability and
  serving loop around all of it.

See ``docs/theory.md`` ("Execution runtime") for why access
memoization is sound and how the cache interacts with the paper's
access-counting cost model.
"""

from repro.exec.batch import BatchExecutor, substitute_constants
from repro.exec.cache import AccessCache
from repro.exec.stats import CommandStats, ExecStats

__all__ = [
    "AccessCache",
    "BatchExecutor",
    "CommandStats",
    "ExecStats",
    "substitute_constants",
]
