"""Execution runtime: indexed, deduplicated, cached plan execution.

The planner's job ends with a complete, low-static-cost plan; this
package makes *running* that plan cheap.  Four cooperating pieces:

* per-method hash indexes inside
  :class:`~repro.data.source.InMemorySource` (each access is a bucket
  lookup instead of a relation scan),
* :class:`AccessCache` -- a bounded LRU memoizing ``(method, inputs)``
  results across commands, plans and batch runs, with an explicit
  metering policy (``charge_hits``),
* the tuned evaluator in :mod:`repro.plans` (deduplicated access
  dispatch, smaller-side hash joins, selection/projection fusion,
  temp-table freeing) driven by :meth:`repro.plans.plan.Plan.execute`,
* :class:`ExecStats` / :class:`BatchExecutor` -- the observability and
  serving loop around all of it,
* :class:`ResourceBudget` (:mod:`repro.exec.budget`) -- per-request
  row/access/cost ceilings threaded through ``Plan.execute``; result
  overflow degrades to an explicitly marked partial answer,
* the fault-tolerance stack (:mod:`repro.exec.resilience`):
  :class:`RetryPolicy` (exponential backoff, deterministic jitter),
  :class:`Deadline`, per-method :class:`CircuitBreaker`\\ s, all driven
  by a :class:`ResilientDispatcher` threaded through
  :meth:`Plan.execute <repro.plans.plan.Plan.execute>`,
* :class:`FailoverExecutor` (:mod:`repro.exec.failover`) -- when a
  method dies mid-plan, re-plan the query over the surviving methods
  and fall back to the next-cheapest viable plan, or return an
  explicitly marked partial answer from the accessible part,
* the columnar backend (:mod:`repro.exec.columnar`) -- plans compiled
  via the serializable IR (:mod:`repro.plans.ir`) to vectorized numpy
  execution, selected with ``Plan.execute(..., executor="columnar")``
  (or ``"differential"`` to run both backends and assert identical
  answers).  Kept out of this namespace so the interpreter path never
  imports numpy.

See ``docs/theory.md`` ("Execution runtime", "Fault model and degraded
access") for why access memoization is sound and what degraded
execution guarantees.
"""

from repro.exec.batch import BatchExecutor, BatchItem, substitute_constants
from repro.exec.budget import ResourceBudget
from repro.exec.cache import AccessCache
from repro.exec.failover import FailoverExecutor, FailoverOutcome
from repro.exec.resilience import (
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.exec.stats import CommandStats, ExecStats

__all__ = [
    "AccessCache",
    "BatchExecutor",
    "BatchItem",
    "BreakerRegistry",
    "CircuitBreaker",
    "CommandStats",
    "Deadline",
    "ExecStats",
    "FailoverExecutor",
    "FailoverOutcome",
    "ResilientDispatcher",
    "ResourceBudget",
    "RetryPolicy",
    "substitute_constants",
]
