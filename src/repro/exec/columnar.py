"""The columnar executor: vectorized plan execution over numpy columns.

The tuple-at-a-time interpreter in :mod:`repro.plans.expressions` pays
Python-level cost per *row*; after PR 3's indexing and caching the
remaining execution time on row-heavy plans is exactly that per-row
overhead.  This backend pays Python cost per *operator* instead: a
:class:`ColumnarPlan` is compiled from the serializable plan IR
(:mod:`repro.plans.ir`) into a pipeline over **dictionary-encoded
column arrays** -- every ground term is interned to a small integer
code once per execution, relations become one ``int64`` array per
attribute, and the relational operators become array programs:

* selections are boolean mask vectors (``EqAttr``/``EqConst``/
  ``NeqAttr``/``NeqConst`` compile to ``==``/``!=`` over code arrays --
  sound because dictionary codes preserve exactly term equality, the
  only predicate the plan language ever tests);
* natural joins are vectorized hash joins: the *smaller* side is
  sorted by its composite key (the build), the larger side probes via
  binary search, and matching row-index pairs are expanded with
  ``repeat``/``cumsum`` arithmetic -- no Python-level row loop;
* selections and projections sitting directly above a join are fused
  into the probe: conditions mask the matched index pairs and only the
  surviving, needed columns are ever gathered;
* unions, differences and duplicate elimination reduce to grouping on
  a joint row-id encoding of the participating tables.

Set semantics are preserved operator by operator (tables are
deduplicated exactly where the interpreter's ``frozenset`` semantics
deduplicate), so every intermediate table has the same cardinality the
interpreter sees -- which is what makes the shared
:class:`~repro.exec.stats.ExecStats` accounting, the
:class:`~repro.exec.budget.ResourceBudget` resident/result checks and
the deterministic truncation prefix *identical* across backends.

Access commands stay tuple-at-a-time at the boundary -- the source API
is an external call per distinct input tuple -- but the input side is
batched: the input expression is evaluated columnar, the distinct
binding tuples are computed by one vectorized grouping, and only those
are decoded back to terms and dispatched through the existing
:class:`~repro.data.source.InMemorySource` indexes,
:class:`~repro.exec.cache.AccessCache` and resilience stack, with
unchanged dedup/cache/retry accounting.

``Plan.execute(..., executor="differential")`` runs this backend and
the interpreter back to back and asserts identical sorted answers; the
interpreter remains the oracle.  Soundness arguments live in
``docs/theory.md`` ("Columnar execution and the plan IR").
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # numpy is a baked-in dependency; fail with guidance, not a stack dump
    import numpy as np
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "the columnar executor requires numpy; "
        "use executor='interpreter' on installs without it"
    ) from exc

from repro.errors import ExecutionError
from repro.logic.terms import Constant, Term
from repro.plans.commands import AccessCommand, MiddlewareCommand
from repro.plans.expressions import EvaluationError, NamedTable
from repro.plans.ir import (
    PlanIRError,
    condition_from_ir,
    plan_to_ir,
    term_from_ir,
)

__all__ = [
    "ColumnarPlan",
    "compile_columnar",
    "execute_differential",
    "DifferentialMismatch",
]


class DifferentialMismatch(ExecutionError):
    """Raised when the columnar and interpreter answers disagree."""


# ----------------------------------------------------------------- encoding
class _Codec:
    """Per-execution term dictionary: ground term <-> int64 code.

    Codes preserve equality and nothing else, which is all the plan
    language's conditions ever test.  One codec spans one plan
    execution, so every table in the environment speaks the same
    dictionary.
    """

    __slots__ = ("_codes", "_terms")

    def __init__(self) -> None:
        self._codes: Dict[Term, int] = {}
        self._terms: List[Term] = []

    def code(self, term: Term) -> int:
        """The (interning) code of one term."""
        code = self._codes.get(term)
        if code is None:
            code = len(self._terms)
            self._codes[term] = code
            self._terms.append(term)
        return code

    def encode_rows(
        self, attributes: Tuple[str, ...], rows
    ) -> "_ColTable":
        """Encode an iterable of term tuples into a column table."""
        width = len(attributes)
        codes = self._codes
        terms = self._terms
        columns = [[] for _ in range(width)]
        count = 0
        for row in rows:
            count += 1
            for position in range(width):
                term = row[position]
                code = codes.get(term)
                if code is None:
                    code = len(terms)
                    codes[term] = code
                    terms.append(term)
                columns[position].append(code)
        return _ColTable(
            attributes,
            tuple(
                np.asarray(column, dtype=np.int64) for column in columns
            ),
            count,
        )

    def decode_table(self, table: "_ColTable") -> NamedTable:
        """Materialize a column table back into a :class:`NamedTable`."""
        if not table.attributes:
            rows = frozenset({()}) if table.nrows else frozenset()
            return NamedTable((), rows)
        lookup = np.array(self._terms, dtype=object)
        decoded = [lookup[column[: table.nrows]] for column in table.columns]
        return NamedTable(table.attributes, frozenset(zip(*decoded)))

    def decode(self, code: int) -> Term:
        """The term behind one code."""
        return self._terms[code]


class _ColTable:
    """An immutable relation as one int64 code array per attribute."""

    __slots__ = ("attributes", "columns", "nrows", "_colmap")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        columns: Tuple[np.ndarray, ...],
        nrows: int,
    ) -> None:
        if len(set(attributes)) != len(attributes):
            raise EvaluationError(f"duplicate attribute in {attributes}")
        self.attributes = attributes
        self.columns = columns
        self.nrows = nrows
        self._colmap = {a: i for i, a in enumerate(attributes)}

    def column(self, attribute: str) -> np.ndarray:
        """The code array of an attribute (raises on unknown names)."""
        try:
            return self.columns[self._colmap[attribute]]
        except KeyError:
            raise EvaluationError(
                f"no attribute {attribute!r} in {self.attributes}"
            ) from None

    def has(self, attribute: str) -> bool:
        """True if the table carries the attribute."""
        return attribute in self._colmap

    def take(self, indexes: np.ndarray) -> "_ColTable":
        """Row subset by index array (no dedup)."""
        return _ColTable(
            self.attributes,
            tuple(column[indexes] for column in self.columns),
            len(indexes),
        )

    def mask(self, keep: np.ndarray) -> "_ColTable":
        """Row subset by boolean mask (no dedup)."""
        return _ColTable(
            self.attributes,
            tuple(column[keep] for column in self.columns),
            int(np.count_nonzero(keep)),
        )

    def __repr__(self) -> str:
        return f"_ColTable({list(self.attributes)}, {self.nrows} rows)"


def _row_ids(columns: Sequence[np.ndarray], nrows: int) -> np.ndarray:
    """One int64 id per row such that equal rows get equal ids.

    Columns are folded pairwise; the running ids are recompressed to a
    dense range before each fold, so the product of the two factors
    stays far below 2**63 for any realistic table.
    """
    if not columns:
        return np.zeros(nrows, dtype=np.int64)
    ids = columns[0].astype(np.int64, copy=False)
    for column in columns[1:]:
        _, ids = np.unique(ids, return_inverse=True)
        multiplier = int(column.max()) + 1 if column.size else 1
        ids = ids * np.int64(multiplier) + column
    return ids


def _dedup(table: _ColTable) -> _ColTable:
    """Duplicate elimination (the frozenset semantics of NamedTable)."""
    if not table.attributes:
        return _ColTable((), (), min(table.nrows, 1))
    if table.nrows <= 1:
        return table
    ids = _row_ids(table.columns, table.nrows)
    _, first = np.unique(ids, return_index=True)
    if len(first) == table.nrows:
        return table
    return table.take(first)


# ------------------------------------------------------------- expressions
class _CExpr:
    """Base class of compiled IR expressions."""

    __slots__ = ()

    def eval(self, env: Dict[str, _ColTable], codec: _Codec) -> _ColTable:
        """Evaluate this node over ``env`` into a column table."""
        raise NotImplementedError

    def tables_read(self) -> frozenset:
        """Names of the temp tables this subtree scans."""
        raise NotImplementedError


class _CSingleton(_CExpr):
    __slots__ = ()

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        return _ColTable((), (), 1)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return frozenset()


class _CScan(_CExpr):
    __slots__ = ("table",)

    def __init__(self, table: str) -> None:
        self.table = table

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        try:
            return env[self.table]
        except KeyError:
            raise EvaluationError(f"unknown table {self.table!r}") from None

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return frozenset({self.table})


class _CLiteral(_CExpr):
    __slots__ = ("attrs", "rows")

    def __init__(self, attrs: Tuple[str, ...], rows: Tuple[Tuple[Term, ...], ...]):
        self.attrs = attrs
        self.rows = rows

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        return codec.encode_rows(self.attrs, self.rows)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return frozenset()


class _CProject(_CExpr):
    __slots__ = ("child", "attrs")

    def __init__(self, child: _CExpr, attrs: Tuple[str, ...]) -> None:
        self.child = child
        self.attrs = attrs

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        table = self.child.eval(env, codec)
        columns = tuple(table.column(a) for a in self.attrs)
        return _dedup(_ColTable(self.attrs, columns, table.nrows))

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.child.tables_read()


def _condition_mask(
    condition, table_column, nrows: int, codec: _Codec
) -> Optional[np.ndarray]:
    """Boolean keep-mask of one condition, given a column resolver.

    ``table_column(name)`` returns the code array of an attribute or
    raises :class:`EvaluationError`; the caller decides how unknown
    attributes interact with emptiness (matching the interpreter's
    lazy ``holds`` fallback, which only raises when a row is checked).
    """
    from repro.plans.expressions import EqAttr, EqConst, NeqAttr, NeqConst

    if isinstance(condition, EqAttr):
        return table_column(condition.left) == table_column(condition.right)
    if isinstance(condition, NeqAttr):
        return table_column(condition.left) != table_column(condition.right)
    if isinstance(condition, EqConst):
        return table_column(condition.attribute) == codec.code(condition.value)
    if isinstance(condition, NeqConst):
        return table_column(condition.attribute) != codec.code(condition.value)
    raise PlanIRError(  # unreachable off the IR path; kept for safety
        f"columnar backend cannot evaluate condition {condition!r}"
    )


class _CSelect(_CExpr):
    __slots__ = ("child", "conditions")

    def __init__(self, child: _CExpr, conditions: Tuple[object, ...]) -> None:
        self.child = child
        self.conditions = conditions

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        table = self.child.eval(env, codec)
        keep: Optional[np.ndarray] = None
        for condition in self.conditions:
            try:
                mask = _condition_mask(
                    condition, table.column, table.nrows, codec
                )
            except EvaluationError:
                # The interpreter's holds() fallback raises only when a
                # row is actually checked: empty input passes through.
                if table.nrows == 0:
                    return table
                raise
            keep = mask if keep is None else (keep & mask)
        if keep is None:
            return table
        return table.mask(keep)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.child.tables_read()


class _CRename(_CExpr):
    __slots__ = ("child", "mapping")

    def __init__(self, child: _CExpr, mapping: Tuple[Tuple[str, str], ...]):
        self.child = child
        self.mapping = dict(mapping)

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        table = self.child.eval(env, codec)
        attrs = tuple(self.mapping.get(a, a) for a in table.attributes)
        return _ColTable(attrs, table.columns, table.nrows)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.child.tables_read()


class _CUnion(_CExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: _CExpr, right: _CExpr) -> None:
        self.left = left
        self.right = right

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        left = self.left.eval(env, codec)
        right = self.right.eval(env, codec)
        right_cols = tuple(right.column(a) for a in left.attributes)
        if not left.attributes:
            return _ColTable((), (), min(left.nrows + right.nrows, 1))
        columns = tuple(
            np.concatenate((lc, rc))
            for lc, rc in zip(left.columns, right_cols)
        )
        return _dedup(
            _ColTable(left.attributes, columns, left.nrows + right.nrows)
        )

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.left.tables_read() | self.right.tables_read()


class _CDifference(_CExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: _CExpr, right: _CExpr) -> None:
        self.left = left
        self.right = right

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        left = self.left.eval(env, codec)
        right = self.right.eval(env, codec)
        right_cols = [right.column(a) for a in left.attributes]
        if not left.attributes:
            kept = left.nrows if right.nrows == 0 else 0
            return _ColTable((), (), min(kept, 1))
        joint = [
            np.concatenate((lc, rc))
            for lc, rc in zip(left.columns, right_cols)
        ]
        ids = _row_ids(joint, left.nrows + right.nrows)
        left_ids, right_ids = ids[: left.nrows], ids[left.nrows:]
        keep = np.isin(left_ids, right_ids, invert=True)
        return left.mask(keep)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.left.tables_read() | self.right.tables_read()


class _CJoin(_CExpr):
    """Natural join with fused selection/projection over the probe.

    The compiler folds ``Select``/``Project`` nodes sitting directly
    above a ``Join`` into ``conditions``/``project_to`` here, mirroring
    ``Join._evaluate_fused`` in the interpreter: conditions mask the
    matched row-index pairs and only surviving, needed columns are
    gathered -- the full join result is never materialized.
    """

    __slots__ = ("left", "right", "conditions", "project_to")

    def __init__(
        self,
        left: _CExpr,
        right: _CExpr,
        conditions: Tuple[object, ...] = (),
        project_to: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.conditions = conditions
        self.project_to = project_to

    def eval(self, env, codec):
        """Evaluate this node over ``env`` into a column table."""
        left = self.left.eval(env, codec)
        right = self.right.eval(env, codec)
        shared = [a for a in right.attributes if left.has(a)]
        extra = [a for a in right.attributes if not left.has(a)]
        out_attrs = left.attributes + tuple(extra)
        left_idx, right_idx = _match_pairs(left, right, shared)

        def pair_column(attribute: str) -> np.ndarray:
            """Resolve an equi-join attribute to (side, code column)."""
            if left.has(attribute):
                return left.column(attribute)[left_idx]
            if right.has(attribute):
                return right.column(attribute)[right_idx]
            raise EvaluationError(
                f"no attribute {attribute!r} in {out_attrs}"
            )

        keep: Optional[np.ndarray] = None
        for condition in self.conditions:
            try:
                mask = _condition_mask(
                    condition, pair_column, len(left_idx), codec
                )
            except EvaluationError:
                # Interpreter parity: the unfused fallback only raises
                # when a joined row is actually checked.
                if len(left_idx) == 0:
                    attrs = (
                        out_attrs
                        if self.project_to is None
                        else self._checked_projection(out_attrs)
                    )
                    return _ColTable(
                        attrs, tuple(np.empty(0, np.int64) for _ in attrs), 0
                    )
                raise
            keep = mask if keep is None else (keep & mask)
        if keep is not None:
            left_idx = left_idx[keep]
            right_idx = right_idx[keep]
        attrs = (
            out_attrs
            if self.project_to is None
            else self._checked_projection(out_attrs)
        )
        columns = []
        for attribute in attrs:
            if left.has(attribute):
                columns.append(left.column(attribute)[left_idx])
            else:
                columns.append(right.column(attribute)[right_idx])
        table = _ColTable(attrs, tuple(columns), len(left_idx))
        # A natural join of two duplicate-free tables is duplicate-free
        # (shared + extra covers every right attribute); only an actual
        # projection can collapse rows.
        return table if self.project_to is None else _dedup(table)

    def _checked_projection(self, out_attrs: Tuple[str, ...]) -> Tuple[str, ...]:
        for attribute in self.project_to:
            if attribute not in out_attrs:
                raise EvaluationError(
                    f"no attribute {attribute!r} in {out_attrs}"
                )
        return self.project_to

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.left.tables_read() | self.right.tables_read()


def _match_pairs(
    left: _ColTable, right: _ColTable, shared: List[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (left index, right index) pairs of the natural join.

    The smaller side is sorted by its composite key (the build side of
    a classic hash join); the larger side probes with binary search and
    match runs are expanded with repeat/cumsum arithmetic.
    """
    if not shared:
        left_idx = np.repeat(np.arange(left.nrows), right.nrows)
        right_idx = np.tile(np.arange(right.nrows), left.nrows)
        return left_idx, right_idx
    joint = [
        np.concatenate((left.column(a), right.column(a))) for a in shared
    ]
    ids = _row_ids(joint, left.nrows + right.nrows)
    left_ids, right_ids = ids[: left.nrows], ids[left.nrows:]
    if right.nrows <= left.nrows:
        build_ids, probe_ids = right_ids, left_ids
        swap = False
    else:
        build_ids, probe_ids = left_ids, right_ids
        swap = True
    order = np.argsort(build_ids, kind="stable")
    sorted_ids = build_ids[order]
    starts = np.searchsorted(sorted_ids, probe_ids, side="left")
    ends = np.searchsorted(sorted_ids, probe_ids, side="right")
    counts = ends - starts
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_ids)), counts)
    run_starts = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(run_starts, counts)
    build_idx = order[np.repeat(starts, counts) + within]
    if swap:
        return build_idx, probe_idx
    return probe_idx, build_idx


# ---------------------------------------------------------------- commands
class _CAccess:
    """A compiled access command: batched input, tuple-level dispatch."""

    __slots__ = (
        "target", "method", "input_expr", "binding", "output_map",
        "input_attrs",
    )
    kind = "access"

    def __init__(self, target, method, input_expr, binding, output_map):
        self.target = target
        self.method = method
        self.input_expr = input_expr
        self.binding = binding
        self.output_map = output_map
        seen: Dict[str, None] = {}
        for entry in binding:
            if isinstance(entry, str) and entry not in seen:
                seen[entry] = None
        self.input_attrs = tuple(seen)

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.input_expr.tables_read()

    def execute(self, env, source, codec, cache, stats, resilience):
        """Run this compiled command, mutating ``env`` and ``stats``."""
        inputs = self.input_expr.eval(env, codec)
        try:
            columns = [inputs.column(a) for a in self.input_attrs]
        except EvaluationError as exc:
            raise EvaluationError(
                f"access {self.method}: input expression lacks "
                f"attributes {self.input_attrs}: {exc}"
            ) from exc
        # Distinct binding tuples via one vectorized grouping; only the
        # representatives are decoded back to terms for dispatch.
        if columns:
            ids = _row_ids(columns, inputs.nrows)
            _, first = np.unique(ids, return_index=True)
            distinct_rows = [
                tuple(int(column[i]) for column in columns) for i in first
            ]
        else:
            distinct_rows = [()] if inputs.nrows else []
        attr_pos = {a: i for i, a in enumerate(self.input_attrs)}
        bindings = []
        for codes in distinct_rows:
            bindings.append(
                tuple(
                    entry
                    if isinstance(entry, Constant)
                    else codec.decode(codes[attr_pos[entry]])
                    for entry in self.binding
                )
            )
        batches = []
        cache_hits_before = cache.hits if cache is not None else 0
        retries_before = resilience.retries if resilience is not None else 0
        faults_before = resilience.faults if resilience is not None else 0
        for values in bindings:
            if resilience is not None:
                if cache is not None:
                    fetch = lambda v=values: cache.fetch(
                        source, self.method, v
                    )
                else:
                    fetch = lambda v=values: source.access(self.method, v)
                accessed_rows = resilience.call(
                    fetch, self.method, inputs=values
                )
            elif cache is not None:
                accessed_rows = cache.fetch(source, self.method, values)
            else:
                accessed_rows = source.access(self.method, values)
            batches.append(accessed_rows)
        if stats is not None:
            stats.rows_in = inputs.nrows
            stats.dispatched = len(bindings)
            stats.deduped = inputs.nrows - len(bindings)
            stats.rows_fetched = sum(len(batch) for batch in batches)
            if cache is not None:
                stats.cache_hits = cache.hits - cache_hits_before
            if resilience is not None:
                stats.retries = resilience.retries - retries_before
                stats.faults = resilience.faults - faults_before
        table = self._encode_output(batches, codec)
        if stats is not None:
            stats.rows_out = table.nrows
        env[self.target] = table

    def _encode_output(self, batches, codec) -> _ColTable:
        """Batch-map the accessed tuples into the output column table.

        The per-row path this replaces built a Python value set per
        output attribute per accessed row (the repeated-position
        equality filter), inserted mapped tuples into a Python set, and
        then re-interned every cell in ``encode_rows``.  Here each
        *referenced source position* is interned exactly once into an
        int64 code array, the equality filter is a vectorized mask over
        those arrays, and set semantics are restored by the same
        ``_dedup`` grouping the middleware boundary uses.
        """
        rows: List[Tuple[Term, ...]] = []
        for batch in batches:
            rows.extend(batch)
        if not self.output_map:
            # Boolean access: any surviving row witnesses the empty tuple.
            return _ColTable((), (), 1 if rows else 0)
        positions = sorted(
            {p for _attr, ps in self.output_map for p in ps}
        )
        code = codec.code
        arrays = {
            p: np.asarray([code(row[p]) for row in rows], dtype=np.int64)
            for p in positions
        }
        # A repeated output position (attr <- positions p0, p1, ...) is an
        # equality filter: the row survives only when all agree.
        mask = None
        for _attr, ps in self.output_map:
            for extra in ps[1:]:
                eq = arrays[ps[0]] == arrays[extra]
                mask = eq if mask is None else mask & eq
        columns = tuple(
            arrays[ps[0]][mask] if mask is not None else arrays[ps[0]]
            for _attr, ps in self.output_map
        )
        kept = int(columns[0].shape[0])
        out_attrs = tuple(attr for attr, _ in self.output_map)
        return _dedup(_ColTable(out_attrs, columns, kept))


class _CMiddleware:
    """A compiled middleware command: local columnar algebra."""

    __slots__ = ("target", "expr")
    kind = "middleware"

    def __init__(self, target: str, expr: _CExpr) -> None:
        self.target = target
        self.expr = expr

    def tables_read(self):
        """Names of the temp tables this subtree scans."""
        return self.expr.tables_read()

    def execute(self, env, source, codec, cache, stats, resilience):
        """Run this compiled command, mutating ``env`` and ``stats``."""
        table = self.expr.eval(env, codec)
        if stats is not None:
            stats.rows_out = table.nrows
        env[self.target] = table


# ---------------------------------------------------------------- compiler
def _compile_expr(obj: Mapping) -> _CExpr:
    op = obj.get("op")
    if op == "singleton":
        return _CSingleton()
    if op == "scan":
        return _CScan(obj["table"])
    if op == "literal":
        return _CLiteral(
            tuple(obj["attrs"]),
            tuple(
                tuple(term_from_ir(cell) for cell in row)
                for row in obj["rows"]
            ),
        )
    if op == "project":
        child = _compile_expr(obj["child"])
        attrs = tuple(obj["attrs"])
        # π over ⋈ (optionally through σ) fuses into the join probe.
        if isinstance(child, _CJoin) and child.project_to is None:
            return _CJoin(child.left, child.right, child.conditions, attrs)
        return _CProject(child, attrs)
    if op == "select":
        child = _compile_expr(obj["child"])
        conditions = tuple(condition_from_ir(c) for c in obj["conditions"])
        if isinstance(child, _CJoin) and child.project_to is None:
            return _CJoin(
                child.left, child.right, child.conditions + conditions
            )
        return _CSelect(child, conditions)
    if op == "rename":
        return _CRename(
            _compile_expr(obj["child"]),
            tuple((old, new) for old, new in obj["mapping"]),
        )
    if op == "join":
        return _CJoin(
            _compile_expr(obj["left"]), _compile_expr(obj["right"])
        )
    if op == "union":
        return _CUnion(
            _compile_expr(obj["left"]), _compile_expr(obj["right"])
        )
    if op == "difference":
        return _CDifference(
            _compile_expr(obj["left"]), _compile_expr(obj["right"])
        )
    raise PlanIRError(f"unknown expression op {op!r}")


def _compile_command(obj: Mapping):
    kind = obj.get("cmd")
    if kind == "access":
        return _CAccess(
            target=obj["target"],
            method=obj["method"],
            input_expr=_compile_expr(obj["input"]),
            binding=tuple(
                entry if isinstance(entry, str) else term_from_ir(entry)
                for entry in obj["binding"]
            ),
            output_map=tuple(
                (attr, tuple(positions)) for attr, positions in obj["output"]
            ),
        )
    if kind == "middleware":
        return _CMiddleware(obj["target"], _compile_expr(obj["expr"]))
    raise PlanIRError(f"unknown command kind {kind!r}")


class ColumnarPlan:
    """A plan compiled from its IR into the columnar pipeline."""

    def __init__(self, ir: Mapping) -> None:
        from repro.plans.ir import IR_KIND, IR_VERSION

        if ir.get("ir") != IR_KIND or ir.get("version") != IR_VERSION:
            raise PlanIRError(
                f"not a readable plan IR (ir={ir.get('ir')!r}, "
                f"version={ir.get('version')!r})"
            )
        self.name = ir.get("name", "plan")
        self.output_table = ir["output"]
        self.commands = tuple(_compile_command(c) for c in ir["commands"])
        self._last_readers = self._compute_last_readers()

    @classmethod
    def from_plan(cls, plan) -> "ColumnarPlan":
        """Compile a :class:`~repro.plans.plan.Plan` via its IR."""
        return cls(plan_to_ir(plan))

    def _compute_last_readers(self) -> Dict[str, int]:
        last: Dict[str, int] = {c.target: -1 for c in self.commands}
        for index, command in enumerate(self.commands):
            for table in command.tables_read():
                last[table] = index
        return last

    def execute(
        self,
        source,
        cache=None,
        stats=None,
        free_temps: bool = True,
        resilience=None,
        budget=None,
    ) -> NamedTable:
        """Run the compiled pipeline; same contract as ``Plan.execute``.

        The environment holds dictionary-encoded column tables; the
        output is decoded to a :class:`NamedTable` and passed through
        ``budget.admit_result`` exactly like the interpreter, so the
        deterministic truncation prefix and ``truncated_rows`` match
        across backends.
        """
        codec = _Codec()
        env: Dict[str, _ColTable] = {}
        last_read = self._last_readers if free_temps else {}
        started = perf_counter()
        for index, command in enumerate(self.commands):
            if resilience is not None:
                resilience.check_deadline(f"command #{index}")
            command_stats = None
            if stats is not None:
                command_stats = stats.command(
                    index,
                    command.target,
                    command.kind,
                    method=getattr(command, "method", None),
                )
            command_started = perf_counter()
            command.execute(
                env, source, codec, cache, command_stats, resilience
            )
            if command_stats is not None:
                command_stats.wall_time = perf_counter() - command_started
            if stats is not None or budget is not None:
                resident = sum(table.nrows for table in env.values())
                if stats is not None:
                    stats.note_resident(resident)
                if budget is not None:
                    budget.check_resident(resident)
            if free_temps:
                freed = 0
                for table in [
                    t
                    for t, last in last_read.items()
                    if last <= index and t in env and t != self.output_table
                ]:
                    del env[table]
                    freed += 1
                if command_stats is not None:
                    command_stats.freed_tables = freed
        output = codec.decode_table(env[self.output_table])
        if budget is not None:
            output = budget.admit_result(output)
        if stats is not None:
            stats.wall_time += perf_counter() - started
            stats.runs += 1
            if resilience is not None:
                stats.breaker_trips = resilience.breaker_trips
        return output

    def __repr__(self) -> str:
        return (
            f"ColumnarPlan({self.name}: {len(self.commands)} commands, "
            f"out={self.output_table})"
        )


def compile_columnar(plan) -> ColumnarPlan:
    """Compile a plan for columnar execution (cached on the plan)."""
    try:
        return plan._columnar_compiled  # type: ignore[attr-defined]
    except AttributeError:
        compiled = ColumnarPlan.from_plan(plan)
        object.__setattr__(plan, "_columnar_compiled", compiled)
        return compiled


# ------------------------------------------------------------ differential
def execute_differential(
    plan,
    source,
    cache=None,
    stats=None,
    free_temps: bool = True,
    resilience=None,
    budget=None,
) -> NamedTable:
    """Run columnar AND interpreter, assert identical sorted answers.

    The columnar backend is the measured run (it gets ``stats`` and the
    caller's ``budget``); the interpreter replays as the oracle with a
    fresh copy of the budget and the *same* access cache -- when no
    cache was supplied a private one is created for the pair of runs,
    so the oracle's accesses are answered from memory instead of
    re-invoking (and re-charging) the source.  Answers are compared as
    sorted row lists plus attribute tuples -- byte-identical output --
    and budget truncation must have dropped the same row count.  A
    mismatch raises :class:`DifferentialMismatch`; this mode is for
    verification, not performance.
    """
    from repro.exec.cache import AccessCache

    shared_cache = cache if cache is not None else AccessCache()
    columnar_output = compile_columnar(plan).execute(
        source,
        cache=shared_cache,
        stats=stats,
        free_temps=free_temps,
        resilience=resilience,
        budget=budget,
    )
    oracle_budget = budget.fresh() if budget is not None else None
    oracle_output = plan.execute(
        source,
        cache=shared_cache,
        free_temps=free_temps,
        resilience=resilience,
        budget=oracle_budget,
        executor="interpreter",
    )
    if columnar_output.attributes != oracle_output.attributes:
        raise DifferentialMismatch(
            f"plan {plan.name}: columnar attributes "
            f"{columnar_output.attributes} != interpreter "
            f"{oracle_output.attributes}"
        )
    if sorted(columnar_output.rows) != sorted(oracle_output.rows):
        raise DifferentialMismatch(
            f"plan {plan.name}: columnar answer ({len(columnar_output.rows)} "
            f"rows) differs from the interpreter oracle "
            f"({len(oracle_output.rows)} rows)"
        )
    if budget is not None and budget.truncated_rows != oracle_budget.truncated_rows:
        raise DifferentialMismatch(
            f"plan {plan.name}: columnar truncated "
            f"{budget.truncated_rows} rows, interpreter "
            f"{oracle_budget.truncated_rows}"
        )
    return columnar_output
