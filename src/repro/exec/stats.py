"""Execution instrumentation: per-command and per-run counters.

:class:`ExecStats` is threaded through :meth:`repro.plans.plan.Plan.execute`
and collects, per command, wall time and row flow, plus the access
dispatch breakdown the runtime's optimisations act on: how many input
rows each access command saw, how many *distinct* input tuples were
actually dispatched (the dedup win), and how many dispatches were
answered by the :class:`~repro.exec.cache.AccessCache` without touching
the source (the memoization win).  ``peak_resident_rows`` tracks the
largest total number of temporary-table rows alive at once, which is
what the temp-table freeing in ``Plan.execute`` bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CommandStats:
    """Counters for one executed command."""

    index: int
    target: str
    kind: str  # "access" | "middleware"
    # The access method invoked (None for middleware commands).  This is
    # what lets downstream consumers -- notably the feedback-driven cost
    # calibration (repro.cost.calibration) -- aggregate observed row
    # flow per (relation, method) without re-deriving it from the plan.
    method: Optional[str] = None
    wall_time: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    dispatched: int = 0  # distinct input tuples sent to dispatch
    deduped: int = 0  # duplicate input tuples collapsed before dispatch
    # Raw tuples the source (or cache) answered with, before the output
    # mapping's equality filter and set-semantics dedup.  rows_out /
    # rows_fetched is therefore a true selectivity observation in (0, 1].
    rows_fetched: int = 0
    cache_hits: int = 0  # dispatches answered from the AccessCache
    freed_tables: int = 0  # temp tables released after this command
    retries: int = 0  # dispatches re-attempted after a transient fault
    faults: int = 0  # transient faults seen (retried or given up on)

    def as_dict(self) -> Dict:
        """A JSON-able representation."""
        return {
            "index": self.index,
            "target": self.target,
            "kind": self.kind,
            "method": self.method,
            "wall_time": self.wall_time,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "dispatched": self.dispatched,
            "deduped": self.deduped,
            "rows_fetched": self.rows_fetched,
            "cache_hits": self.cache_hits,
            "freed_tables": self.freed_tables,
            "retries": self.retries,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CommandStats":
        """Inverse of :meth:`as_dict` (cross-process stats shipping)."""
        method = data.get("method")
        return cls(
            index=int(data["index"]),
            target=str(data["target"]),
            kind=str(data["kind"]),
            method=str(method) if method is not None else None,
            wall_time=float(data.get("wall_time", 0.0)),
            rows_in=int(data.get("rows_in", 0)),
            rows_out=int(data.get("rows_out", 0)),
            dispatched=int(data.get("dispatched", 0)),
            deduped=int(data.get("deduped", 0)),
            rows_fetched=int(data.get("rows_fetched", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            freed_tables=int(data.get("freed_tables", 0)),
            retries=int(data.get("retries", 0)),
            faults=int(data.get("faults", 0)),
        )


@dataclass
class ExecStats:
    """Aggregated execution statistics for one (or a batch of) plan runs."""

    commands: List[CommandStats] = field(default_factory=list)
    wall_time: float = 0.0
    peak_resident_rows: int = 0
    runs: int = 0
    # Resilience counters: breaker trips are synced from the dispatcher's
    # registry after each run; failovers are incremented by the
    # FailoverExecutor when it re-plans around a dead method.
    breaker_trips: int = 0
    failovers: int = 0

    def command(
        self,
        index: int,
        target: str,
        kind: str,
        method: Optional[str] = None,
    ) -> CommandStats:
        """Open a fresh per-command record and return it."""
        stats = CommandStats(
            index=index, target=target, kind=kind, method=method
        )
        self.commands.append(stats)
        return stats

    def note_resident(self, rows: int) -> None:
        """Record the currently resident row total; keeps the maximum."""
        if rows > self.peak_resident_rows:
            self.peak_resident_rows = rows

    def merge(self, other: "ExecStats") -> None:
        """Fold another run's stats into this one (service aggregation).

        Additive counters (runs, wall time, per-command records,
        failovers) sum; ``peak_resident_rows`` takes the maximum -- the
        peaks of two requests do not stack unless they were resident
        simultaneously, which per-request tracking cannot see;
        ``breaker_trips`` also takes the maximum because each request
        snapshots the *same* monotone registry-wide total.  The service
        serializes merges under its own lock; this method itself is not
        thread-safe.
        """
        self.commands.extend(other.commands)
        self.wall_time += other.wall_time
        self.runs += other.runs
        if other.peak_resident_rows > self.peak_resident_rows:
            self.peak_resident_rows = other.peak_resident_rows
        if other.breaker_trips > self.breaker_trips:
            self.breaker_trips = other.breaker_trips
        self.failovers += other.failovers

    # ------------------------------------------------------------ totals
    @property
    def accesses_dispatched(self) -> int:
        """Distinct input tuples dispatched across all access commands."""
        return sum(c.dispatched for c in self.commands)

    @property
    def accesses_deduped(self) -> int:
        """Duplicate input tuples collapsed before dispatch."""
        return sum(c.deduped for c in self.commands)

    @property
    def cache_hits(self) -> int:
        """Dispatches short-circuited by the access cache."""
        return sum(c.cache_hits for c in self.commands)

    @property
    def source_invocations(self) -> int:
        """Dispatches that actually reached the source."""
        return self.accesses_dispatched - self.cache_hits

    @property
    def rows_out(self) -> int:
        """Total rows produced across all commands."""
        return sum(c.rows_out for c in self.commands)

    @property
    def retries(self) -> int:
        """Dispatches re-attempted after transient faults, across commands."""
        return sum(c.retries for c in self.commands)

    @property
    def faults(self) -> int:
        """Transient faults seen across commands (retried or not)."""
        return sum(c.faults for c in self.commands)

    def summary(self) -> str:
        """A one-line human-readable digest."""
        resilience = ""
        if self.faults or self.breaker_trips or self.failovers:
            resilience = (
                f", {self.faults} faults / {self.retries} retries, "
                f"{self.breaker_trips} breaker trips, "
                f"{self.failovers} failovers"
            )
        return (
            f"{self.runs} run(s), {len(self.commands)} commands in "
            f"{self.wall_time * 1e3:.2f} ms: "
            f"{self.accesses_dispatched} dispatched "
            f"({self.accesses_deduped} deduped, "
            f"{self.cache_hits} cache hits, "
            f"{self.source_invocations} reached the source), "
            f"peak resident rows {self.peak_resident_rows}"
            + resilience
        )

    def as_dict(self) -> Dict:
        """A JSON-able representation (used by the benchmarks)."""
        return {
            "runs": self.runs,
            "wall_time": self.wall_time,
            "peak_resident_rows": self.peak_resident_rows,
            "accesses_dispatched": self.accesses_dispatched,
            "accesses_deduped": self.accesses_deduped,
            "cache_hits": self.cache_hits,
            "source_invocations": self.source_invocations,
            "retries": self.retries,
            "faults": self.faults,
            "breaker_trips": self.breaker_trips,
            "failovers": self.failovers,
            "commands": [c.as_dict() for c in self.commands],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExecStats":
        """Inverse of :meth:`as_dict`.

        Worker processes serialize their per-request stats with
        ``as_dict()`` (plain JSON survives any executor transport); the
        parent rebuilds them here and folds them into the service totals
        with the existing :meth:`merge`.  The derived totals
        (dispatched, cache hits, ...) are recomputed from the command
        records rather than trusted from the payload.
        """
        stats = cls(
            commands=[
                CommandStats.from_dict(entry)
                for entry in data.get("commands", ())
            ],
            wall_time=float(data.get("wall_time", 0.0)),
            peak_resident_rows=int(data.get("peak_resident_rows", 0)),
            runs=int(data.get("runs", 0)),
            breaker_trips=int(data.get("breaker_trips", 0)),
            failovers=int(data.get("failovers", 0)),
        )
        return stats
