"""A bounded LRU memo for access results.

The paper (and the result-bounded-interface line of work it cites)
treats every access as an expensive external call, so the runtime may
legitimately remember what a call returned: an
:class:`~repro.data.source.InMemorySource` is *deterministic* -- the
same ``(method, inputs)`` pair always yields the same tuple set until
the underlying instance mutates -- which makes memoization sound.  The
cache watches the source's *epoch token*
(:func:`~repro.sources.base.source_epoch`: ``epoch()`` when the source
exposes it, ``Instance.version`` otherwise) and drops everything when
it moves, so a stale answer is never served -- including answers from
a real backend (:mod:`repro.sources`) whose snapshot changed behind a
reconnect.

Metering policy: by default a cache hit is *free* -- it is not
dispatched to the source, so it is neither logged nor charged.  That is
the accounting a caching mediator would report (you only pay the remote
call you actually make).  Constructing with ``charge_hits=True``
restores the old books: every hit is re-logged as a full-price
invocation on the source, so ``charged_cost`` and ``total_invocations``
behave exactly as if the cache were absent (only wall time improves).
The benchmarks use this to keep their charged-cost series comparable.
Each cached entry carries the method's relation name resolved at miss
time, so charging a hit never re-touches schema state -- a hit is pure
cache reads plus one log append.

Concurrency: every structural mutation (the version-triggered clear,
the LRU insert/evict/reorder, the counters) happens under one internal
lock, so the cache may be shared by every worker of a
:class:`~repro.service.QueryService`.  Misses are *single-flight*: the
first thread to miss a key fetches from the source outside the lock
while later threads for the same key wait on its completion, so a
stampede of identical requests costs one source invocation -- the same
"identical accesses are paid once" contract the sequential runtime
gives.  Single-threaded callers see identical semantics to the PR 3
cache; the only addition is one uncontended lock acquisition per fetch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Tuple

from repro.data.source import AccessRecord
from repro.logic.terms import Constant
from repro.sources.base import source_epoch

_Key = Tuple[str, Tuple[Constant, ...]]
_Rows = FrozenSet[Tuple[Constant, ...]]
# Cached value: the rows plus the relation name hoisted at miss time
# (so charge_hits never re-reads schema state on a hit).
_Entry = Tuple[str, _Rows]


class _InFlight:
    """One in-progress fetch other threads can wait on."""

    __slots__ = ("event", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.failed = False


class AccessCache:
    """Bounded LRU cache over ``(method, inputs) -> result tuples``."""

    def __init__(self, maxsize: int = 4096, charge_hits: bool = False) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.charge_hits = charge_hits
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stampedes_collapsed = 0
        self._store: "OrderedDict[_Key, _Entry]" = OrderedDict()
        self._inflight: Dict[_Key, _InFlight] = {}
        self._instance_version: Optional[int] = None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def fetch(
        self, source, method: str, inputs: Tuple[Constant, ...]
    ) -> _Rows:
        """The result of ``source.access(method, inputs)``, memoized.

        On a hit the source is not touched (unless ``charge_hits``, in
        which case an equivalent :class:`AccessRecord` is appended to
        the source's log so the accounting matches uncached execution).
        Concurrent misses of the same key collapse into one source
        invocation; the waiters count as hits (they never reached the
        source), except that a waiter whose fetcher failed retries the
        fetch itself so errors are seen by everyone who asked.
        """
        key = (method, inputs)
        waited = False
        while True:
            with self._lock:
                version = source_epoch(source)
                if version != self._instance_version:
                    self._store.clear()
                    self._instance_version = version
                entry = self._store.get(key)
                if entry is not None:
                    self.hits += 1
                    if waited:
                        self.stampedes_collapsed += 1
                    self._store.move_to_end(key)
                    relation, rows = entry
                    charge = self.charge_hits
                else:
                    flight = self._inflight.get(key)
                    if flight is None:
                        flight = _InFlight()
                        self._inflight[key] = flight
                        self.misses += 1
                        break  # this thread is the fetcher
            if entry is not None:
                if charge:
                    source.log.append(
                        AccessRecord(
                            method=method,
                            relation=relation,
                            inputs=inputs,
                            results=len(rows),
                        )
                    )
                return rows
            # Another thread is fetching this key: wait, then re-check.
            flight.event.wait()
            waited = not flight.failed
        try:
            result = source.access(method, inputs)
            relation = source.schema.method(method).relation
        except BaseException:
            with self._lock:
                flight.failed = True
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            # Only install if no epoch change (instance mutation or
            # backend snapshot move) invalidated this fetch in flight.
            if source_epoch(source) == self._instance_version:
                self._store[key] = (relation, result)
                if len(self._store) > self.maxsize:
                    self._store.popitem(last=False)
                    self.evictions += 1
            self._inflight.pop(key, None)
        flight.event.set()
        return result

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self.hits = self.misses = self.evictions = 0
            self.stampedes_collapsed = 0
            self._instance_version = None

    def summary(self) -> str:
        """A one-line human-readable digest."""
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (
            f"{len(self._store)}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({rate:.0%} hit rate), {self.evictions} evictions"
            + (", hits charged" if self.charge_hits else "")
        )

    def as_dict(self) -> Dict:
        """A JSON-able representation (used by the benchmarks)."""
        return {
            "maxsize": self.maxsize,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stampedes_collapsed": self.stampedes_collapsed,
            "charge_hits": self.charge_hits,
        }

    def __repr__(self) -> str:
        return f"AccessCache({self.summary()})"
