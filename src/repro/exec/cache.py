"""A bounded LRU memo for access results.

The paper (and the result-bounded-interface line of work it cites)
treats every access as an expensive external call, so the runtime may
legitimately remember what a call returned: an
:class:`~repro.data.source.InMemorySource` is *deterministic* -- the
same ``(method, inputs)`` pair always yields the same tuple set until
the underlying instance mutates -- which makes memoization sound.  The
cache watches ``Instance.version`` and drops everything when the data
changes, so a stale answer is never served.

Metering policy: by default a cache hit is *free* -- it is not
dispatched to the source, so it is neither logged nor charged.  That is
the accounting a caching mediator would report (you only pay the remote
call you actually make).  Constructing with ``charge_hits=True``
restores the old books: every hit is re-logged as a full-price
invocation on the source, so ``charged_cost`` and ``total_invocations``
behave exactly as if the cache were absent (only wall time improves).
The benchmarks use this to keep their charged-cost series comparable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Tuple

from repro.data.source import AccessRecord
from repro.logic.terms import Constant

_Key = Tuple[str, Tuple[Constant, ...]]
_Rows = FrozenSet[Tuple[Constant, ...]]


class AccessCache:
    """Bounded LRU cache over ``(method, inputs) -> result tuples``."""

    def __init__(self, maxsize: int = 4096, charge_hits: bool = False) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.charge_hits = charge_hits
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: "OrderedDict[_Key, _Rows]" = OrderedDict()
        self._instance_version: Optional[int] = None

    def __len__(self) -> int:
        return len(self._store)

    def fetch(
        self, source, method: str, inputs: Tuple[Constant, ...]
    ) -> _Rows:
        """The result of ``source.access(method, inputs)``, memoized.

        On a hit the source is not touched (unless ``charge_hits``, in
        which case an equivalent :class:`AccessRecord` is appended to
        the source's log so the accounting matches uncached execution).
        """
        version = source.instance.version
        if version != self._instance_version:
            self._store.clear()
            self._instance_version = version
        key = (method, inputs)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            self._store.move_to_end(key)
            if self.charge_hits:
                source.log.append(
                    AccessRecord(
                        method=method,
                        relation=source.schema.method(method).relation,
                        inputs=inputs,
                        results=len(cached),
                    )
                )
            return cached
        self.misses += 1
        result = source.access(method, inputs)
        self._store[key] = result
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1
        return result

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self.hits = self.misses = self.evictions = 0
        self._instance_version = None

    def summary(self) -> str:
        """A one-line human-readable digest."""
        total = self.hits + self.misses
        rate = self.hits / total if total else 0.0
        return (
            f"{len(self._store)}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({rate:.0%} hit rate), {self.evictions} evictions"
            + (", hits charged" if self.charge_hits else "")
        )

    def as_dict(self) -> Dict:
        """A JSON-able representation (used by the benchmarks)."""
        return {
            "maxsize": self.maxsize,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "charge_hits": self.charge_hits,
        }

    def __repr__(self) -> str:
        return f"AccessCache({self.summary()})"
