"""Fault tolerance for plan execution: retries, deadlines, breakers.

The execution runtime (PR 3) assumed every access method always
answers; this module is what makes a *flaky* method survivable and a
*dead* one detectable.  Three cooperating pieces, all with injectable
time so fault scenarios run deterministically in simulated seconds:

* :class:`RetryPolicy` -- exponential backoff with deterministic jitter
  (a seeded hash of ``(method, inputs, attempt)``, never ``random``),
  retrying exactly the :class:`~repro.errors.TransientAccessError`
  kinds; per-access attempt caps.
* :class:`Deadline` -- an overall wall-clock budget for a plan run;
  dispatch refuses to start (or to back off) past it, raising
  :class:`~repro.errors.DeadlineExceeded`.
* :class:`CircuitBreaker` / :class:`BreakerRegistry` -- the classic
  closed / open / half-open state machine, one breaker per access
  method.  Enough consecutive failures trip the breaker; while open,
  calls fail fast with :class:`~repro.errors.CircuitOpen` without
  touching the source; after the recovery window one probe is let
  through (half-open) and either closes or re-trips it.  A
  :class:`~repro.errors.MethodOutage` force-opens the breaker
  immediately -- hard outages should not burn the whole threshold.

:class:`ResilientDispatcher` ties them together and is what
:meth:`repro.plans.commands.AccessCommand.execute` calls per dispatched
access when a ``resilience`` argument is threaded through
:meth:`repro.plans.plan.Plan.execute`.  Its counters surface in
:class:`~repro.exec.stats.ExecStats` (retries, faults, breaker trips).
Plan-level *failover* -- re-planning around open breakers -- lives one
layer up, in :mod:`repro.exec.failover`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Type

from repro.errors import (
    AccessError,
    CircuitOpen,
    DeadlineExceeded,
    MethodOutage,
    TransientAccessError,
)
from repro.faults.policy import unit_interval

Clock = Callable[[], float]
Sleep = Callable[[float], None]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and an attempt cap.

    ``max_attempts`` counts the first try: 1 means "never retry".  The
    wait before retry ``n`` (1-based) is ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, stretched by up to ``jitter`` of itself --
    where the stretch factor is a seeded hash of the access identity and
    attempt number, so two runs of the same workload back off
    identically (no thundering-herd *and* no flaky tests).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (TransientAccessError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether ``error`` on (1-based) ``attempt`` deserves another try."""
        return attempt < self.max_attempts and isinstance(
            error, self.retry_on
        )

    def delay(self, attempt: int, method: str = "", inputs: Tuple = ()) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter included."""
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay)
        stretch = unit_interval(self.seed, method, inputs, attempt)
        return capped * (1.0 + self.jitter * stretch)


class Deadline:
    """An absolute time budget shared by everything in one plan run."""

    def __init__(self, seconds: float, clock: Clock = time.monotonic) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = seconds
        self.clock = clock
        self.started = clock()

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() <= 0

    def remaining(self) -> float:
        """Seconds left (negative when past the deadline)."""
        return self.seconds - (self.clock() - self.started)

    def check(self, doing: str = "execution") -> None:
        """Raise :class:`DeadlineExceeded` when the budget has run out."""
        if self.expired:
            raise DeadlineExceeded(
                f"plan deadline of {self.seconds}s expired during {doing} "
                f"({-self.remaining():.3f}s over)"
            )

    def __repr__(self) -> str:
        return f"Deadline({self.remaining():.3f}s of {self.seconds}s left)"


class CircuitBreaker:
    """Closed / open / half-open breaker for one access method.

    State transitions are serialized by an internal lock, so one
    breaker may be shared by every worker of a concurrent service; the
    allow/record protocol itself stays check-then-report (two calls),
    which is the standard breaker contract -- a probe admitted by one
    thread may overlap another thread's failure report, and the state
    machine is correct under any interleaving of reports.
    """

    def __init__(
        self,
        method: str,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_successes: int = 1,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")
        self.method = method
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_successes = half_open_successes
        self.clock = clock
        self.state = CLOSED
        self.trips = 0
        self.forced = False  # opened by a MethodOutage: never half-opens
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether a call may proceed now (may move open -> half-open)."""
        with self._lock:
            if self.state == OPEN:
                if self.forced:
                    return False
                if self.clock() - self._opened_at >= self.recovery_time:
                    self.state = HALF_OPEN
                    self._probe_successes = 0
                    return True
                return False
            return True

    def record_success(self) -> None:
        """Feed back a successful call."""
        with self._lock:
            if self.state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self.state = CLOSED
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self, permanent: bool = False) -> None:
        """Feed back a failed call; ``permanent`` force-opens."""
        with self._lock:
            self._consecutive_failures += 1
            if permanent:
                self.forced = True
            if self.state == HALF_OPEN or permanent or (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        # Caller holds self._lock.
        if self.state != OPEN:
            self.trips += 1
        self.state = OPEN
        self._opened_at = self.clock()
        self._probe_successes = 0

    def reset(self) -> None:
        """Close the breaker unconditionally (operator/recovery action).

        This is the one transition the state machine cannot take by
        itself: a *forced*-open breaker (hard :class:`MethodOutage`)
        never half-opens, so when the outage is known to be over --
        an operator says so, or the service's method-health recovery
        loop does -- the breaker must be reset explicitly.  Clears the
        forced flag and the failure run; ``trips`` history is kept.
        """
        with self._lock:
            self.state = CLOSED
            self.forced = False
            self._consecutive_failures = 0
            self._probe_successes = 0

    def refuse(self, inputs: Tuple = ()) -> CircuitOpen:
        """The error describing why a call was refused right now."""
        return CircuitOpen(
            f"circuit open ({self._consecutive_failures} consecutive "
            f"failures{', hard outage' if self.forced else ''})",
            method=self.method,
            inputs=inputs,
        )

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.method}: {self.state}, {self.trips} trips)"


class BreakerRegistry:
    """One lazily created breaker per access method, shared settings."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_successes: int = 1,
        clock: Clock = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_successes = half_open_successes
        self.clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def for_method(self, method: str) -> CircuitBreaker:
        """The breaker guarding one method (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = CircuitBreaker(
                    method,
                    failure_threshold=self.failure_threshold,
                    recovery_time=self.recovery_time,
                    half_open_successes=self.half_open_successes,
                    clock=self.clock,
                )
                self._breakers[method] = breaker
            return breaker

    def _snapshot(self) -> Tuple[Tuple[str, CircuitBreaker], ...]:
        with self._lock:
            return tuple(self._breakers.items())

    def open_methods(self) -> Tuple[str, ...]:
        """Methods whose breaker is currently open, sorted."""
        return tuple(
            sorted(
                name
                for name, breaker in self._snapshot()
                if breaker.state == OPEN
            )
        )

    def forced_open_methods(self) -> Tuple[str, ...]:
        """Methods force-opened by a hard outage (never self-recover)."""
        return tuple(
            sorted(
                name
                for name, breaker in self._snapshot()
                if breaker.state == OPEN and breaker.forced
            )
        )

    def reset_method(self, method: str) -> bool:
        """Reset one method's breaker if it exists; True when it did."""
        with self._lock:
            breaker = self._breakers.get(method)
        if breaker is None:
            return False
        breaker.reset()
        return True

    def states(self) -> Dict[str, str]:
        """Method -> breaker state, a point-in-time health snapshot."""
        return {name: breaker.state for name, breaker in self._snapshot()}

    @property
    def trips(self) -> int:
        """Total breaker trips across all methods."""
        return sum(b.trips for _, b in self._snapshot())

    def __repr__(self) -> str:
        return (
            f"BreakerRegistry({len(self._breakers)} breakers, "
            f"{self.trips} trips, open={list(self.open_methods())})"
        )


@dataclass
class ResilientDispatcher:
    """Retry + breaker + deadline wrapping of single access dispatches.

    ``sleep`` is what backoff waits call; the default ``None`` records
    the wait (``backoff_waited``) without blocking, which is right for
    simulations and benchmarks -- pass ``time.sleep`` (or a
    :meth:`VirtualClock.sleep <repro.faults.clock.VirtualClock.sleep>`)
    when waiting matters.

    A dispatcher's *counters* are plain attributes and therefore
    per-request state: concurrent callers must not share one dispatcher.
    The shareable parts -- the (locked) breaker registry, the frozen
    retry policy, the sleep callable -- are exactly what :meth:`fork`
    carries into a fresh per-request dispatcher, which is how the
    :class:`~repro.service.QueryService` and the concurrent batch path
    give every request its own counters over one breaker state.
    """

    retry: Optional[RetryPolicy] = None
    breakers: Optional[BreakerRegistry] = None
    deadline: Optional[Deadline] = None
    sleep: Optional[Sleep] = None
    # Counters (snapshotted by AccessCommand.execute into CommandStats).
    retries: int = 0
    faults: int = 0
    giveups: int = 0
    backoff_waited: float = 0.0

    def fork(self, deadline: Optional[Deadline] = None) -> "ResilientDispatcher":
        """A fresh dispatcher sharing policy and breakers, own counters.

        ``deadline`` overrides the per-request deadline (``None`` keeps
        this dispatcher's, which is correct when one deadline is meant
        to cover a whole batch).
        """
        return ResilientDispatcher(
            retry=self.retry,
            breakers=self.breakers,
            deadline=deadline if deadline is not None else self.deadline,
            sleep=self.sleep,
        )

    def check_deadline(self, doing: str = "execution") -> None:
        """Deadline check usable between commands, not just per access."""
        if self.deadline is not None:
            self.deadline.check(doing)

    def call(
        self,
        fetch: Callable[[], object],
        method: str,
        inputs: Tuple = (),
        relation: Optional[str] = None,
    ):
        """Run one access dispatch with retries, breaker and deadline.

        ``fetch`` is the zero-argument thunk that actually touches the
        source (directly or through the access cache).  Transient
        errors are retried per the policy; permanent ones propagate
        immediately with the breaker informed either way.
        """
        breaker = (
            self.breakers.for_method(method)
            if self.breakers is not None
            else None
        )
        attempt = 0
        while True:
            self.check_deadline(f"access {method}")
            if breaker is not None and not breaker.allow():
                raise breaker.refuse(inputs)
            attempt += 1
            try:
                result = fetch()
            except TransientAccessError as error:
                self.faults += 1
                if breaker is not None:
                    breaker.record_failure()
                if self.retry is None or not self.retry.should_retry(
                    error, attempt
                ):
                    self.giveups += 1
                    error.attempts = attempt
                    raise
                wait = self.retry.delay(attempt, method, inputs)
                if (
                    self.deadline is not None
                    and wait > self.deadline.remaining()
                ):
                    self.giveups += 1
                    raise DeadlineExceeded(
                        f"backoff of {wait:.3f}s before retrying {method} "
                        f"would overrun the plan deadline "
                        f"(remaining {self.deadline.remaining():.3f}s)"
                    ) from error
                self.backoff_waited += wait
                if self.sleep is not None:
                    self.sleep(wait)
                self.retries += 1
            except AccessError as error:
                # Permanent: breaker learns, caller decides (failover).
                if breaker is not None:
                    breaker.record_failure(
                        permanent=isinstance(error, MethodOutage)
                    )
                error.attempts = attempt
                raise
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    @property
    def breaker_trips(self) -> int:
        """Total trips across the registry (0 without breakers)."""
        return self.breakers.trips if self.breakers is not None else 0

    def summary(self) -> str:
        """A one-line human-readable digest."""
        return (
            f"{self.retries} retries, {self.faults} faults seen, "
            f"{self.giveups} giveups, {self.breaker_trips} breaker trips, "
            f"{self.backoff_waited:.2f}s backoff"
        )
