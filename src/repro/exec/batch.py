"""Batch execution: many runs sharing one source, index and cache.

A deployed mediator does not run a plan once: it serves the same plan
for many parameter values, or several alternative plans over the same
sources.  :class:`BatchExecutor` is that serving loop in miniature --
every run goes through one shared :class:`~repro.data.source.InMemorySource`
(so its per-method indexes are built once) and one shared
:class:`~repro.exec.cache.AccessCache` (so identical accesses are paid
once *across* runs), with one aggregated
:class:`~repro.exec.stats.ExecStats`.

Parameter bindings are plan rewrites: :func:`substitute_constants`
replaces schema constants wherever a plan mentions them (access input
bindings, selection conditions, literal tables), which is how "the same
plan for last name 'smith'" becomes "... for last name 'jones'" without
re-planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.exec.cache import AccessCache
from repro.exec.stats import ExecStats
from repro.logic.terms import Constant
from repro.plans.commands import AccessCommand, Command, MiddlewareCommand
from repro.plans.expressions import (
    Difference,
    EqConst,
    Expression,
    Join,
    Literal,
    NamedTable,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan


def _to_constant_map(mapping: Mapping[object, object]) -> Dict[Constant, Constant]:
    coerced: Dict[Constant, Constant] = {}
    for old, new in mapping.items():
        old_c = old if isinstance(old, Constant) else Constant(old)
        new_c = new if isinstance(new, Constant) else Constant(new)
        coerced[old_c] = new_c
    return coerced


def substitute_constants(
    plan: Plan, mapping: Mapping[object, object]
) -> Plan:
    """A copy of ``plan`` with schema constants replaced per ``mapping``.

    Keys and values may be raw Python values or :class:`Constant`.
    Constants are replaced in access input bindings, in (in)equality
    selection conditions and in literal tables; attribute names are
    untouched.  An empty mapping returns the plan unchanged.
    """
    subst = _to_constant_map(mapping)
    if not subst:
        return plan
    commands = tuple(_sub_command(c, subst) for c in plan.commands)
    return Plan(commands, plan.output_table, name=plan.name)


def _sub_command(command: Command, subst: Dict[Constant, Constant]) -> Command:
    if isinstance(command, AccessCommand):
        return AccessCommand(
            target=command.target,
            method=command.method,
            input_expr=_sub_expr(command.input_expr, subst),
            input_binding=tuple(
                subst.get(entry, entry) if isinstance(entry, Constant) else entry
                for entry in command.input_binding
            ),
            output_map=command.output_map,
        )
    return MiddlewareCommand(command.target, _sub_expr(command.expr, subst))


def _sub_expr(expr: Expression, subst: Dict[Constant, Constant]) -> Expression:
    if isinstance(expr, (Singleton, Scan)):
        return expr
    if isinstance(expr, Literal):
        return Literal(
            NamedTable(
                expr.table.attributes,
                frozenset(
                    tuple(subst.get(cell, cell) for cell in row)
                    for row in expr.table.rows
                ),
            )
        )
    if isinstance(expr, Project):
        return Project(_sub_expr(expr.child, subst), expr.attrs)
    if isinstance(expr, Select):
        return Select(
            _sub_expr(expr.child, subst),
            tuple(_sub_condition(c, subst) for c in expr.conditions),
        )
    if isinstance(expr, Rename):
        return Rename(_sub_expr(expr.child, subst), expr.mapping)
    if isinstance(expr, (Join, Union, Difference)):
        return type(expr)(
            _sub_expr(expr.left, subst), _sub_expr(expr.right, subst)
        )
    raise TypeError(f"cannot substitute constants in {expr!r}")


def _sub_condition(condition, subst: Dict[Constant, Constant]):
    if isinstance(condition, EqConst):
        return EqConst(condition.attribute, subst.get(condition.value, condition.value))
    if isinstance(condition, NeqConst):
        return NeqConst(condition.attribute, subst.get(condition.value, condition.value))
    return condition


@dataclass(frozen=True)
class BatchItem:
    """The structured per-plan result of a batch run: table or error."""

    index: int
    plan: str
    table: Optional[NamedTable] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        """Whether this plan produced a table."""
        return self.table is not None

    def __repr__(self) -> str:
        if self.ok:
            return f"BatchItem(#{self.index} {self.plan}: {len(self.table.rows)} rows)"
        return f"BatchItem(#{self.index} {self.plan}: FAILED {self.error!r})"


class BatchExecutor:
    """Run plans repeatedly over one shared source, index and cache."""

    def __init__(
        self,
        source,
        cache: Optional[AccessCache] = None,
        collect_stats: bool = True,
        resilience=None,
        executor: str = "interpreter",
    ) -> None:
        self.source = source
        self.cache = cache
        self.stats = ExecStats() if collect_stats else None
        self.resilience = resilience
        self.executor = executor
        self.failed = 0

    def run(
        self, plan: Plan, bindings: Optional[Mapping[object, object]] = None
    ) -> NamedTable:
        """Execute one plan (optionally rebound) through the shared state.

        Errors propagate to the caller; :meth:`run_plans` is the
        error-isolating batch surface.
        """
        if bindings:
            plan = substitute_constants(plan, bindings)
        return plan.execute(
            self.source,
            cache=self.cache,
            stats=self.stats,
            resilience=self.resilience,
            executor=self.executor,
        )

    def run_bindings(
        self, plan: Plan, bindings_list: Sequence[Mapping[object, object]]
    ) -> List[NamedTable]:
        """One plan over many parameter bindings (shared cache across runs)."""
        return [self.run(plan, bindings) for bindings in bindings_list]

    def run_plans(
        self, plans: Sequence[Plan], workers: Optional[int] = None
    ) -> List[BatchItem]:
        """Many plans over the shared source/cache, errors isolated.

        One failing plan no longer aborts the batch: each plan yields a
        :class:`BatchItem` carrying either its result table or the
        error it died with (any deliberate :class:`~repro.errors.
        ReproError` -- access faults, evaluation errors, expired
        deadlines).  Failures are tallied in :attr:`failed` and shown
        by :meth:`summary`.

        ``workers`` > 1 runs the batch through a temporary
        :class:`~repro.service.QueryService` pool over the *same*
        source and cache (the runtime is thread-safe), preserving item
        order and per-plan failure isolation; results are identical to
        the sequential default.  The batch dispatcher's retry policy,
        breakers and sleep carry over (each plan run gets its own
        forked counters); a batch-wide deadline does not -- deadlines
        are per-request in the service, so pass one per submit there
        instead.
        """
        if workers is not None and workers > 1 and len(plans) > 1:
            return self._run_plans_concurrent(plans, workers)
        items: List[BatchItem] = []
        for index, plan in enumerate(plans):
            try:
                table = self.run(plan)
            except ReproError as error:
                self.failed += 1
                items.append(
                    BatchItem(index=index, plan=plan.name, error=error)
                )
            else:
                items.append(
                    BatchItem(index=index, plan=plan.name, table=table)
                )
        return items

    def _run_plans_concurrent(
        self, plans: Sequence[Plan], workers: int
    ) -> List[BatchItem]:
        # Imported lazily: repro.service imports this module for
        # substitute_constants.
        from repro.service import QueryService

        dispatcher = self.resilience
        service = QueryService(
            self.source,
            workers=workers,
            max_queue=len(plans),
            cache=self.cache,
            retry=dispatcher.retry if dispatcher is not None else None,
            breakers=dispatcher.breakers if dispatcher is not None else None,
            sleep=dispatcher.sleep if dispatcher is not None else None,
            collect_stats=self.stats is not None,
            name="batch",
            executor=self.executor,
        )
        with service:
            tickets = [service.submit(plan) for plan in plans]
            responses = [ticket.result() for ticket in tickets]
        items: List[BatchItem] = []
        for index, (plan, response) in enumerate(zip(plans, responses)):
            if response.ok:
                items.append(
                    BatchItem(index=index, plan=plan.name, table=response.table)
                )
            else:
                self.failed += 1
                items.append(
                    BatchItem(index=index, plan=plan.name, error=response.error)
                )
        if self.stats is not None and service.stats is not None:
            self.stats.merge(service.stats)
        return items

    def summary(self) -> str:
        """Digest of the aggregated stats (and cache, when present)."""
        parts = []
        if self.stats is not None:
            parts.append(self.stats.summary())
        if self.cache is not None:
            parts.append(f"cache: {self.cache.summary()}")
        if self.failed:
            parts.append(f"{self.failed} plan run(s) FAILED")
        return "; ".join(parts) or "no instrumentation collected"
