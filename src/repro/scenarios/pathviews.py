"""Path views over web services (the Romero-Preda-Suchanek regime).

The query-rewriting-on-path-views setting (PAPERS.md): a mediator whose
only interfaces are *chains of id-to-id lookups* -- exactly the shape of
real web-service APIs (``getAlbum(id) -> songIds``,
``getSong(id) -> lyricsId``, ...).  Here that is a free ``Entry`` feed
plus ``Hop1 .. HopL`` binary relations, each accessible only with its
first position bound, and the query asks for the endpoints of the full
length-``L`` path.  Constraints say every hop's sources are fed by the
previous level, so the chase can prove the chain is answerable and plan
search recovers the left-to-right lookup cascade -- the plan the
adapter layer then executes over an actual (SQLite or HTTP-stub)
backend, one id-to-id request per hop per frontier node.

Sized by ``length`` (hops) and ``fanout``/``entries`` (data shape); the
generated data forms a forest, so answer counts grow geometrically with
``fanout`` -- useful for pagination and batching stress.
"""

from __future__ import annotations

import random

from repro.data.instance import Instance
from repro.logic.queries import cq
from repro.scenarios.examples import Scenario
from repro.schema.core import SchemaBuilder

MAX_LENGTH = 12  # keeps chase/search budgets sane


def path_views(
    length: int = 3,
    entries: int = 4,
    fanout: int = 2,
) -> Scenario:
    """A length-``length`` chain of id-to-id web-service lookups.

    Schema: ``Entry(id)`` with a free (cost 1) access plus binary
    ``Hop{i}(src, dst)`` relations, each with a single input-bound
    (cost 2) access on ``src``.  TGDs assert the chain is *covered*:
    every ``Hop1`` source is a known entry, and every ``Hop{i}`` source
    is reachable as a ``Hop{i-1}`` destination.  The query returns the
    (start, end) pairs of complete length-``length`` paths.
    """
    if not 1 <= length <= MAX_LENGTH:
        raise ValueError(f"length must be in 1..{MAX_LENGTH}, got {length}")
    if entries < 1 or fanout < 1:
        raise ValueError("entries and fanout must be at least 1")
    builder = SchemaBuilder(f"pathviews{length}")
    builder.relation("Entry", 1, ["id"])
    builder.access("mt_entry", "Entry", inputs=[], cost=1.0)
    for i in range(1, length + 1):
        builder.relation(f"Hop{i}", 2, ["src", "dst"])
        builder.access(f"mt_hop{i}", f"Hop{i}", inputs=[0], cost=2.0)
    builder.tgd("Hop1(x, y) -> Entry(x)")
    for i in range(2, length + 1):
        builder.tgd(f"Hop{i}(x, y) -> Hop{i - 1}(w, x)")
    schema = builder.build()

    variables = [f"?x{i}" for i in range(length + 1)]
    query = cq(
        [variables[0], variables[-1]],
        [("Entry", [variables[0]])]
        + [
            (f"Hop{i}", [variables[i - 1], variables[i]])
            for i in range(1, length + 1)
        ],
        name=f"Qpath{length}",
    )

    def make_instance(seed: int) -> Instance:
        """Generate a seeded forest of id-to-id hop chains."""
        rng = random.Random(seed)
        instance = Instance()
        frontier = []
        for e in range(entries):
            node = f"n0_{e}"
            instance.add("Entry", (node,))
            frontier.append(node)
        counter = 0
        for i in range(1, length + 1):
            next_frontier = []
            for node in frontier:
                # Some nodes dead-end (no outgoing hop) so partial
                # paths exist and the join genuinely filters.
                children = rng.randrange(fanout + 1) if i > 1 else fanout
                for _ in range(children):
                    child = f"n{i}_{counter}"
                    counter += 1
                    instance.add(f"Hop{i}", (node, child))
                    next_frontier.append(child)
            frontier = next_frontier
        return instance

    return Scenario(f"pathviews{length}", schema, query, make_instance)
