"""A bibliography web-services mediator (the PDQ line's motivating domain).

Four services, interfaces modelled on real bibliography providers:

* ``Articles(doi, title, venue)``     -- lookup requires a DOI,
* ``VenueListing(venue, doi)``        -- browsing a venue lists its DOIs
  (requires the venue name),
* ``Venues(venue)``                   -- a free registry of venue names,
* ``AuthorOf(doi, author)``           -- requires a DOI.

Constraints: every article's venue is registered and listed (the venue
listing covers the articles), and every article has at least one author.
The query joins all the way through: (title, author) pairs for articles
in some venue -- answerable only by the 4-hop chain
Venues -> VenueListing -> Articles -> AuthorOf.
"""

from __future__ import annotations

import random

from repro.data.instance import Instance
from repro.logic.queries import cq
from repro.scenarios.examples import Scenario
from repro.schema.core import SchemaBuilder


def webservices(
    venues: int = 4,
    articles_per_venue: int = 8,
    authors_per_article: int = 2,
) -> Scenario:
    """The bibliography mediator scenario, sized by its three knobs."""
    schema = (
        SchemaBuilder("biblio")
        .relation("Articles", 3, ["doi", "title", "venue"])
        .relation("VenueListing", 2, ["venue", "doi"])
        .relation("Venues", 1, ["venue"])
        .relation("AuthorOf", 2, ["doi", "author"])
        .access("mt_article", "Articles", inputs=[0], cost=2.0)
        .access("mt_listing", "VenueListing", inputs=[0], cost=3.0)
        .access("mt_venues", "Venues", inputs=[], cost=1.0)
        .access("mt_authors", "AuthorOf", inputs=[0], cost=2.0)
        .tgd("Articles(d, t, v) -> Venues(v)")
        .tgd("Articles(d, t, v) -> VenueListing(v, d)")
        .tgd("VenueListing(v, d) -> Articles(d, t, v2)")
        .tgd("Articles(d, t, v) -> AuthorOf(d, a)")
        .build()
    )
    query = cq(
        ["?t", "?a"],
        [
            ("Articles", ["?d", "?t", "?v"]),
            ("AuthorOf", ["?d", "?a"]),
        ],
        name="Qbib",
    )

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        rng = random.Random(seed)
        instance = Instance()
        for v in range(venues):
            venue = f"venue{v}"
            instance.add("Venues", (venue,))
            for j in range(articles_per_venue):
                doi = f"10.{v}/{j}"
                instance.add("Articles", (doi, f"title{v}_{j}", venue))
                instance.add("VenueListing", (venue, doi))
                for k in range(authors_per_article):
                    author = f"author{rng.randrange(venues * 3)}"
                    instance.add("AuthorOf", (doi, author))
        return instance

    return Scenario("webservices", schema, query, make_instance)
