"""Schema/query/data factories for the paper's Examples 1, 2, 4, 5.

The *data generators* produce instances that satisfy the scenario's
constraints, with tunable sizes and (for the cost scenarios) tunable
overlap between the redundant sources -- the knob the paper's discussion
of plan costs turns ("what percentage of the tuples in the two directory
tables match a result in Profinfo").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.data.instance import Instance
from repro.logic.queries import ConjunctiveQuery, cq
from repro.schema.core import Schema, SchemaBuilder


@dataclass
class Scenario:
    """A named schema + query + instance generator triple."""

    name: str
    schema: Schema
    query: ConjunctiveQuery
    make_instance: Callable[[int], Instance]

    def instance(self, seed: int = 0) -> Instance:
        """A seeded constraint-satisfying instance for this scenario."""
        return self.make_instance(seed)


# ------------------------------------------------------------- Example 1
def example1(
    professors: int = 50,
    directory_extra: int = 100,
    lastname: str = "smith",
) -> Scenario:
    """Example 1/4: Profinfo behind an eid-input access, free Udirect.

    ``Q`` asks for (eid, onum) of professors with the given last name;
    the plan must route through the university directory.
    """
    schema = (
        SchemaBuilder("example1")
        .relation("Profinfo", 3, ["eid", "onum", "lname"])
        .relation("Udirect", 2, ["eid", "lname"])
        .access("mt_prof", "Profinfo", inputs=[0], cost=2.0)
        .access("mt_udir", "Udirect", inputs=[], cost=1.0)
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .constant(lastname)
        .build()
    )
    query = cq(
        ["?eid", "?onum"],
        [("Profinfo", ["?eid", "?onum", lastname])],
        name="Q1",
    )

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        rng = random.Random(seed)
        instance = Instance()
        names = [lastname, "jones", "doe", "garcia", "chen"]
        for i in range(professors):
            name = names[i % len(names)]
            instance.add("Profinfo", (f"e{i}", f"o{i}", name))
            instance.add("Udirect", (f"e{i}", name))
        for j in range(directory_extra):
            instance.add(
                "Udirect", (f"x{j}", rng.choice(names))
            )
        return instance

    return Scenario("example1", schema, query, make_instance)


# ------------------------------------------------------------- Example 2
def example2(
    directory_size: int = 60,
    overlap: float = 1.0,
) -> Scenario:
    """Example 2: two telephone directories chained through Ids/Names.

    ``overlap`` is the fraction of Direct2 entries mirrored in Direct1
    (the schema's referential constraint requires 1.0 for valid
    instances; lower values are for negative testing).
    """
    schema = (
        SchemaBuilder("example2")
        .relation("Direct1", 3, ["uname", "addr", "uid"])
        .relation("Ids", 1, ["uid"])
        .relation("Direct2", 3, ["uname", "addr", "phone"])
        .relation("Names", 1, ["uname"])
        .access("mt_d1", "Direct1", inputs=[0, 2], cost=2.0)
        .access("mt_ids", "Ids", inputs=[], cost=1.0)
        .access("mt_d2", "Direct2", inputs=[0, 1], cost=2.0)
        .access("mt_names", "Names", inputs=[], cost=1.0)
        .tgd("Direct1(uname, addr, uid) -> Ids(uid)")
        .tgd("Direct2(uname, addr, phone) -> Names(uname)")
        .tgd("Direct2(uname, addr, phone) -> Direct1(uname, addr, uid)")
        .build()
    )
    query = cq(
        ["?phone"],
        [("Direct2", ["?uname", "?addr", "?phone"])],
        name="Q2",
    )

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        rng = random.Random(seed)
        instance = Instance()
        for i in range(directory_size):
            uname, addr = f"user{i}", f"addr{i}"
            uid, phone = f"uid{i}", f"555-{i:04d}"
            if rng.random() < overlap:
                instance.add("Direct2", (uname, addr, phone))
                instance.add("Names", (uname,))
            instance.add("Direct1", (uname, addr, uid))
            instance.add("Ids", (uid,))
        return instance

    return Scenario("example2", schema, query, make_instance)


# ------------------------------------------------------------- Example 5
def example5(
    sources: int = 3,
    source_costs: Optional[Sequence[float]] = None,
    profinfo_cost: float = 5.0,
    professors: int = 30,
    noise_per_source: int = 50,
    match_rate: float = 0.5,
) -> Scenario:
    """Example 5 / Figure 1: k redundant directory sources.

    Every professor appears in every ``Udirect_i`` (that is the
    referential constraint), each source additionally carrying noise
    entries; ``match_rate`` controls how many noise entries collide with
    professor ids, which is what makes source choice matter at runtime.
    """
    costs = list(
        source_costs
        if source_costs is not None
        else [float(i + 1) for i in range(sources)]
    )
    if len(costs) != sources:
        raise ValueError("one cost per source required")
    builder = (
        SchemaBuilder(f"example5_{sources}")
        .relation("Profinfo", 3, ["eid", "onum", "lname"])
        .access("mt_prof", "Profinfo", inputs=[0, 2], cost=profinfo_cost)
    )
    for i in range(1, sources + 1):
        builder.relation(f"Udirect{i}", 2, ["eid", "lname"])
        builder.access(
            f"mt_udirect{i}", f"Udirect{i}", inputs=[], cost=costs[i - 1]
        )
        builder.tgd(
            f"Profinfo(eid, onum, lname) -> Udirect{i}(eid, lname)"
        )
    schema = builder.build()
    query = cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Q5")

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        rng = random.Random(seed)
        instance = Instance()
        for p in range(professors):
            instance.add("Profinfo", (f"e{p}", f"o{p}", f"n{p}"))
            for i in range(1, sources + 1):
                instance.add(f"Udirect{i}", (f"e{p}", f"n{p}"))
        for i in range(1, sources + 1):
            for j in range(noise_per_source):
                if rng.random() < match_rate:
                    eid = f"e{rng.randrange(professors * 3)}"
                else:
                    eid = f"z{i}_{j}"
                instance.add(f"Udirect{i}", (eid, f"m{i}_{j}"))
        return instance

    return Scenario(f"example5[{sources}]", schema, query, make_instance)


# ------------------------------------------------- parameterized families
def redundant_sources(k: int, **kwargs) -> Scenario:
    """Example 5 generalized to k sources (benchmark family)."""
    return example5(sources=k, **kwargs)


def referential_chain(length: int, chain_size: int = 40) -> Scenario:
    """Example 2 generalized: a chain of L hops of referential constraints.

    Relations ``R0 .. R_L`` where ``R0`` is the queried (hidden-ish)
    relation; each ``R_i(key, val)`` requires its key as input, and a free
    unary ``K_i`` relation reveals each level's keys via a referential
    constraint.  Answering needs one access per level.
    """
    if length < 1:
        raise ValueError("chain length must be >= 1")
    builder = SchemaBuilder(f"chain{length}")
    last = length - 1
    for i in range(length):
        builder.relation(f"R{i}", 2, ["key", "val"])
        builder.access(f"mt_R{i}", f"R{i}", inputs=[0], cost=2.0)
    # Only the last level's keys are freely revealed; each level's key is
    # exposed as a value one level up.
    builder.relation(f"K{last}", 1, ["key"])
    builder.access(f"mt_K{last}", f"K{last}", inputs=[], cost=1.0)
    builder.tgd(f"R{last}(key, val) -> K{last}(key)")
    for i in range(length - 1):
        builder.tgd(f"R{i}(key, val) -> R{i+1}(key2, key)")
    schema = builder.build()
    query = cq(["?v"], [("R0", ["?k", "?v"])], name=f"Qchain{length}")

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        instance = Instance()
        for j in range(chain_size):
            for i in range(length):
                value = f"k{i-1}_{j}" if i else f"v{j}"
                instance.add(f"R{i}", (f"k{i}_{j}", value))
            instance.add(f"K{last}", (f"k{last}_{j}",))
        return instance

    return Scenario(f"chain[{length}]", schema, query, make_instance)
