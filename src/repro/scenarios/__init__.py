"""The paper's worked examples as reusable scenario factories.

Each scenario bundles a schema, a query, and a data generator, so tests,
examples and benchmarks all speak about "Example 1" / "Example 2" /
"Example 5" the same way.  Parameterized generalizations (k redundant
sources, chains of length L) feed the scaling benchmarks.
"""

from repro.scenarios.examples import (
    Scenario,
    example1,
    example2,
    example5,
    redundant_sources,
    referential_chain,
)
from repro.scenarios.pathviews import path_views
from repro.scenarios.viewsets import view_stack_scenario
from repro.scenarios.webservices import webservices

__all__ = [
    "Scenario",
    "example1",
    "example2",
    "example5",
    "path_views",
    "redundant_sources",
    "referential_chain",
    "view_stack_scenario",
    "webservices",
]
