"""View-stack scenarios for the Theorem 6 benchmarks.

A base star schema ``Fact(k, a, b)``, ``DimA(a, x)``, ``DimB(b, y)`` is
hidden; only views are accessible.  ``view_stack_scenario(n)`` creates n
join views plus one projection view per dimension, and a query that is
rewritable exactly when the needed combination of views exists.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.data.instance import Instance
from repro.logic.queries import ConjunctiveQuery, cq
from repro.planner.views import ViewDefinition, views_schema
from repro.scenarios.examples import Scenario
from repro.schema.core import Relation


def view_stack_scenario(
    views: int = 3,
    rows: int = 40,
    include_closing_view: bool = True,
) -> Scenario:
    """A hidden star schema exposed through a stack of views.

    With ``include_closing_view`` the final join view needed for the
    query exists and the query is rewritable; without it the rewriting
    attempt must fail -- benchmarks time both sides of the decision.
    """
    base = [
        Relation("Fact", 3, ("k", "a", "b")),
        Relation("DimA", 2, ("a", "x")),
        Relation("DimB", 2, ("b", "y")),
    ]
    definitions: List[ViewDefinition] = []
    # Decoy views: projections of Fact joined with DimA on varying shapes.
    for i in range(views):
        definitions.append(
            ViewDefinition(
                f"V{i}",
                cq(
                    ["?k", "?x"],
                    [
                        ("Fact", ["?k", "?a", f"?b{i}"]),
                        ("DimA", ["?a", "?x"]),
                    ],
                    name=f"defV{i}",
                ),
            )
        )
    if include_closing_view:
        definitions.append(
            ViewDefinition(
                "VFULL",
                cq(
                    ["?k", "?x", "?y"],
                    [
                        ("Fact", ["?k", "?a", "?b"]),
                        ("DimA", ["?a", "?x"]),
                        ("DimB", ["?b", "?y"]),
                    ],
                    name="defVFULL",
                ),
            )
        )
    schema = views_schema(base, definitions, name=f"views{views}")
    query = cq(
        ["?k", "?x", "?y"],
        [
            ("Fact", ["?k", "?a", "?b"]),
            ("DimA", ["?a", "?x"]),
            ("DimB", ["?b", "?y"]),
        ],
        name="Qstar",
    )

    def make_instance(seed: int) -> Instance:
        """Generate a seeded instance."""
        rng = random.Random(seed)
        instance = Instance()
        for r in range(rows):
            a, b = f"a{r % 7}", f"b{r % 5}"
            instance.add("Fact", (f"k{r}", a, b))
            instance.add("DimA", (a, f"x{r % 7}"))
            instance.add("DimB", (b, f"y{r % 5}"))
        # Materialize the views so view accesses return real data.
        for definition in definitions:
            for row in instance.evaluate(definition.definition):
                instance.add(definition.name, row)
        return instance

    return Scenario(f"views[{views}]", schema, query, make_instance)
