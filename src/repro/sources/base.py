"""The adapter layer's shared plumbing: protocol, epochs, defense.

Every backend in :mod:`repro.sources` speaks the same duck-typed
protocol the rest of the runtime already consumes -- ``schema``,
``access(method, inputs)``, a metered ``log`` -- captured here as
:class:`SourceAdapter` (a :class:`typing.Protocol`, so
:class:`~repro.data.source.InMemorySource` satisfies it unchanged).

Two additions make *real* backends safe to put behind the planner:

* **Epoch tokens.**  A backend that can reconnect or whose data can
  change underneath us must expose a monotone ``epoch()``; anything
  derived from its answers (the :class:`~repro.exec.cache.AccessCache`,
  a paginated result sequence) is valid only within one epoch.
  :func:`source_epoch` is the single reading point: it prefers
  ``epoch()``, falls back to ``instance.version`` (the in-memory
  sources' native token), and answers 0 for epoch-less sources --
  preserving the old cache behaviour exactly.

* **Defensive I/O wrappers.**  :class:`PacedSource` (client-side
  token-bucket pacing mapped to the existing
  :class:`~repro.errors.RateLimited`), :class:`AdaptiveConcurrencySource`
  (AIMD concurrency control per source) and :class:`CoalescingSource`
  (single-flight collapse of identical concurrent accesses) compose
  around any adapter the same way the :mod:`repro.data.decorators`
  wrappers do, and all three are spec-able so the process tier can
  rehydrate the full defensive stack per worker.

Batching: a backend that can answer several distinct input tuples in
one round trip exposes ``access_batch(method, inputs_list)``; the
access-command boundary dispatches through it when present.  Wrappers
deliberately *block* delegation of ``access_batch`` (class attribute
``None``) unless they implement it themselves -- otherwise a wrapper's
pacing/fault/metering logic would be silently bypassed by the batch
path reaching the inner source directly.
"""

from __future__ import annotations

import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # Protocol is typing-only; keep the runtime dependency soft.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover -- ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        """No-op stand-in when typing lacks runtime_checkable."""
        return cls


from repro.errors import RateLimited
from repro.logic.terms import Constant


@runtime_checkable
class SourceAdapter(Protocol):
    """The duck-typed contract every source backend satisfies.

    ``schema``
        the :class:`~repro.schema.core.Schema` whose access methods the
        adapter serves.
    ``access``
        invoke one method with values for all of its input positions;
        returns the matching relation tuples as a frozenset.
    ``log``
        the per-invocation metering log (a list of
        :class:`~repro.data.source.AccessRecord`).
    ``epoch``
        a monotone snapshot token; answers observed under different
        epochs must never be mixed (see :func:`source_epoch`).
    """

    schema: Any
    log: List[Any]

    def access(
        self, method_name: str, inputs: Sequence[object] = ()
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Invoke one access method with its bound input values."""
        ...

    def epoch(self) -> int:
        """The current monotone snapshot token."""
        ...


def source_epoch(source) -> int:
    """The source's current snapshot token, through any wrapper stack.

    Prefers a callable ``epoch()`` (the adapter protocol), falls back
    to ``instance.version`` (the in-memory sources), and answers 0 for
    sources with neither -- so epoch-less callers keep the exact
    pre-adapter cache semantics.  Wrappers delegate ``epoch`` via
    ``__getattr__``, so reading through a stack reaches the backend.
    """
    epoch = getattr(source, "epoch", None)
    if callable(epoch):
        return int(epoch())
    instance = getattr(source, "instance", None)
    if instance is not None:
        version = getattr(instance, "version", None)
        if version is not None:
            return int(version)
    return 0


class MeteredSourceMixin:
    """The metering helpers every backend shares.

    Subclasses provide ``self.log`` (a list of
    :class:`~repro.data.source.AccessRecord`), ``self._lock`` (held
    around log mutation) and ``self.schema``; the mixin derives the
    same metering surface :class:`~repro.data.source.InMemorySource`
    exposes, so benchmarks and the CLI treat every backend uniformly.
    """

    def reset_log(self) -> None:
        """Clear the access log and counters."""
        with self._lock:
            self.log.clear()

    @property
    def total_invocations(self) -> int:
        """Every logged call, including repeats."""
        return len(self.log)

    def _log_snapshot(self):
        """A point-in-time copy of the log, safe against appenders."""
        with self._lock:
            return tuple(self.log)

    def distinct_accesses(self):
        """The set of (method, inputs) pairs -- Theorem 8's measure."""
        return frozenset(
            (rec.method, rec.inputs) for rec in self._log_snapshot()
        )

    def invocations_of(self, method_name: str) -> int:
        """Logged invocation count for one method."""
        return sum(
            1 for rec in self._log_snapshot() if rec.method == method_name
        )

    def charged_cost(
        self, per_method: Optional[Dict[str, float]] = None
    ) -> float:
        """Total runtime cost: per-method weight (default: declared)."""
        total = 0.0
        for record in self._log_snapshot():
            if per_method is not None and record.method in per_method:
                total += per_method[record.method]
            else:
                total += self.schema.method(record.method).cost
        return total


# ----------------------------------------------------------- token buckets
class TokenBucket:
    """A thread-safe token bucket with an injectable clock.

    ``rate`` tokens refill per second up to ``capacity``.  The bucket
    never sleeps: :meth:`acquire` answers how long the caller must wait
    (0.0 when a token was granted immediately), so both the client-side
    pacer (which sleeps) and the server-side stub (which answers 429 +
    ``Retry-After``) share one implementation.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("token refill rate must be positive")
        if capacity < 1:
            raise ValueError("bucket capacity must be at least 1")
        self.rate = rate
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now if available; else the seconds to wait.

        Returns 0.0 when the tokens were granted.  A positive return
        means *nothing was taken* -- the caller should wait that long
        (or give up) and try again.
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self) -> float:
        """The current token count (after refill), for introspection."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


# ------------------------------------------------------ defensive wrappers
class _AdapterWrapper:
    """Delegate everything, intercept ``access``; block batch bypass."""

    #: Wrappers never silently expose the inner source's batch
    #: endpoint: delegation would route around the wrapper's own
    #: pacing/limiting/metering.  Wrappers that *can* batch safely
    #: override this with a real implementation.
    access_batch = None

    def __init__(self, inner) -> None:
        self.inner = inner

    @property
    def schema(self):
        """The wrapped source's schema."""
        return self.inner.schema

    def __getattr__(self, name):
        return getattr(self.inner, name)


class PacedSource(_AdapterWrapper):
    """Client-side token-bucket pacing in front of any source.

    A mediator that knows its backend's advertised call budget paces
    itself *below* it instead of slamming into server-side policing:
    each access first takes a token; when the bucket is dry the wrapper
    sleeps out the shortfall (up to ``max_wait`` seconds, injectable
    ``sleep``) and proceeds -- beyond that it refuses with the existing
    typed :class:`~repro.errors.RateLimited`, which the retry layer
    already knows how to back off from.  With the pacer matched to the
    server's budget the server observes *zero* over-budget requests
    (``benchmarks/bench_adapters.py`` asserts exactly that).
    """

    def __init__(
        self,
        inner,
        rate: float,
        capacity: float = 1.0,
        max_wait: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        super().__init__(inner)
        self.rate = rate
        self.capacity = capacity
        self.max_wait = max_wait
        self.bucket = TokenBucket(rate, capacity, clock=clock)
        self._sleep = sleep
        self._lock = threading.Lock()
        self.paced_waits = 0
        self.wait_seconds = 0.0
        self.refusals = 0

    def _pace(self, method_name: str, values: Tuple) -> None:
        wait = self.bucket.acquire()
        while wait > 0.0:
            if wait > self.max_wait:
                with self._lock:
                    self.refusals += 1
                raise RateLimited(
                    f"client-side pacer refused: bucket dry for "
                    f"{wait:.3f}s > max_wait {self.max_wait}s",
                    method=method_name,
                    inputs=values,
                )
            with self._lock:
                self.paced_waits += 1
                self.wait_seconds += wait
            self._sleep(wait)
            wait = self.bucket.acquire()

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        self._pace(method_name, tuple(inputs))
        return self.inner.access(method_name, inputs)

    def access_batch(self, method_name: str, inputs_list):
        """Batch through the pacer: one token per distinct input tuple."""
        for values in inputs_list:
            self._pace(method_name, tuple(values))
        inner_batch = getattr(self.inner, "access_batch", None)
        if callable(inner_batch):
            return inner_batch(method_name, inputs_list)
        return {
            tuple(values): self.inner.access(method_name, values)
            for values in inputs_list
        }


class AdaptiveConcurrencySource(_AdapterWrapper):
    """AIMD concurrency control per source, TCP style.

    The in-flight access count is gated by an adaptive limit: every
    success grows it additively (``increase / limit`` per call, i.e.
    +1 per round of ``limit`` successes), every backpressure signal --
    a typed :class:`~repro.errors.RateLimited` or
    :class:`~repro.errors.AccessTimeout` from below -- halves it
    (multiplicative decrease, floored at 1).  Callers over the limit
    block on a condition variable, so a misbehaving backend throttles
    the whole service *smoothly* instead of via an error storm.
    """

    def __init__(
        self,
        inner,
        max_concurrency: int = 32,
        initial: Optional[float] = None,
        increase: float = 1.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        super().__init__(inner)
        self.max_concurrency = max_concurrency
        self.increase = increase
        self._limit = float(
            min(max_concurrency, initial if initial is not None else 4.0)
        )
        self._inflight = 0
        self._cond = threading.Condition()
        self.throttle_events = 0
        self.peak_inflight = 0
        self.waits = 0

    @property
    def limit(self) -> float:
        """The current adaptive concurrency ceiling."""
        with self._cond:
            return self._limit

    def _enter(self) -> None:
        with self._cond:
            while self._inflight >= max(1, int(self._limit)):
                self.waits += 1
                self._cond.wait(timeout=1.0)
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)

    def _exit(self, backpressure: bool) -> None:
        with self._cond:
            self._inflight -= 1
            if backpressure:
                self._limit = max(1.0, self._limit / 2.0)
                self.throttle_events += 1
            else:
                self._limit = min(
                    float(self.max_concurrency),
                    self._limit + self.increase / max(1.0, self._limit),
                )
            self._cond.notify_all()

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        from repro.errors import AccessTimeout  # local: avoid fanout

        self._enter()
        try:
            result = self.inner.access(method_name, inputs)
        except (RateLimited, AccessTimeout):
            self._exit(backpressure=True)
            raise
        except BaseException:
            self._exit(backpressure=False)
            raise
        self._exit(backpressure=False)
        return result

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-able counters snapshot (used by the benchmarks)."""
        with self._cond:
            return {
                "limit": self._limit,
                "max_concurrency": self.max_concurrency,
                "throttle_events": self.throttle_events,
                "peak_inflight": self.peak_inflight,
                "waits": self.waits,
            }


class CoalescingSource(_AdapterWrapper):
    """Single-flight collapse of identical concurrent accesses.

    When several threads ask for the same ``(method, inputs)`` at the
    same moment, only the first reaches the backend; the rest wait on
    its completion and share the answer (sound: accesses are
    deterministic reads within an epoch).  Unlike
    :class:`~repro.exec.cache.AccessCache` nothing is *retained* --
    this is request coalescing at the I/O boundary, not memoization,
    so it composes under a cache without double-bookkeeping.  A waiter
    whose leader failed retries itself, so errors reach everyone who
    asked.
    """

    def __init__(self, inner) -> None:
        super().__init__(inner)
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple, "_Flight"] = {}
        self.coalesced = 0
        self.leaders = 0

    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke an access method (see the class docstring)."""
        key = (method_name, tuple(inputs))
        while True:
            with self._lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    self.leaders += 1
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if not flight.failed:
                with self._lock:
                    self.coalesced += 1
                return flight.result
            # Leader failed: fall through and try to lead ourselves.
        try:
            result = self.inner.access(method_name, inputs)
        except BaseException:
            with self._lock:
                flight.failed = True
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.result = result
        with self._lock:
            self._inflight.pop(key, None)
        flight.event.set()
        return result


class _Flight:
    """One in-progress access other threads can wait on."""

    __slots__ = ("event", "failed", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.failed = False
        self.result = None
