"""The SQLite-backed source adapter: relations as tables, typed cells.

:class:`SQLiteSource` is the first *real* backend behind the access
protocol: every relation becomes a table, every access method a
parameterized ``SELECT`` over the method's input positions, metered
exactly like :class:`~repro.data.source.InMemorySource` (one
:class:`~repro.data.source.AccessRecord` per invocation, identical
charged cost) -- so every existing benchmark, cache, breaker and
worker-tier component runs over it unchanged.

Cells are stored as canonical JSON text, not native SQLite types:
``Constant`` values span str/int/float/bool and SQLite's affinity
rules would silently collapse ``1`` and ``1.0`` (and ``True`` and
``1``), breaking the byte-identical differential contract against the
in-memory oracle.  JSON-encoding each cell keeps the round trip exact.

Connection lifecycle is defensive by construction:

* ``sqlite3.OperationalError`` (and a closed connection's
  ``ProgrammingError``) triggers **reconnect with capped exponential
  backoff**: the connection is rebuilt, tables are reloaded from the
  retained ground-truth :class:`~repro.data.instance.Instance`, and
  the statement is retried.  After ``max_reconnects`` consecutive
  failures the access raises typed
  :class:`~repro.errors.SourceUnavailable` -- retryable upstream.
* **Read-snapshot epochs**: :meth:`epoch` is ``instance.version``; a
  backend mutation bumps it, the next access reloads the tables, and
  everything derived from older answers (the
  :class:`~repro.exec.cache.AccessCache`) is invalidated by the epoch
  change.  A *reconnect without mutation* keeps the epoch -- the
  reloaded tables are provably the same snapshot, which is what makes
  answers byte-identical across mid-plan connection loss.

Chaos hooks: :meth:`sever_connection` kills the live connection (the
next statement walks the reconnect path) and ``drop_every=N`` severs
it automatically before every N-th statement -- a deterministic
flaky-server simulation the chaos matrix drives.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.instance import Instance, _to_constant
from repro.data.source import AccessRecord
from repro.errors import AccessViolation, SourceUnavailable
from repro.logic.terms import Constant
from repro.schema.core import AccessMethod, Schema
from repro.sources.base import MeteredSourceMixin

#: Errors that mean "the connection is gone", not "the query is wrong".
_CONNECTION_ERRORS = (sqlite3.OperationalError, sqlite3.ProgrammingError)


def _encode_cell(value) -> str:
    """One typed cell as canonical JSON text (exact round trip)."""
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


def _decode_cell(text: str) -> Constant:
    """Inverse of :func:`_encode_cell`."""
    return _to_constant(json.loads(text))


def _key_encodings(value) -> List[str]:
    """Every JSON text a lookup key must match in a WHERE clause.

    The oracle compares :class:`~repro.logic.terms.Constant` values by
    Python equality, under which ``1 == 1.0 == True`` -- but their JSON
    cell texts differ (``1`` / ``1.0`` / ``true``).  A parameterized
    lookup must therefore accept *every* spelling of a Python-equal
    value, or the differential contract breaks on mixed-type columns.
    """
    encodings = {_encode_cell(value)}
    if isinstance(value, (bool, int, float)):
        try:
            twins = (bool(value), int(value), float(value))
        except (ValueError, OverflowError):  # inf/nan have no int twin
            twins = ()
        for twin in twins:
            if twin == value:
                encodings.add(_encode_cell(twin))
    return sorted(encodings)


class SQLiteSource(MeteredSourceMixin):
    """An instance served through SQLite, behind the access protocol."""

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        path: str = ":memory:",
        max_reconnects: int = 4,
        backoff: float = 0.01,
        max_backoff: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        drop_every: Optional[int] = None,
    ) -> None:
        if max_reconnects < 0:
            raise ValueError("max_reconnects must be non-negative")
        if drop_every is not None and drop_every < 1:
            raise ValueError("drop_every must be at least 1")
        self.schema = schema
        self.instance = instance
        self.path = path
        self.max_reconnects = max_reconnects
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.drop_every = drop_every
        self._sleep = sleep
        self.log: List[AccessRecord] = []
        #: Reconnects performed over the source's lifetime (surfaced by
        #: the adapter benchmark's resilience accounting).
        self.reconnects = 0
        #: Batched round trips answered via :meth:`access_batch`.
        self.batched_calls = 0
        self._statements = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._loaded_version: Optional[int] = None
        # One lock for connection + log: sqlite3 connections are not
        # concurrency-safe, and the source sits under a multi-threaded
        # QueryService -- statements serialize, waits overlap upstream.
        self._lock = threading.RLock()
        self._connect()

    # ------------------------------------------------------------- epochs
    def epoch(self) -> int:
        """The read-snapshot token: the ground-truth instance version.

        Stable across reconnects (a reconnect reloads the *same*
        snapshot), bumped by backend mutations -- exactly the monotone
        token the :class:`~repro.exec.cache.AccessCache` keys
        invalidation on.
        """
        return self.instance.version

    # -------------------------------------------------- connection lifecycle
    def _connect(self) -> None:
        """(Re)open the connection and load the current snapshot."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except Exception:  # pragma: no cover -- already dead
                    pass
            # check_same_thread=False: the source serializes statements
            # under its own lock, so cross-thread use is safe.
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False
            )
            self._load_tables()

    def _load_tables(self) -> None:
        """Materialize every relation into its table; caller holds lock."""
        conn = self._conn
        for relation in self.schema.relations:
            arity = relation.arity
            columns = ", ".join(f"c{i} TEXT" for i in range(arity))
            conn.execute(f'DROP TABLE IF EXISTS "{relation.name}"')
            conn.execute(f'CREATE TABLE "{relation.name}" ({columns})')
            rows = [
                tuple(_encode_cell(cell.value) for cell in row)
                for row in self.instance.tuples(relation.name)
            ]
            if rows:
                marks = ", ".join("?" for _ in range(arity))
                conn.executemany(
                    f'INSERT INTO "{relation.name}" VALUES ({marks})',
                    rows,
                )
        conn.commit()
        self._loaded_version = self.instance.version

    def sever_connection(self) -> None:
        """Chaos hook: kill the live connection (next statement reconnects)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()

    def _execute(self, sql: str, params: Sequence[str]) -> List[Tuple]:
        """Run one statement with reconnect-on-error backoff.

        The whole check-snapshot / maybe-drop / execute sequence runs
        under the source lock.  A connection-level failure reconnects
        (reloading the retained snapshot) with capped exponential
        backoff; after ``max_reconnects`` consecutive failures the
        access surfaces as typed :class:`SourceUnavailable`.
        """
        with self._lock:
            if self.instance.version != self._loaded_version:
                # Backend mutation: reload so this epoch's accesses
                # answer from the new snapshot, never a mix.
                self._connect()
            self._statements += 1
            if (
                self.drop_every is not None
                and self._statements % self.drop_every == 0
            ):
                self.sever_connection()
            last_error: Optional[Exception] = None
            for attempt in range(self.max_reconnects + 1):
                try:
                    cursor = self._conn.execute(sql, tuple(params))
                    return cursor.fetchall()
                except _CONNECTION_ERRORS as error:
                    last_error = error
                    if attempt >= self.max_reconnects:
                        break
                    self._sleep(
                        min(self.max_backoff, self.backoff * 2**attempt)
                    )
                    self.reconnects += 1
                    self._connect()
            raise SourceUnavailable(
                f"sqlite backend unreachable after "
                f"{self.max_reconnects} reconnect attempts: {last_error}",
            )

    def close(self) -> None:
        """Release the connection (the source can reconnect on demand)."""
        self.sever_connection()

    # ------------------------------------------------------------- access
    def _check_method(
        self, method_name: str, inputs: Sequence[object]
    ) -> Tuple[AccessMethod, Tuple[Constant, ...]]:
        method = self.schema.method(method_name)
        values = tuple(_to_constant(v) for v in inputs)
        if len(values) != len(method.input_positions):
            raise AccessViolation(
                f"method {method_name} needs "
                f"{len(method.input_positions)} inputs, got {len(values)}",
                method=method_name,
                relation=method.relation,
                inputs=values,
            )
        return method, values

    def _select(
        self, method: AccessMethod, values: Tuple[Constant, ...]
    ) -> FrozenSet[Tuple[Constant, ...]]:
        clauses = []
        params: List[str] = []
        for position, value in zip(method.input_positions, values):
            encodings = _key_encodings(value.value)
            marks = ", ".join("?" for _ in encodings)
            clauses.append(f"c{position} IN ({marks})")
            params.extend(encodings)
        sql = f'SELECT * FROM "{method.relation}"'
        if clauses:
            sql += f" WHERE {' AND '.join(clauses)}"
        return frozenset(
            tuple(_decode_cell(cell) for cell in row)
            for row in self._execute(sql, params)
        )

    def access(
        self, method_name: str, inputs: Sequence[object] = ()
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Invoke a method: a parameterized SELECT over its relation."""
        method, values = self._check_method(method_name, inputs)
        matching = self._select(method, values)
        with self._lock:
            self.log.append(
                AccessRecord(
                    method=method_name,
                    relation=method.relation,
                    inputs=values,
                    results=len(matching),
                )
            )
        return matching

    def access_batch(
        self, method_name: str, inputs_list: Sequence[Sequence[object]]
    ) -> Dict[Tuple[Constant, ...], FrozenSet[Tuple[Constant, ...]]]:
        """Answer several distinct input tuples in one round trip.

        Single-input methods use one ``IN``-list SELECT; wider methods
        fall back to per-key SELECTs inside one lock hold.  Metering is
        per *logical access* either way -- one record per input tuple,
        identical to the per-key loop -- so batching changes round
        trips, never the books.
        """
        method = self.schema.method(method_name)
        keyed = [self._check_method(method_name, v)[1] for v in inputs_list]
        results: Dict[Tuple[Constant, ...], FrozenSet] = {}
        with self._lock:
            self.batched_calls += 1
            if len(method.input_positions) == 1 and keyed:
                position = method.input_positions[0]
                params = [
                    text
                    for values in keyed
                    for text in _key_encodings(values[0].value)
                ]
                marks = ", ".join("?" for _ in params)
                rows = self._execute(
                    f'SELECT * FROM "{method.relation}" '
                    f"WHERE c{position} IN ({marks})",
                    params,
                )
                decoded = [
                    tuple(_decode_cell(cell) for cell in row)
                    for row in rows
                ]
                for values in keyed:
                    results[values] = frozenset(
                        row for row in decoded if row[position] == values[0]
                    )
            else:
                for values in keyed:
                    results[values] = self._select(method, values)
            for values in keyed:
                self.log.append(
                    AccessRecord(
                        method=method_name,
                        relation=method.relation,
                        inputs=values,
                        results=len(results[values]),
                    )
                )
        return results

    def __repr__(self) -> str:
        return (
            f"SQLiteSource({self.schema.name}, {self.path!r}, "
            f"{len(self.log)} accesses, {self.reconnects} reconnects)"
        )
