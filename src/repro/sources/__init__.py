"""Real-backend source adapters behind the standard access protocol.

The in-memory sources in :mod:`repro.data` are the oracle; this package
holds the adapters that serve the same schema/access contract from
backends that can actually disconnect, throttle and paginate --
:class:`SQLiteSource` (relations as tables) and :class:`HTTPSource` (a
web-service client over a pluggable transport) -- plus the shared
defensive I/O layer (:class:`PacedSource`,
:class:`AdaptiveConcurrencySource`, :class:`CoalescingSource`) and the
epoch-token machinery (:func:`source_epoch`) that keeps caches and
answers snapshot-consistent across reconnects and backend mutations.
"""

from repro.sources.base import (
    AdaptiveConcurrencySource,
    CoalescingSource,
    MeteredSourceMixin,
    PacedSource,
    SourceAdapter,
    TokenBucket,
    source_epoch,
)
from repro.sources.http import (
    EPOCH_HEADER,
    HTTPSource,
    StubResponse,
    StubTransport,
    TransportTimeout,
)
from repro.sources.sqlite import SQLiteSource

__all__ = [
    "AdaptiveConcurrencySource",
    "CoalescingSource",
    "EPOCH_HEADER",
    "HTTPSource",
    "MeteredSourceMixin",
    "PacedSource",
    "SQLiteSource",
    "SourceAdapter",
    "StubResponse",
    "StubTransport",
    "TokenBucket",
    "TransportTimeout",
    "source_epoch",
]
