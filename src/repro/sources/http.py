"""An HTTP-style web-service source over a pluggable stub transport.

The paper's mediator setting is plans over *web services*: slow,
paginated, rate-limited interfaces that answer one bound lookup per
request.  :class:`HTTPSource` models exactly that behind the standard
access protocol, speaking a small request/response vocabulary to a
pluggable transport.  :class:`StubTransport` is the in-process
reference transport -- a deterministic simulation of a web service:

* ``GET /access/{method}`` -- one lookup; paginated (``page`` /
  ``next_page``), every response stamped with an ``X-Source-Epoch``
  header (the backend's snapshot token);
* ``POST /batch/{method}`` -- several distinct lookups in one round
  trip (what the access-boundary batching dispatches into);
* a server-side token bucket: an over-budget request is answered
  ``429`` with a ``Retry-After`` header (and counted -- the adapter
  benchmark's rate-limit-compliance metric is "the server saw zero of
  these" when the client paces itself);
* a seeded :class:`~repro.faults.policy.FaultPolicy` drives ``500``
  responses and simulated timeouts with the same burst semantics the
  fault wrapper has, so retries deterministically reach the answer;
* per-request latency charged on an injectable sleep.

:class:`HTTPSource` is the defensive client: it honours ``Retry-After``
(bounded patience, then typed :class:`~repro.errors.RateLimited`),
maps ``5xx``/timeouts to the existing typed transient errors (so the
retry/breaker stack upstream needs no changes), follows pagination --
and **restarts the page sequence from scratch when the epoch header
changes mid-sequence** (counted in ``snapshot_restarts``): rows from
two different backend snapshots are never mixed into one answer,
which is the source-level half of the epoch consistency model
(docs/theory.md, "Adapter consistency").
"""

from __future__ import annotations

import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.instance import Instance, _to_constant
from repro.data.source import AccessRecord
from repro.errors import (
    AccessTimeout,
    AccessViolation,
    RateLimited,
    SourceUnavailable,
)
from repro.faults.policy import (
    KIND_RATE_LIMIT,
    KIND_TIMEOUT,
    KIND_UNAVAILABLE,
    FaultPolicy,
)
from repro.logic.terms import Constant
from repro.schema.core import Schema
from repro.sources.base import MeteredSourceMixin, TokenBucket

#: The epoch header every stub response carries.
EPOCH_HEADER = "X-Source-Epoch"


class TransportTimeout(Exception):
    """The transport-level timeout (mapped to typed AccessTimeout)."""


class StubResponse:
    """One transport response: status, headers, JSON payload."""

    __slots__ = ("status", "headers", "payload")

    def __init__(
        self,
        status: int,
        payload: Optional[Mapping[str, Any]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.status = status
        self.payload = dict(payload or {})
        self.headers = dict(headers or {})


class StubTransport:
    """A deterministic in-process web service over an instance.

    Everything a real service would do to you -- latency, pagination,
    rate policing, 5xx bursts, timeouts -- driven by plain constructor
    config, so the whole transport is spec-able and a worker process
    can rehydrate an identical one (:meth:`spec_config`).
    """

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        latency: float = 0.0,
        page_size: Optional[int] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        fault_policy: Optional[FaultPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if page_size is not None and page_size < 1:
            raise ValueError("page_size must be at least 1")
        self.schema = schema
        self.instance = instance
        self.latency = latency
        self.page_size = page_size
        self.rate_limit = rate_limit
        self.burst = burst
        self.fault_policy = fault_policy
        self._sleep = sleep
        self._bucket = (
            TokenBucket(
                rate_limit,
                burst if burst is not None else max(1.0, rate_limit),
                clock=clock,
            )
            if rate_limit is not None
            else None
        )
        self._lock = threading.Lock()
        self._attempts: Dict[Tuple[str, Tuple], int] = {}
        self.requests = 0
        #: Requests that arrived while the server bucket was dry (the
        #: 429s).  A well-paced client keeps this at zero.
        self.over_budget = 0
        self.faults_injected = 0
        self.timeouts_injected = 0

    def spec_config(self) -> Dict[str, Any]:
        """The plain config a worker needs to rebuild this transport."""
        policy = self.fault_policy
        return {
            "latency": self.latency,
            "page_size": self.page_size,
            "rate_limit": self.rate_limit,
            "burst": self.burst,
            "fault_policy": None
            if policy is None
            else {
                "seed": policy.seed,
                "unavailable_rate": policy.unavailable_rate,
                "timeout_rate": policy.timeout_rate,
                "rate_limit_rate": policy.rate_limit_rate,
                "truncation_rate": policy.truncation_rate,
                "burst": policy.burst,
                "truncation_keep": policy.truncation_keep,
                "latency": policy.latency,
                "outages": dict(policy.outages),
            },
        }

    def epoch(self) -> int:
        """The backend snapshot token stamped into every response."""
        return self.instance.version

    def counters(self) -> Dict[str, int]:
        """A JSON-able server-side accounting snapshot."""
        with self._lock:
            return {
                "requests": self.requests,
                "over_budget": self.over_budget,
                "faults_injected": self.faults_injected,
                "timeouts_injected": self.timeouts_injected,
            }

    # ---------------------------------------------------------- the server
    def request(
        self, verb: str, path: str, params: Mapping[str, Any]
    ) -> StubResponse:
        """Serve one request; may raise :class:`TransportTimeout`."""
        with self._lock:
            self.requests += 1
        if self._bucket is not None:
            wait = self._bucket.acquire()
            if wait > 0.0:
                with self._lock:
                    self.over_budget += 1
                return StubResponse(
                    429,
                    {"error": "rate limit exceeded"},
                    {
                        "Retry-After": f"{wait:.4f}",
                        EPOCH_HEADER: str(self.epoch()),
                    },
                )
        if self.latency:
            self._sleep(self.latency)
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] not in ("access", "batch"):
            return StubResponse(404, {"error": f"no such endpoint {path}"})
        endpoint, method_name = parts
        try:
            method = self.schema.method(method_name)
        except Exception:
            return StubResponse(404, {"error": f"no such method {method_name}"})
        if endpoint == "batch":
            return self._serve_batch(method, params)
        return self._serve_access(method, params)

    def _maybe_fault(self, method_name: str, values: Tuple) -> Optional[StubResponse]:
        """Consult the fault schedule; burst semantics per access key."""
        policy = self.fault_policy
        if policy is None:
            return None
        key = (method_name, values)
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
        kind = policy.kind_for(method_name, values)
        if kind is None or attempt >= policy.burst:
            return None
        if kind == KIND_TIMEOUT:
            with self._lock:
                self.timeouts_injected += 1
            raise TransportTimeout(
                f"simulated timeout for {method_name}{values!r} "
                f"(attempt {attempt})"
            )
        if kind in (KIND_UNAVAILABLE, KIND_RATE_LIMIT):
            with self._lock:
                self.faults_injected += 1
            if kind == KIND_RATE_LIMIT:
                return StubResponse(
                    429,
                    {"error": "scheduled throttle"},
                    {"Retry-After": "0.001", EPOCH_HEADER: str(self.epoch())},
                )
            return StubResponse(
                500,
                {"error": f"injected 5xx (attempt {attempt})"},
                {EPOCH_HEADER: str(self.epoch())},
            )
        return None  # truncation is not modelled at the transport

    def _rows_for(
        self, method, values: Tuple[Constant, ...]
    ) -> List[List[Any]]:
        """Matching rows as raw JSON values, deterministically sorted."""
        rows = sorted(
            tuple(cell.value for cell in row)
            for row in self.instance.tuples(method.relation)
            if all(
                row[position] == value
                for position, value in zip(method.input_positions, values)
            )
        )
        return [list(row) for row in rows]

    def _serve_access(self, method, params: Mapping[str, Any]) -> StubResponse:
        raw_inputs = tuple(params.get("inputs", ()))
        values = tuple(_to_constant(v) for v in raw_inputs)
        fault = self._maybe_fault(method.name, values)
        if fault is not None:
            return fault
        epoch = self.epoch()
        rows = self._rows_for(method, values)
        page = int(params.get("page", 0))
        next_page: Optional[int] = None
        if self.page_size is not None:
            start = page * self.page_size
            window = rows[start : start + self.page_size]
            if start + self.page_size < len(rows):
                next_page = page + 1
            rows = window
        return StubResponse(
            200,
            {"rows": rows, "next_page": next_page},
            {EPOCH_HEADER: str(epoch)},
        )

    def _serve_batch(self, method, params: Mapping[str, Any]) -> StubResponse:
        """Several lookups, one round trip, no pagination (bounded)."""
        epoch = self.epoch()
        results = []
        for raw_inputs in params.get("inputs_list", ()):
            values = tuple(_to_constant(v) for v in raw_inputs)
            fault = self._maybe_fault(method.name, values)
            if fault is not None:
                # One faulty key fails the whole batch -- that is what
                # a real bulk endpoint does, and the client falls back
                # to per-key requests where the burst drains per key.
                return fault
            results.append(
                {"inputs": list(raw_inputs), "rows": self._rows_for(method, values)}
            )
        return StubResponse(
            200, {"results": results}, {EPOCH_HEADER: str(epoch)}
        )


class HTTPSource(MeteredSourceMixin):
    """The defensive web-service client behind the access protocol."""

    def __init__(
        self,
        transport,
        max_retry_after_waits: int = 8,
        max_snapshot_restarts: int = 8,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retry_after_waits < 0:
            raise ValueError("max_retry_after_waits must be non-negative")
        self.transport = transport
        self.max_retry_after_waits = max_retry_after_waits
        self.max_snapshot_restarts = max_snapshot_restarts
        self._sleep = sleep
        self.log: List[AccessRecord] = []
        self._lock = threading.RLock()
        #: Retry-After waits honoured (client-side politeness).
        self.retry_after_waits = 0
        #: Pagination sequences restarted because the backend epoch
        #: changed mid-sequence -- the never-mix-snapshots counter.
        self.snapshot_restarts = 0
        self.batched_calls = 0
        self._last_epoch: Optional[int] = None

    @property
    def schema(self):
        """The served schema (the transport's)."""
        return self.transport.schema

    @property
    def instance(self):
        """The backend's ground-truth instance (degraded serving reads it)."""
        return self.transport.instance

    def epoch(self) -> int:
        """The last epoch token observed from the backend."""
        with self._lock:
            if self._last_epoch is not None:
                return self._last_epoch
        return int(self.transport.epoch())

    def _note_epoch(self, response: StubResponse) -> Optional[int]:
        header = response.headers.get(EPOCH_HEADER)
        if header is None:
            return None
        epoch = int(header)
        with self._lock:
            self._last_epoch = epoch
        return epoch

    # ------------------------------------------------------- one round trip
    def _request(
        self,
        verb: str,
        path: str,
        params: Mapping[str, Any],
        method_name: str,
        values: Tuple[Constant, ...],
    ) -> StubResponse:
        """One transport request with Retry-After honoured, errors typed."""
        waits = 0
        while True:
            try:
                response = self.transport.request(verb, path, params)
            except TransportTimeout as error:
                raise AccessTimeout(
                    f"web service timed out: {error}",
                    method=method_name,
                    inputs=values,
                ) from error
            self._note_epoch(response)
            if response.status == 429:
                retry_after = float(response.headers.get("Retry-After", 0.05))
                if waits >= self.max_retry_after_waits:
                    raise RateLimited(
                        f"rate limited and out of patience after {waits} "
                        f"Retry-After waits",
                        method=method_name,
                        inputs=values,
                    )
                waits += 1
                with self._lock:
                    self.retry_after_waits += 1
                self._sleep(retry_after)
                continue
            if response.status >= 500:
                raise SourceUnavailable(
                    f"web service answered {response.status}: "
                    f"{response.payload.get('error', '')}",
                    method=method_name,
                    inputs=values,
                )
            if response.status != 200:
                raise AccessViolation(
                    f"web service answered {response.status}: "
                    f"{response.payload.get('error', '')}",
                    method=method_name,
                    inputs=values,
                )
            return response

    def _paginate(
        self, method_name: str, values: Tuple[Constant, ...]
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Follow the page chain; restart if the epoch moves mid-sequence.

        An answer assembled from pages of two different backend
        snapshots could contain row combinations no snapshot ever
        held; the restart (bounded by ``max_snapshot_restarts``, then
        typed :class:`SourceUnavailable`) guarantees every returned
        answer is a pure single-epoch read.
        """
        raw_inputs = [v.value for v in values]
        restarts = 0
        while True:
            rows: List[Tuple[Constant, ...]] = []
            page: Optional[int] = 0
            sequence_epoch: Optional[int] = None
            restarted = False
            while page is not None:
                response = self._request(
                    "GET",
                    f"/access/{method_name}",
                    {"inputs": raw_inputs, "page": page},
                    method_name,
                    values,
                )
                epoch = self._note_epoch(response)
                if sequence_epoch is None:
                    sequence_epoch = epoch
                elif epoch is not None and epoch != sequence_epoch:
                    with self._lock:
                        self.snapshot_restarts += 1
                    restarts += 1
                    restarted = True
                    break
                rows.extend(
                    tuple(_to_constant(cell) for cell in row)
                    for row in response.payload.get("rows", ())
                )
                page = response.payload.get("next_page")
            if not restarted:
                return frozenset(rows)
            if restarts > self.max_snapshot_restarts:
                raise SourceUnavailable(
                    f"backend snapshot kept moving: {restarts} pagination "
                    "restarts without a stable epoch",
                    method=method_name,
                    inputs=values,
                )

    # ------------------------------------------------------------- access
    def access(
        self, method_name: str, inputs: Sequence[object] = ()
    ) -> FrozenSet[Tuple[Constant, ...]]:
        """Invoke a method as a (paginated) web-service lookup."""
        method = self.schema.method(method_name)
        values = tuple(_to_constant(v) for v in inputs)
        if len(values) != len(method.input_positions):
            raise AccessViolation(
                f"method {method_name} needs "
                f"{len(method.input_positions)} inputs, got {len(values)}",
                method=method_name,
                relation=method.relation,
                inputs=values,
            )
        matching = self._paginate(method_name, values)
        with self._lock:
            self.log.append(
                AccessRecord(
                    method=method_name,
                    relation=method.relation,
                    inputs=values,
                    results=len(matching),
                )
            )
        return matching

    def access_batch(
        self, method_name: str, inputs_list: Sequence[Sequence[object]]
    ) -> Dict[Tuple[Constant, ...], FrozenSet[Tuple[Constant, ...]]]:
        """Several lookups through the bulk endpoint, one round trip.

        A batch the server faults on falls back to per-key accesses
        (where bursts drain per key); metering is one record per
        logical access either way.
        """
        method = self.schema.method(method_name)
        keyed = [
            tuple(_to_constant(v) for v in inputs) for inputs in inputs_list
        ]
        with self._lock:
            self.batched_calls += 1
        try:
            response = self._request(
                "POST",
                f"/batch/{method_name}",
                {"inputs_list": [[v.value for v in k] for k in keyed]},
                method_name,
                keyed[0] if keyed else (),
            )
        except (SourceUnavailable, AccessTimeout, RateLimited):
            return {
                values: self.access(method_name, values) for values in keyed
            }
        results: Dict[Tuple[Constant, ...], FrozenSet] = {}
        by_key = {
            tuple(_to_constant(v) for v in entry["inputs"]): entry["rows"]
            for entry in response.payload.get("results", ())
        }
        with self._lock:
            for values in keyed:
                rows = frozenset(
                    tuple(_to_constant(cell) for cell in row)
                    for row in by_key.get(values, ())
                )
                results[values] = rows
                self.log.append(
                    AccessRecord(
                        method=method_name,
                        relation=method.relation,
                        inputs=values,
                        results=len(rows),
                    )
                )
        return results

    def __repr__(self) -> str:
        return (
            f"HTTPSource({self.schema.name}, {len(self.log)} accesses, "
            f"{self.retry_after_waits} retry-after waits, "
            f"{self.snapshot_restarts} snapshot restarts)"
        )
