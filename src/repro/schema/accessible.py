"""The accessible-schema constructions of Section 3.

Given a schema ``S0``, the accessible schema ``AcSch(S0)`` axiomatizes what
a querier can learn through the access methods:

* a copy ``Accessed_R`` of every relation ``R`` (facts explicitly retrieved
  through some access),
* a unary relation ``_accessible`` (values returned by some access, seeded
  with the schema constants),
* a copy ``InfAcc_R`` of every relation (facts *derivable* from accessed
  facts using the integrity constraints),

with the axiom groups:

* defining axioms      ``Accessed_R(x) -> _accessible(x_i)``,
* accessibility axioms ``_accessible(x_j1) & ... & R(x) -> Accessed_R(x)``
  (one per access method -- firing one of these is "making an access" and
  is the only costed step in proofs),
* inferred-accessible rules ``Accessed_R(x) -> InfAcc_R(x)`` plus a copy of
  every original constraint over the ``InfAcc_`` relations.

``AcSch<->`` (Theorem 2, RA-plans) adds the reverse inclusion
``Accessed_R(x) -> R(x)`` and, per method, the *negative accessibility*
axioms ``_accessible(x_ji..) & InfAcc_R(x) -> Accessed_R(x)``.

``AcSch-neg`` (Theorem 3, USPJ-with-atomic-negation plans) is ``AcSch``
plus the reverse inclusion and the negative axioms restricted to require
*every* position accessible (the contrapositive TGD form of the paper's
``accessible(x_i).. & not R(x) -> not InfAcc_R(x)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.schema.core import AccessMethod, Relation, Schema, SchemaError

ACCESSED_PREFIX = "Accessed_"
INFACC_PREFIX = "InfAcc_"
ACCESSIBLE = "_accessible"


def accessed_name(relation: str) -> str:
    """Name of the accessed copy of a relation."""
    return ACCESSED_PREFIX + relation


def infacc_name(relation: str) -> str:
    """Name of the inferred-accessible copy of a relation."""
    return INFACC_PREFIX + relation


def is_accessed_name(name: str) -> bool:
    """Whether a relation name is an ``Accessed_`` copy."""
    return name.startswith(ACCESSED_PREFIX)


def is_infacc_name(name: str) -> bool:
    """Whether a relation name is an ``InfAcc_`` copy."""
    return name.startswith(INFACC_PREFIX)


def original_name(name: str) -> str:
    """Strip an ``Accessed_``/``InfAcc_`` prefix, if present."""
    if name.startswith(ACCESSED_PREFIX):
        return name[len(ACCESSED_PREFIX):]
    if name.startswith(INFACC_PREFIX):
        return name[len(INFACC_PREFIX):]
    return name


class AxiomKind(enum.Enum):
    """The role a rule plays inside an accessible schema."""

    ORIGINAL = "original"
    INFACC_COPY = "infacc-copy"
    DEFINING = "defining"
    ACCESSED_TO_INFACC = "accessed-to-infacc"
    ACCESSIBILITY = "accessibility"
    REVERSE_INCLUSION = "reverse-inclusion"
    NEGATIVE_ACCESSIBILITY = "negative-accessibility"


class Variant(enum.Enum):
    """Which of the paper's three axiom systems to build."""

    FORWARD = "AcSch"
    BIDIRECTIONAL = "AcSch<->"
    NEGATIVE = "AcSch-neg"


@dataclass(frozen=True)
class ChaseRule:
    """A TGD tagged with its role and (for access axioms) its method."""

    tgd: TGD
    kind: AxiomKind
    method: Optional[AccessMethod] = None

    @property
    def is_access(self) -> bool:
        """True for the rules whose firing corresponds to a plan command."""
        return self.kind in (
            AxiomKind.ACCESSIBILITY,
            AxiomKind.NEGATIVE_ACCESSIBILITY,
        )

    def __repr__(self) -> str:
        return f"<{self.kind.value}> {self.tgd!r}"


class AccessibleSchema:
    """An accessible schema: the base schema plus one axiom system."""

    def __init__(self, schema: Schema, variant: Variant = Variant.FORWARD):
        self.schema = schema
        self.variant = variant
        self.rules: Tuple[ChaseRule, ...] = tuple(_build_rules(schema, variant))

    @property
    def free_rules(self) -> Tuple[ChaseRule, ...]:
        """Rules fired eagerly at no cost (everything but access axioms)."""
        return tuple(r for r in self.rules if not r.is_access)

    @property
    def access_rules(self) -> Tuple[ChaseRule, ...]:
        """Rules whose firing represents making an access."""
        return tuple(r for r in self.rules if r.is_access)

    def access_rule_for(
        self, method_name: str, negative: bool = False
    ) -> ChaseRule:
        """The (negative) accessibility axiom generated for one method."""
        wanted = (
            AxiomKind.NEGATIVE_ACCESSIBILITY
            if negative
            else AxiomKind.ACCESSIBILITY
        )
        for rule in self.rules:
            if (
                rule.kind is wanted
                and rule.method is not None
                and rule.method.name == method_name
            ):
                return rule
        raise SchemaError(
            f"no {'negative ' if negative else ''}accessibility axiom "
            f"for method {method_name}"
        )

    def initial_accessible_facts(self) -> Tuple[Atom, ...]:
        """``_accessible(c)`` for every schema constant c."""
        return tuple(
            Atom(ACCESSIBLE, (constant,))
            for constant in self.schema.constants
        )

    def __repr__(self) -> str:
        return (
            f"AccessibleSchema({self.variant.value} over "
            f"{self.schema.name}: {len(self.rules)} rules)"
        )


def accessible_schema(
    schema: Schema, variant: Variant = Variant.FORWARD
) -> AccessibleSchema:
    """Build the accessible schema of the requested variant."""
    return AccessibleSchema(schema, variant)


def inferred_accessible_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """``InferredAccQ``: rename relations and demand accessible free vars.

    The atoms of Q move to their ``InfAcc_`` copies, and one
    ``_accessible(x)`` atom is added for every free variable, so a match
    certifies both derivability and that the witness values can actually be
    returned to the user.
    """
    renamed = query.rename_relations(
        {atom.relation: infacc_name(atom.relation) for atom in query.atoms}
    )
    accessible_atoms = tuple(
        Atom(ACCESSIBLE, (variable,)) for variable in query.head
    )
    return ConjunctiveQuery(
        query.head,
        renamed.atoms + accessible_atoms,
        name=f"InfAcc_{query.name}",
    )


def _build_rules(schema: Schema, variant: Variant) -> Iterable[ChaseRule]:
    yield from _original_rules(schema)
    yield from _infacc_copies(schema)
    yield from _defining_axioms(schema)
    yield from _accessed_to_infacc(schema)
    yield from _accessibility_axioms(schema)
    if variant is Variant.BIDIRECTIONAL:
        yield from _reverse_inclusions(schema)
        yield from _negative_axioms(schema, full_arity=False)
    elif variant is Variant.NEGATIVE:
        yield from _reverse_inclusions(schema)
        yield from _negative_axioms(schema, full_arity=True)


def _original_rules(schema: Schema) -> Iterable[ChaseRule]:
    for tgd in schema.constraints:
        yield ChaseRule(tgd, AxiomKind.ORIGINAL)


def _infacc_copies(schema: Schema) -> Iterable[ChaseRule]:
    renaming = {r.name: infacc_name(r.name) for r in schema.relations}
    for tgd in schema.constraints:
        yield ChaseRule(tgd.rename_relations(renaming), AxiomKind.INFACC_COPY)


def _relation_variables(relation: Relation) -> Tuple[Variable, ...]:
    return tuple(Variable(f"x{i}") for i in range(relation.arity))


def _defining_axioms(schema: Schema) -> Iterable[ChaseRule]:
    for relation in schema.relations:
        if relation.arity == 0:
            continue
        variables = _relation_variables(relation)
        body = (Atom(accessed_name(relation.name), variables),)
        head = tuple(Atom(ACCESSIBLE, (v,)) for v in variables)
        yield ChaseRule(
            TGD(body, head, name=f"def[{relation.name}]"),
            AxiomKind.DEFINING,
        )


def _accessed_to_infacc(schema: Schema) -> Iterable[ChaseRule]:
    for relation in schema.relations:
        variables = _relation_variables(relation)
        yield ChaseRule(
            TGD(
                (Atom(accessed_name(relation.name), variables),),
                (Atom(infacc_name(relation.name), variables),),
                name=f"acc2inf[{relation.name}]",
            ),
            AxiomKind.ACCESSED_TO_INFACC,
        )


def _accessibility_axioms(schema: Schema) -> Iterable[ChaseRule]:
    for method in schema.methods:
        relation = schema.relation(method.relation)
        variables = _relation_variables(relation)
        guards = tuple(
            Atom(ACCESSIBLE, (variables[p],))
            for p in method.input_positions
        )
        body = guards + (Atom(relation.name, variables),)
        head = (Atom(accessed_name(relation.name), variables),)
        yield ChaseRule(
            TGD(body, head, name=f"access[{method.name}]"),
            AxiomKind.ACCESSIBILITY,
            method=method,
        )


def _reverse_inclusions(schema: Schema) -> Iterable[ChaseRule]:
    for relation in schema.relations:
        variables = _relation_variables(relation)
        yield ChaseRule(
            TGD(
                (Atom(accessed_name(relation.name), variables),),
                (Atom(relation.name, variables),),
                name=f"rev[{relation.name}]",
            ),
            AxiomKind.REVERSE_INCLUSION,
        )


def _negative_axioms(schema: Schema, full_arity: bool) -> Iterable[ChaseRule]:
    """Negative accessibility axioms in contrapositive TGD form.

    With ``full_arity`` (the ``AcSch-neg`` variant) every position of the
    relation must hold an accessible value; otherwise (``AcSch<->``) only
    the method's input positions must.
    """
    for method in schema.methods:
        relation = schema.relation(method.relation)
        variables = _relation_variables(relation)
        if full_arity:
            guarded_positions: Tuple[int, ...] = tuple(range(relation.arity))
        else:
            guarded_positions = method.input_positions
        guards = tuple(
            Atom(ACCESSIBLE, (variables[p],)) for p in guarded_positions
        )
        body = guards + (Atom(infacc_name(relation.name), variables),)
        head = (Atom(accessed_name(relation.name), variables),)
        yield ChaseRule(
            TGD(body, head, name=f"neg-access[{method.name}]"),
            AxiomKind.NEGATIVE_ACCESSIBILITY,
            method=method,
        )
