"""Schemas with access methods and the accessible-schema constructions.

A :class:`Schema` packages relations, their access methods (binding
patterns), schema constants, and integrity constraints (TGDs).  The
``accessible`` module builds the three axiom systems of Section 3 of the
paper -- ``AcSch``, ``AcSch<->`` and ``AcSch-neg`` -- whose proofs are what
the planner turns into plans.
"""

from repro.schema.core import (
    AccessMethod,
    Relation,
    Schema,
    SchemaBuilder,
    SchemaError,
)
from repro.schema.accessible import (
    ACCESSED_PREFIX,
    ACCESSIBLE,
    INFACC_PREFIX,
    AccessibleSchema,
    AxiomKind,
    accessed_name,
    accessible_schema,
    infacc_name,
    inferred_accessible_query,
    is_accessed_name,
    is_infacc_name,
    original_name,
)

__all__ = [
    "ACCESSED_PREFIX",
    "ACCESSIBLE",
    "AccessMethod",
    "AccessibleSchema",
    "AxiomKind",
    "INFACC_PREFIX",
    "Relation",
    "Schema",
    "SchemaBuilder",
    "SchemaError",
    "accessed_name",
    "accessible_schema",
    "infacc_name",
    "inferred_accessible_query",
    "is_accessed_name",
    "is_infacc_name",
    "original_name",
]
