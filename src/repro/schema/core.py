"""Relations, access methods, and schemas.

An :class:`AccessMethod` is the paper's notion of restricted interface: a
named way of querying one relation, with a set of *input positions* that
must be supplied (mandatory web-form fields, index lookup keys, required
service parameters).  A relation with no methods cannot be accessed at all
(a virtual or hidden relation); a method with no input positions is a free
table scan.

Positions are 0-based throughout this codebase (the paper counts from 1);
all public pretty-printers show 0-based positions explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Variable


class SchemaError(ValueError):
    """Raised for ill-formed schemas or lookups of unknown components."""


@dataclass(frozen=True, slots=True)
class Relation:
    """A relation with a name, an arity and optional attribute names."""

    name: str
    arity: int
    attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(f"negative arity for {self.name}")
        if self.attributes and len(self.attributes) != self.arity:
            raise SchemaError(
                f"{self.name}: {len(self.attributes)} attribute names "
                f"for arity {self.arity}"
            )
        if not self.attributes:
            object.__setattr__(
                self,
                "attributes",
                tuple(f"a{i}" for i in range(self.arity)),
            )

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True, slots=True)
class AccessMethod:
    """An access method on a relation.

    ``input_positions`` are the 0-based positions whose values must be
    supplied to invoke the method.  An empty tuple means free access.
    """

    name: str
    relation: str
    input_positions: Tuple[int, ...]
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.input_positions, tuple):
            object.__setattr__(
                self, "input_positions", tuple(self.input_positions)
            )
        if len(set(self.input_positions)) != len(self.input_positions):
            raise SchemaError(f"method {self.name}: repeated input position")
        if any(p < 0 for p in self.input_positions):
            raise SchemaError(f"method {self.name}: negative input position")
        if self.cost < 0:
            raise SchemaError(f"method {self.name}: negative cost")

    @property
    def is_free(self) -> bool:
        """True when the method needs no inputs (full scan allowed)."""
        return not self.input_positions

    def __repr__(self) -> str:
        inputs = ",".join(str(p) for p in self.input_positions)
        return f"{self.name}[{self.relation};in={{{inputs}}}]"


class Schema:
    """A querying scenario: relations, methods, constants, constraints."""

    def __init__(
        self,
        relations: Iterable[Relation],
        methods: Iterable[AccessMethod] = (),
        constants: Iterable[Constant] = (),
        constraints: Iterable[TGD] = (),
        name: str = "S",
    ) -> None:
        self.name = name
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation {relation.name}")
            self._relations[relation.name] = relation
        self._methods: Dict[str, AccessMethod] = {}
        self._methods_by_relation: Dict[str, List[AccessMethod]] = {
            r: [] for r in self._relations
        }
        for method in methods:
            self._add_method(method)
        self.constants: Tuple[Constant, ...] = tuple(constants)
        self.constraints: Tuple[TGD, ...] = tuple(constraints)
        self._validate_constraints()

    def _add_method(self, method: AccessMethod) -> None:
        relation = self._relations.get(method.relation)
        if relation is None:
            raise SchemaError(
                f"method {method.name} refers to unknown relation "
                f"{method.relation}"
            )
        if any(p >= relation.arity for p in method.input_positions):
            raise SchemaError(
                f"method {method.name}: input position beyond arity "
                f"{relation.arity}"
            )
        if method.name in self._methods:
            raise SchemaError(f"duplicate method name {method.name}")
        self._methods[method.name] = method
        self._methods_by_relation[method.relation].append(method)

    def _validate_constraints(self) -> None:
        for tgd in self.constraints:
            for atom in tgd.body + tgd.head:
                relation = self._relations.get(atom.relation)
                if relation is None:
                    raise SchemaError(
                        f"constraint {tgd.name} uses unknown relation "
                        f"{atom.relation}"
                    )
                if atom.arity != relation.arity:
                    raise SchemaError(
                        f"constraint {tgd.name}: {atom.relation} used with "
                        f"arity {atom.arity}, declared {relation.arity}"
                    )

    # ----------------------------------------------------------- lookups
    @property
    def relations(self) -> Tuple[Relation, ...]:
        """All declared relations, in declaration order."""
        return tuple(self._relations.values())

    @property
    def methods(self) -> Tuple[AccessMethod, ...]:
        """All declared access methods, in declaration order."""
        return tuple(self._methods.values())

    def relation(self, name: str) -> Relation:
        """Look up a relation by name (raises SchemaError if unknown)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name}") from None

    def has_relation(self, name: str) -> bool:
        """Whether a relation with this name is declared."""
        return name in self._relations

    def method(self, name: str) -> AccessMethod:
        """Look up an access method by name (raises SchemaError if unknown)."""
        try:
            return self._methods[name]
        except KeyError:
            raise SchemaError(f"unknown method {name}") from None

    def methods_of(self, relation: str) -> Tuple[AccessMethod, ...]:
        """The access methods declared on one relation (possibly none)."""
        if relation not in self._relations:
            raise SchemaError(f"unknown relation {relation}")
        return tuple(self._methods_by_relation[relation])

    def accessible_relations(self) -> Tuple[Relation, ...]:
        """Relations having at least one access method."""
        return tuple(
            r
            for r in self._relations.values()
            if self._methods_by_relation[r.name]
        )

    def hidden_relations(self) -> Tuple[Relation, ...]:
        """Relations with no method at all (only reachable via reasoning)."""
        return tuple(
            r
            for r in self._relations.values()
            if not self._methods_by_relation[r.name]
        )

    def without_methods(self, names: Iterable[str]) -> "Schema":
        """A copy of this schema with the named access methods removed.

        Relations, constants and constraints are untouched: the data and
        its semantics have not changed, only our *access* to it -- this
        is the "schema minus the dead methods" the failover executor
        re-plans against when a source goes down.  Unknown method names
        raise :class:`SchemaError`.
        """
        drop = set(names)
        unknown = drop - set(self._methods)
        if unknown:
            raise SchemaError(
                f"cannot drop unknown methods {sorted(unknown)}"
            )
        return Schema(
            self.relations,
            [m for m in self.methods if m.name not in drop],
            self.constants,
            self.constraints,
            name=self.name,
        )

    def fingerprint(self) -> str:
        """Stable BLAKE2b content hash of this schema's serialization.

        Delegates to :func:`repro.schema.serialize.schema_fingerprint`
        (imported lazily to avoid a core<->serialize import cycle).
        Used as one component of plan-cache keys.
        """
        from repro.schema.serialize import schema_fingerprint

        return schema_fingerprint(self)

    # ------------------------------------------------------- properties
    @property
    def has_only_guarded_constraints(self) -> bool:
        """True when every constraint is a Guarded TGD (Section 5 applies)."""
        return all(tgd.is_guarded for tgd in self.constraints)

    @property
    def has_only_inclusion_dependencies(self) -> bool:
        """True when every constraint is a referential constraint (ID)."""
        return all(tgd.is_inclusion_dependency for tgd in self.constraints)

    def validate_query(self, query: ConjunctiveQuery) -> None:
        """Check a query only mentions schema relations at correct arity."""
        for atom in query.atoms:
            relation = self.relation(atom.relation)
            if atom.arity != relation.arity:
                raise SchemaError(
                    f"query {query.name}: {atom.relation} used with arity "
                    f"{atom.arity}, declared {relation.arity}"
                )

    def describe(self) -> str:
        """A human-readable multi-line description."""
        lines = [f"schema {self.name}"]
        for relation in self._relations.values():
            methods = self._methods_by_relation[relation.name]
            if methods:
                tags = ", ".join(repr(m) for m in methods)
            else:
                tags = "no access"
            lines.append(f"  {relation!r}: {tags}")
        if self.constants:
            values = ", ".join(repr(c) for c in self.constants)
            lines.append(f"  constants: {values}")
        for tgd in self.constraints:
            lines.append(f"  constraint {tgd!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schema({self.name}: {len(self._relations)} relations, "
            f"{len(self._methods)} methods, "
            f"{len(self.constraints)} constraints)"
        )


class SchemaBuilder:
    """Fluent construction of schemas.

    ::

        schema = (
            SchemaBuilder("uni")
            .relation("Profinfo", 3)
            .relation("Udirect", 2)
            .access("mt_prof", "Profinfo", inputs=[0])
            .access("mt_udir", "Udirect", inputs=[])
            .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
            .constant("smith")
            .build()
        )
    """

    def __init__(self, name: str = "S") -> None:
        self._name = name
        self._relations: List[Relation] = []
        self._methods: List[AccessMethod] = []
        self._constants: List[Constant] = []
        self._constraints: List[TGD] = []

    def relation(
        self,
        name: str,
        arity: int,
        attributes: Sequence[str] = (),
    ) -> "SchemaBuilder":
        """Declare a relation."""
        self._relations.append(Relation(name, arity, tuple(attributes)))
        return self

    def access(
        self,
        name: str,
        relation: str,
        inputs: Sequence[int] = (),
        cost: float = 1.0,
    ) -> "SchemaBuilder":
        """Declare an access method with 0-based input positions."""
        self._methods.append(
            AccessMethod(name, relation, tuple(inputs), cost)
        )
        return self

    def free_access(
        self, relation: str, cost: float = 1.0
    ) -> "SchemaBuilder":
        """Shorthand: an input-free method named ``mt_<relation>``."""
        return self.access(f"mt_{relation}", relation, (), cost)

    def constant(self, value: object) -> "SchemaBuilder":
        """Declare a schema constant (a value the querier may use)."""
        self._constants.append(
            value if isinstance(value, Constant) else Constant(value)  # type: ignore[arg-type]
        )
        return self

    def tgd(self, text_or_tgd: object, name: str = "") -> "SchemaBuilder":
        """Add a constraint, as a TGD object or parse_tgd text."""
        if isinstance(text_or_tgd, TGD):
            self._constraints.append(text_or_tgd)
        elif isinstance(text_or_tgd, str):
            from repro.logic.dependencies import parse_tgd

            self._constraints.append(parse_tgd(text_or_tgd, name=name))
        else:
            raise SchemaError(f"cannot interpret constraint {text_or_tgd!r}")
        return self

    def build(self) -> Schema:
        """Validate and assemble the schema."""
        return Schema(
            self._relations,
            self._methods,
            self._constants,
            self._constraints,
            name=self._name,
        )
