"""Schema (de)serialization to plain JSON-able dictionaries.

The on-disk format mirrors the builder API::

    {
      "name": "university",
      "relations": [{"name": "Profinfo", "arity": 3,
                     "attributes": ["eid", "onum", "lname"]}],
      "methods": [{"name": "mt_prof", "relation": "Profinfo",
                   "inputs": [0], "cost": 2.0}],
      "constants": ["smith"],
      "constraints": ["Profinfo(eid, onum, lname) -> Udirect(eid, lname)"]
    }

Constraints serialize as the ``parse_tgd`` text syntax, which keeps the
files human-editable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD, parse_tgd
from repro.logic.terms import Constant, Variable
from repro.schema.core import AccessMethod, Relation, Schema


def schema_to_dict(schema: Schema) -> Dict:
    """A JSON-able representation of a schema."""
    return {
        "name": schema.name,
        "relations": [
            {
                "name": r.name,
                "arity": r.arity,
                "attributes": list(r.attributes),
            }
            for r in schema.relations
        ],
        "methods": [
            {
                "name": m.name,
                "relation": m.relation,
                "inputs": list(m.input_positions),
                "cost": m.cost,
            }
            for m in schema.methods
        ],
        "constants": [c.value for c in schema.constants],
        "constraints": [_tgd_to_text(tgd) for tgd in schema.constraints],
    }


def schema_from_dict(data: Dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    relations = [
        Relation(
            entry["name"],
            entry["arity"],
            tuple(entry.get("attributes", ())),
        )
        for entry in data.get("relations", ())
    ]
    methods = [
        AccessMethod(
            entry["name"],
            entry["relation"],
            tuple(entry.get("inputs", ())),
            entry.get("cost", 1.0),
        )
        for entry in data.get("methods", ())
    ]
    constants = [Constant(v) for v in data.get("constants", ())]
    constraints = [
        parse_tgd(text) for text in data.get("constraints", ())
    ]
    return Schema(
        relations,
        methods,
        constants,
        constraints,
        name=data.get("name", "S"),
    )


def schema_fingerprint(schema: Schema) -> str:
    """A stable content hash of a schema.

    BLAKE2b over the key-sorted, separator-canonical JSON encoding of
    :func:`schema_to_dict`.  Two schemas fingerprint equal iff they
    serialize equal, independent of construction order or process --
    which is what makes the fingerprint usable as a component of
    cross-process plan-cache keys.  The value is golden-pinned in the
    test suite: changing the serialization format (or this encoding)
    must be a deliberate, visible act that invalidates old caches.
    """
    payload = json.dumps(
        schema_to_dict(schema),
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


def _tgd_to_text(tgd: TGD) -> str:
    return f"{_atoms_to_text(tgd.body)} -> {_atoms_to_text(tgd.head)}"


def _atoms_to_text(atoms) -> str:
    return " & ".join(_atom_to_text(a) for a in atoms)


def _atom_to_text(atom: Atom) -> str:
    rendered = []
    for term in atom.terms:
        if isinstance(term, Variable):
            rendered.append(term.name)
        elif isinstance(term, Constant):
            if isinstance(term.value, str):
                rendered.append(f"'{term.value}'")
            else:
                rendered.append(str(term.value))
        else:
            raise ValueError(
                f"cannot serialize constraint term {term!r}"
            )
    return f"{atom.relation}({', '.join(rendered)})"
