"""First-order formula ASTs.

Formulas are built from relational atoms (reusing
:class:`repro.logic.atoms.Atom`), equality, the constants ``Top`` /
``Bottom``, boolean connectives, and quantifiers binding tuples of
variables.  All nodes are immutable and hashable.

``Implies(a, b)`` is a first-class node but is treated as ``Or(Not(a), b)``
by polarity analysis and NNF, matching the paper's convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Null, Term, Variable


class Formula:
    """Base class for first-order formulas."""

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        raise NotImplementedError

    def substitute(self, substitution: Substitution) -> "Formula":
        """Apply a substitution to free occurrences."""
        raise NotImplementedError

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        raise NotImplementedError

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        raise NotImplementedError


@dataclass(frozen=True)
class Top(Formula):
    """The always-true formula."""

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return frozenset()

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return self

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return frozenset()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Bottom(Formula):
    """The always-false formula."""

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return frozenset()

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return self

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return frozenset()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return frozenset()

    def __repr__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class FOAtom(Formula):
    """A relational atom as a formula."""

    atom: Atom

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return frozenset(self.atom.variables())

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return FOAtom(self.atom.apply(substitution))

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return frozenset({self.atom.relation})

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return frozenset(self.atom.constants())

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class Eq(Formula):
    """Equality between two terms."""

    left: Term
    right: Term

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return Eq(
            substitution.get(self.left, self.left),
            substitution.get(self.right, self.right),
        )

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return frozenset()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Constant)
        )

    def __repr__(self) -> str:
        return f"{self.left!r}={self.right!r}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    inner: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return self.inner.free_variables()

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return Not(self.inner.substitute(substitution))

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return self.inner.relations()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return self.inner.constants()

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


class _Junction(Formula):
    """Shared implementation of n-ary connectives."""

    symbol = "?"

    def __init__(self, *parts: Formula) -> None:
        flat = []
        for part in parts:
            if isinstance(part, type(self)):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts: Tuple[Formula, ...] = tuple(flat)

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        out: Set[Variable] = set()
        for part in self.parts:
            out |= part.free_variables()
        return frozenset(out)

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return type(self)(
            *(part.substitute(substitution) for part in self.parts)
        )

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        out: Set[str] = set()
        for part in self.parts:
            out |= part.relations()
        return frozenset(out)

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        out: Set[Constant] = set()
        for part in self.parts:
            out |= part.constants()
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))

    def __repr__(self) -> str:
        if not self.parts:
            return "⊤" if isinstance(self, And) else "⊥"
        joined = f" {self.symbol} ".join(repr(p) for p in self.parts)
        return f"({joined})"


class And(_Junction):
    """N-ary conjunction (flattens nested Ands)."""

    symbol = "∧"


class Or(_Junction):
    """N-ary disjunction (flattens nested Ors)."""

    symbol = "∨"


@dataclass(frozen=True)
class Implies(Formula):
    """Material implication; polarity-wise it is ``Or(Not(left), right)``."""

    left: Formula
    right: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        return Implies(
            self.left.substitute(substitution),
            self.right.substitute(substitution),
        )

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return self.left.relations() | self.right.relations()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return self.left.constants() | self.right.constants()

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


class _Quantifier(Formula):
    symbol = "?"

    def __init__(self, variables: Iterable[Variable], body: Formula) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.body = body

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables not bound by any quantifier here."""
        return self.body.free_variables() - set(self.variables)

    def substitute(self, substitution: Substitution) -> Formula:
        """Apply a substitution to free occurrences."""
        trimmed = Substitution(
            {
                key: value
                for key, value in substitution.items()
                if key not in self.variables
            }
        )
        return type(self)(self.variables, self.body.substitute(trimmed))

    def relations(self) -> FrozenSet[str]:
        """Relation names occurring in the formula."""
        return self.body.relations()

    def constants(self) -> FrozenSet[Constant]:
        """Schema constants occurring in the formula."""
        return self.body.constants()

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.variables == other.variables
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.body))

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"{self.symbol}{names}.{self.body!r}"


class Exists(_Quantifier):
    """Existential quantification over a tuple of variables."""

    symbol = "∃"


class Forall(_Quantifier):
    """Universal quantification over a tuple of variables."""

    symbol = "∀"


# ------------------------------------------------------------------- NNF
def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form (negation only on atoms and equalities)."""
    if isinstance(formula, Top):
        return Bottom() if negate else formula
    if isinstance(formula, Bottom):
        return Top() if negate else formula
    if isinstance(formula, (FOAtom, Eq)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return to_nnf(formula.inner, not negate)
    if isinstance(formula, Implies):
        return to_nnf(Or(Not(formula.left), formula.right), negate)
    if isinstance(formula, And):
        parts = tuple(to_nnf(p, negate) for p in formula.parts)
        return Or(*parts) if negate else And(*parts)
    if isinstance(formula, Or):
        parts = tuple(to_nnf(p, negate) for p in formula.parts)
        return And(*parts) if negate else Or(*parts)
    if isinstance(formula, Exists):
        body = to_nnf(formula.body, negate)
        return (
            Forall(formula.variables, body)
            if negate
            else Exists(formula.variables, body)
        )
    if isinstance(formula, Forall):
        body = to_nnf(formula.body, negate)
        return (
            Exists(formula.variables, body)
            if negate
            else Forall(formula.variables, body)
        )
    raise TypeError(f"unknown formula node {formula!r}")


# -------------------------------------------------------------- polarity
def polarities(formula: Formula) -> Dict[str, Set[int]]:
    """Occurrence polarities per relation: +1 positive, -1 negative."""
    out: Dict[str, Set[int]] = {}
    _collect_polarities(formula, +1, out)
    return out


def _collect_polarities(
    formula: Formula, sign: int, out: Dict[str, Set[int]]
) -> None:
    if isinstance(formula, FOAtom):
        out.setdefault(formula.atom.relation, set()).add(sign)
    elif isinstance(formula, Not):
        _collect_polarities(formula.inner, -sign, out)
    elif isinstance(formula, Implies):
        _collect_polarities(formula.left, -sign, out)
        _collect_polarities(formula.right, sign, out)
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            _collect_polarities(part, sign, out)
    elif isinstance(formula, (Exists, Forall)):
        _collect_polarities(formula.body, sign, out)
    # Top/Bottom/Eq carry no relation occurrences.
