"""First-order logic machinery for Section 3.

Formula ASTs, negation normal form, polarity analysis, the paper's
``BindPatt`` binding-pattern semantics, *executable* FO queries and their
compilation to plans (Proposition 1), a refutation tableau prover over a
bounded Herbrand universe, and constructive Craig/Lyndon/Access
interpolation (Theorem 4) extracted from closed tableaux.
"""

from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
    polarities,
    to_nnf,
)
from repro.fo.binding import (
    BindingPattern,
    UnrestrictedQuantificationError,
    binding_patterns,
)
from repro.fo.executable import (
    ExecutabilityError,
    executable_to_plan,
    is_executable,
)
from repro.fo.tableau import ProofNotFound, TableauProver
from repro.fo.interpolation import (
    InterpolationResult,
    interpolate,
    verify_interpolant,
)
from repro.fo.counterexample import determinacy_counterexample
from repro.fo.determinacy import (
    is_access_determined,
    is_monotonically_determined,
)

__all__ = [
    "And",
    "BindingPattern",
    "Bottom",
    "Eq",
    "ExecutabilityError",
    "Exists",
    "FOAtom",
    "Forall",
    "Formula",
    "Implies",
    "InterpolationResult",
    "Not",
    "Or",
    "ProofNotFound",
    "TableauProver",
    "Top",
    "UnrestrictedQuantificationError",
    "binding_patterns",
    "determinacy_counterexample",
    "executable_to_plan",
    "interpolate",
    "is_access_determined",
    "is_executable",
    "is_monotonically_determined",
    "polarities",
    "to_nnf",
    "verify_interpolant",
]
