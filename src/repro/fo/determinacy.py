"""Semantic preservation properties as chase-checkable entailments.

Claims 1-3 of the paper translate the model-theoretic preservation
properties into entailments over the accessible-schema variants:

* *access-determinacy*  (Claim 1)  <->  entailment over ``AcSch<->``,
* *subinstance-access-determinacy / monotonicity* (Claim 2) <-> ``AcSch``,
* *induced-subinstance determinacy* (Claim 3) <-> ``AcSch-neg``.

For TGD constraints the entailments are checked by the chase; the checks
are sound (True is always right) and complete whenever the bounded chase
reaches a fixpoint.
"""

from __future__ import annotations

from typing import Optional

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import NullFactory
from repro.planner.proof_to_plan import success_match
from repro.schema.accessible import AccessibleSchema, Variant
from repro.schema.core import Schema


def _entails_infacc(
    schema: Schema,
    query: ConjunctiveQuery,
    variant: Variant,
    policy: Optional[ChasePolicy],
) -> bool:
    acc = AccessibleSchema(schema, variant)
    facts, frozen = query.canonical_database()
    config = ChaseConfiguration(facts)
    for fact in acc.initial_accessible_facts():
        config.add(fact)
    chase_to_fixpoint(
        config,
        list(acc.rules),
        NullFactory("d"),
        policy or ChasePolicy(max_depth=8, max_firings=50_000),
    )
    return success_match(config, query, frozen) is not None


def is_access_determined(
    schema: Schema,
    query: ConjunctiveQuery,
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """Claim 1 / Theorem 2: RA-plan existence (bounded chase check)."""
    return _entails_infacc(schema, query, Variant.BIDIRECTIONAL, policy)


def is_monotonically_determined(
    schema: Schema,
    query: ConjunctiveQuery,
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """Claim 2 / Theorem 1: USPJ-plan existence (bounded chase check)."""
    return _entails_infacc(schema, query, Variant.FORWARD, policy)


def is_induced_subinstance_determined(
    schema: Schema,
    query: ConjunctiveQuery,
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """Claim 3 / Theorem 3: USPJ-with-atomic-negation plan existence."""
    return _entails_infacc(schema, query, Variant.NEGATIVE, policy)
