"""A refutation tableau prover with interpolant extraction.

Implements the classical signed ("biased") tableau method behind the
paper's constructive Access Interpolation theorem (Theorem 4): to
interpolate an entailment ``phi1 |= phi2``, refute ``phi1 & not phi2``
keeping every formula labelled with the side it came from (L for phi1, R
for not-phi2), and read an interpolant off the closed tableau bottom-up:

* branch closed by two L-formulas  -> Bottom,
* by two R-formulas                -> Top,
* by a positive L / negative R pair -> the atom,
* by a positive R / negative L pair -> its negation,
* beta splits combine sub-interpolants with Or (L-disjunction) or
  And (R-disjunction),
* delta parameters are quantified out of the final interpolant
  (existentially for L-parameters, universally for R-parameters).

The prover is for equality-free, function-free FO (the language of TGDs
and of the paper's axioms).  Universal quantifiers are instantiated over
the branch's ground terms with a per-formula budget, so the prover is a
bounded semi-decision procedure: ``ProofNotFound`` means "no proof within
budget", never "disproved" -- full FO validity is undecidable and the
paper's Theorems 1-3 are correspondingly non-effective.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
    to_nnf,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import TGD
from repro.errors import ReproError
from repro.logic.terms import Constant, Term, Variable


class ProofNotFound(ReproError):
    """No closed tableau was found within the search budget."""


LEFT = "L"
RIGHT = "R"

_PARAM_PREFIX = "@p"


def is_parameter(term: Term) -> bool:
    """True for constants invented by delta expansions."""
    return isinstance(term, Constant) and isinstance(
        term.value, str
    ) and term.value.startswith(_PARAM_PREFIX)


@dataclass(frozen=True)
class Signed:
    """A formula tagged with the side of the entailment it came from."""

    formula: Formula
    side: str

    def __repr__(self) -> str:
        return f"[{self.side}] {self.formula!r}"


def tgd_to_formula(tgd: TGD) -> Formula:
    """A TGD as a closed FO sentence."""
    body = And(*(FOAtom(a) for a in tgd.body))
    head: Formula = And(*(FOAtom(a) for a in tgd.head))
    existential = tuple(
        sorted(tgd.existential_variables(), key=lambda v: v.name)
    )
    if existential:
        head = Exists(existential, head)
    universal = tuple(sorted(tgd.body_variables(), key=lambda v: v.name))
    return Forall(universal, Implies(body, head))


def simplify(formula: Formula) -> Formula:
    """Light boolean simplification of extracted interpolants."""
    if isinstance(formula, And):
        parts = []
        for part in (simplify(p) for p in formula.parts):
            if isinstance(part, Bottom):
                return Bottom()
            if isinstance(part, Top):
                continue
            parts.append(part)
        if not parts:
            return Top()
        if len(parts) == 1:
            return parts[0]
        return And(*parts)
    if isinstance(formula, Or):
        parts = []
        for part in (simplify(p) for p in formula.parts):
            if isinstance(part, Top):
                return Top()
            if isinstance(part, Bottom):
                continue
            parts.append(part)
        if not parts:
            return Bottom()
        if len(parts) == 1:
            return parts[0]
        return Or(*parts)
    if isinstance(formula, Not):
        inner = simplify(formula.inner)
        if isinstance(inner, Top):
            return Bottom()
        if isinstance(inner, Bottom):
            return Top()
        return Not(inner)
    if isinstance(formula, Exists):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return Exists(formula.variables, body)
    if isinstance(formula, Forall):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return Forall(formula.variables, body)
    return formula


@dataclass
class _Branch:
    """One open tableau branch (persistent-ish: copied on split)."""

    pending: List[Signed]
    # Ground literals: (relation, terms, positive?) -> side of occurrence.
    literals: Dict[Tuple[str, Tuple[Term, ...], bool], str]
    # Universal formulas available for gamma, with used instantiations.
    universals: List[Tuple[Signed, Set[Tuple[Term, ...]]]]
    terms: Set[Term]
    # FIFO head of ``pending``: entries before it are consumed.  An
    # integer cursor keeps dequeuing O(1) where a ``pop(0)`` drain
    # would shift the whole tail on every expansion step.
    cursor: int = 0

    def copy(self) -> "_Branch":
        """An independent copy (already-consumed pending entries drop)."""
        return _Branch(
            pending=self.pending[self.cursor:],
            literals=dict(self.literals),
            universals=[(s, set(used)) for s, used in self.universals],
            terms=set(self.terms),
        )


class TableauProver:
    """Bounded tableau refutation with interpolant extraction."""

    def __init__(
        self,
        gamma_limit: int = 4,
        max_steps: int = 20_000,
        max_parameters: int = 24,
    ) -> None:
        self.gamma_limit = gamma_limit
        self.max_steps = max_steps
        self.max_parameters = max_parameters
        self._params = itertools.count()
        self._param_side: Dict[Constant, str] = {}
        self._param_order: List[Constant] = []
        self._steps = 0

    # ----------------------------------------------------------- public
    def refute(
        self,
        left: Sequence[Formula],
        right: Sequence[Formula],
    ) -> Formula:
        """Close a tableau for ``left (L) + right (R)``; return interpolant.

        The returned formula I satisfies ``And(left) |= I`` and
        ``I, And(right) |= Bottom``, over the vocabulary discipline of
        Theorem 4 (checked by the interpolation wrapper).  Raises
        :class:`ProofNotFound` when the budget is exhausted.
        """
        self._params = itertools.count()
        self._param_side = {}
        self._param_order = []
        self._steps = 0
        branch = _Branch(pending=[], literals={}, universals=[], terms=set())
        for formula in left:
            self._push(branch, Signed(to_nnf(formula), LEFT))
        for formula in right:
            self._push(branch, Signed(to_nnf(formula), RIGHT))
        raw = self._close(branch)
        return simplify(self._quantify_parameters(raw))

    def entails(
        self, premises: Sequence[Formula], conclusion: Formula
    ) -> bool:
        """Best-effort entailment check (True = proved)."""
        try:
            self.refute(list(premises), [Not(conclusion)])
            return True
        except ProofNotFound:
            return False

    def is_unsatisfiable(self, formulas: Sequence[Formula]) -> bool:
        """Best-effort refutation (True = proved unsatisfiable)."""
        try:
            self.refute(list(formulas), [])
            return True
        except ProofNotFound:
            return False

    # ----------------------------------------------------------- engine
    def _push(self, branch: _Branch, signed: Signed) -> None:
        formula = signed.formula
        if isinstance(formula, (FOAtom, Not)):
            key = self._literal_key(formula)
            if key is not None:
                branch.literals.setdefault(key, signed.side)
                for term in key[1]:
                    branch.terms.add(term)
                return
        if isinstance(formula, Forall):
            branch.universals.append((signed, set()))
            self._collect_terms(formula, branch)
            return
        branch.pending.append(signed)
        self._collect_terms(formula, branch)

    def _collect_terms(self, formula: Formula, branch: _Branch) -> None:
        for constant in formula.constants():
            branch.terms.add(constant)

    def _literal_key(
        self, formula: Formula
    ) -> Optional[Tuple[str, Tuple[Term, ...], bool]]:
        if isinstance(formula, FOAtom) and formula.atom.is_fact:
            return (formula.atom.relation, formula.atom.terms, True)
        if (
            isinstance(formula, Not)
            and isinstance(formula.inner, FOAtom)
            and formula.inner.atom.is_fact
        ):
            return (formula.inner.atom.relation, formula.inner.atom.terms, False)
        return None

    def _close(self, branch: _Branch) -> Formula:
        """Close the branch; return the (raw) interpolant."""
        self._steps += 1
        if self._steps > self.max_steps:
            raise ProofNotFound("step budget exhausted")
        closure = self._find_closure(branch)
        if closure is not None:
            return closure
        if branch.cursor < len(branch.pending):
            return self._expand(branch)
        return self._gamma(branch)

    def _find_closure(self, branch: _Branch) -> Optional[Formula]:
        for (relation, terms, positive), side in branch.literals.items():
            other = branch.literals.get((relation, terms, not positive))
            if other is None:
                continue
            pos_side = side if positive else other
            neg_side = other if positive else side
            atom = FOAtom(Atom(relation, terms))
            if pos_side == LEFT and neg_side == LEFT:
                return Bottom()
            if pos_side == RIGHT and neg_side == RIGHT:
                return Top()
            if pos_side == LEFT and neg_side == RIGHT:
                return atom
            return Not(atom)
        return None

    def _expand(self, branch: _Branch) -> Formula:
        signed = branch.pending[branch.cursor]
        branch.cursor += 1
        formula, side = signed.formula, signed.side
        if isinstance(formula, Top):
            if side == RIGHT:
                return self._close(branch)
            return self._close(branch)
        if isinstance(formula, Bottom):
            # An explicit falsum closes immediately.
            return Bottom() if side == LEFT else Top()
        if isinstance(formula, And):
            for part in formula.parts:
                self._push(branch, Signed(part, side))
            return self._close(branch)
        if isinstance(formula, Or):
            interpolants = []
            for part in formula.parts:
                sub = branch.copy()
                self._push(sub, Signed(part, side))
                interpolants.append(self._close(sub))
            if not interpolants:
                return Bottom() if side == LEFT else Top()
            return (
                Or(*interpolants) if side == LEFT else And(*interpolants)
            )
        if isinstance(formula, Exists):
            binding = {}
            for variable in formula.variables:
                binding[variable] = self._fresh_parameter(side)
            body = formula.body.substitute(Substitution(binding))
            self._push(branch, Signed(body, side))
            return self._close(branch)
        if isinstance(formula, (FOAtom, Not)):
            # Non-ground literal (free variables): treat as inert.
            return self._close(branch)
        raise ProofNotFound(f"cannot expand {signed!r}")

    def _gamma(self, branch: _Branch) -> Formula:
        """Instantiate some universal with an unused ground term tuple.

        Connection guidance: combinations that unify one of the
        universal's literal templates with an existing branch literal are
        tried first -- they are the instantiations that can actually
        close branches -- before falling back to systematic enumeration.
        """
        terms = sorted(branch.terms) or [self._fresh_parameter(LEFT)]
        for guided_only in (True, False):
            for signed, used in branch.universals:
                formula = signed.formula
                assert isinstance(formula, Forall)
                width = len(formula.variables)
                if len(used) >= self.gamma_limit ** max(1, width):
                    continue
                combos = (
                    self._guided_combos(formula, branch, terms)
                    if guided_only
                    else itertools.product(terms, repeat=width)
                )
                for combo in combos:
                    if combo in used:
                        continue
                    used.add(combo)
                    binding = Substitution(
                        dict(zip(formula.variables, combo))
                    )
                    body = formula.body.substitute(binding)
                    self._push(branch, Signed(to_nnf(body), signed.side))
                    return self._close(branch)
        raise ProofNotFound("branch saturated without closure")

    def _guided_combos(self, formula: Forall, branch: _Branch, terms):
        """Instantiations unifying a body literal with a branch literal."""
        variables = formula.variables
        for template in _literal_templates(formula.body):
            for relation, ground_terms, _pos in branch.literals:
                if relation != template.relation:
                    continue
                if len(ground_terms) != template.arity:
                    continue
                binding: dict = {}
                ok = True
                for pattern_term, ground in zip(
                    template.terms, ground_terms
                ):
                    if isinstance(pattern_term, Variable):
                        if pattern_term in variables:
                            bound = binding.get(pattern_term)
                            if bound is None:
                                binding[pattern_term] = ground
                            elif bound != ground:
                                ok = False
                                break
                    elif pattern_term != ground:
                        ok = False
                        break
                if not ok:
                    continue
                free = [v for v in variables if v not in binding]
                for filler in itertools.product(terms, repeat=len(free)):
                    full = dict(binding)
                    full.update(zip(free, filler))
                    yield tuple(full[v] for v in variables)

    def _fresh_parameter(self, side: str) -> Constant:
        if len(self._param_order) >= self.max_parameters:
            raise ProofNotFound("parameter budget exhausted")
        parameter = Constant(f"{_PARAM_PREFIX}{next(self._params)}")
        self._param_side[parameter] = side
        self._param_order.append(parameter)
        return parameter

    # ----------------------------------------------- parameter cleanup
    def _quantify_parameters(self, interpolant: Formula) -> Formula:
        """Quantify out delta parameters, newest first.

        L-parameters are existential, R-parameters universal -- the
        standard endgame of tableau interpolation.
        """
        result = interpolant
        fresh = itertools.count()
        for parameter in reversed(self._param_order):
            if parameter not in result.constants():
                continue
            variable = Variable(f"z{next(fresh)}")
            result = _replace_constant(result, parameter, variable)
            if self._param_side[parameter] == LEFT:
                result = Exists((variable,), result)
            else:
                result = Forall((variable,), result)
        return result


def _literal_templates(formula: Formula):
    """All atoms occurring in a formula (any polarity, any depth)."""
    if isinstance(formula, FOAtom):
        yield formula.atom
    elif isinstance(formula, Not):
        yield from _literal_templates(formula.inner)
    elif isinstance(formula, (And, Or)):
        for part in formula.parts:
            yield from _literal_templates(part)
    elif isinstance(formula, Implies):
        yield from _literal_templates(formula.left)
        yield from _literal_templates(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from _literal_templates(formula.body)


def _replace_constant(
    formula: Formula, constant: Constant, variable: Variable
) -> Formula:
    """Structurally replace a constant by a variable."""
    if isinstance(formula, FOAtom):
        terms = tuple(
            variable if t == constant else t for t in formula.atom.terms
        )
        return FOAtom(Atom(formula.atom.relation, terms))
    if isinstance(formula, Eq):
        left = variable if formula.left == constant else formula.left
        right = variable if formula.right == constant else formula.right
        return Eq(left, right)
    if isinstance(formula, Not):
        return Not(_replace_constant(formula.inner, constant, variable))
    if isinstance(formula, And):
        return And(
            *(_replace_constant(p, constant, variable) for p in formula.parts)
        )
    if isinstance(formula, Or):
        return Or(
            *(_replace_constant(p, constant, variable) for p in formula.parts)
        )
    if isinstance(formula, Implies):
        return Implies(
            _replace_constant(formula.left, constant, variable),
            _replace_constant(formula.right, constant, variable),
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables,
            _replace_constant(formula.body, constant, variable),
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.variables,
            _replace_constant(formula.body, constant, variable),
        )
    return formula
