"""Executable FO queries and their compilation to plans (Proposition 1).

An FO query is *executable* for a schema when its binding patterns are
all served by access methods: every guard ``R(t..)`` is quantified with
enough bound positions to cover the input positions of some method on R.
Such a query can be evaluated through the access methods alone, and
Proposition 1 says the evaluation strategy is itself a plan: existential
guards become access-then-join, universal guards become
access-then-difference.

The compiler here works on boolean sentences (the paper's running
setting) and on formulas whose free variables are supplied by a context
table.  The produced plan filters the context: its output rows are the
context rows satisfying the formula; for a sentence the context is the
TRUE singleton and the output is empty/non-empty.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.fo.binding import (
    UnrestrictedQuantificationError,
    _existential_guard,
    _universal_guard,
)
from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
    to_nnf,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Term, Variable
from repro.plans.commands import (
    AccessCommand,
    Command,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    Union as ExprUnion,
    EqAttr,
    EqConst,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
)
from repro.plans.plan import Plan
from repro.schema.core import AccessMethod, Schema


class ExecutabilityError(ValueError):
    """Raised when a formula cannot be executed over the schema."""


def to_guarded_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form that *preserves guarded quantifier shapes*.

    Plain NNF rewrites ``forall y (R(..) -> phi)`` into
    ``forall y (not R(..) or phi)``, destroying the guard the executable
    compiler keys on.  This variant pushes negations through using the
    dualities ``not exists y (g & phi) == forall y (g -> not phi)`` and
    ``not forall y (g -> phi) == exists y (g & not phi)``, which keep
    every guard in place (and keep BindPatt unchanged, as the paper's
    definition already treats the two shapes symmetrically).
    """
    if isinstance(formula, Top):
        return Bottom() if negate else formula
    if isinstance(formula, Bottom):
        return Top() if negate else formula
    if isinstance(formula, (FOAtom, Eq)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return to_guarded_nnf(formula.inner, not negate)
    if isinstance(formula, Implies):
        return to_guarded_nnf(Or(Not(formula.left), formula.right), negate)
    if isinstance(formula, And):
        parts = tuple(to_guarded_nnf(p, negate) for p in formula.parts)
        return Or(*parts) if negate else And(*parts)
    if isinstance(formula, Or):
        parts = tuple(to_guarded_nnf(p, negate) for p in formula.parts)
        return And(*parts) if negate else Or(*parts)
    if isinstance(formula, Exists):
        guard, rest = _existential_guard(formula)
        if negate:
            return Forall(
                formula.variables,
                Implies(FOAtom(guard), to_guarded_nnf(rest, True)),
            )
        return Exists(
            formula.variables,
            And(FOAtom(guard), to_guarded_nnf(rest, False)),
        )
    if isinstance(formula, Forall):
        guard, rest = _universal_guard(formula)
        if negate:
            return Exists(
                formula.variables,
                And(FOAtom(guard), to_guarded_nnf(rest, True)),
            )
        return Forall(
            formula.variables,
            Implies(FOAtom(guard), to_guarded_nnf(rest, False)),
        )
    raise ExecutabilityError(f"unknown formula node {formula!r}")


def method_for_guard(
    schema: Schema, guard: Atom, bound: Sequence[Variable]
) -> Optional[AccessMethod]:
    """The cheapest method whose inputs are covered by bound positions."""
    bound_set = set(bound)
    bound_positions = {
        i
        for i, term in enumerate(guard.terms)
        if isinstance(term, Constant)
        or (isinstance(term, Variable) and term in bound_set)
    }
    usable = [
        m
        for m in schema.methods_of(guard.relation)
        if set(m.input_positions) <= bound_positions
    ]
    if not usable:
        return None
    return min(usable, key=lambda m: (m.cost, m.name))


def is_executable(formula: Formula, schema: Schema) -> bool:
    """True when the formula compiles to a plan over the schema."""
    try:
        _Compiler(schema).compile_sentence(formula, probe=True)
    except (ExecutabilityError, UnrestrictedQuantificationError):
        return False
    return True


def executable_to_plan(
    formula: Formula, schema: Schema, name: str = "executable"
) -> Plan:
    """Compile a boolean executable FO sentence into a plan.

    The output table has no attributes; it is non-empty exactly when the
    sentence holds on the (hidden) instance behind the source.
    """
    if formula.free_variables():
        raise ExecutabilityError(
            f"not a sentence: free variables {formula.free_variables()}"
        )
    return _Compiler(schema).compile_sentence(formula, name=name)


@dataclass
class _Context:
    """A context table: one attribute per bound variable."""

    table: str
    variables: Tuple[Variable, ...]

    def attr(self, variable: Variable) -> str:
        """Attribute name carrying this variable's binding."""
        return variable.name


class _Compiler:
    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._counter = itertools.count()
        self.commands: List[Command] = []

    def _fresh(self, prefix: str = "E") -> str:
        return f"{prefix}{next(self._counter)}"

    def compile_sentence(
        self, formula: Formula, name: str = "executable", probe: bool = False
    ) -> Plan:
        """Compile a boolean sentence into a full plan."""
        self.commands = []
        root = self._fresh("C")
        self.commands.append(MiddlewareCommand(root, Singleton()))
        context = _Context(root, ())
        result = self._compile(to_guarded_nnf(formula), context)
        self.commands.append(
            MiddlewareCommand("T_fin", Project(Scan(result.table), ()))
        )
        plan = Plan(tuple(self.commands), "T_fin", name=name)
        return plan

    # ------------------------------------------------------------ dispatch
    def _compile(self, formula: Formula, context: _Context) -> _Context:
        """Emit commands computing the context rows satisfying ``formula``."""
        if isinstance(formula, Top):
            return context
        if isinstance(formula, Bottom):
            empty = self._fresh("C")
            self.commands.append(
                MiddlewareCommand(
                    empty,
                    Difference(Scan(context.table), Scan(context.table)),
                )
            )
            return _Context(empty, context.variables)
        if isinstance(formula, Eq):
            return self._compile_eq(formula, context, negated=False)
        if isinstance(formula, Not):
            return self._compile_not(formula, context)
        if isinstance(formula, And):
            current = context
            for part in formula.parts:
                current = self._compile(part, current)
            return current
        if isinstance(formula, Or):
            return self._compile_or(formula, context)
        if isinstance(formula, Exists):
            return self._compile_exists(formula, context)
        if isinstance(formula, Forall):
            return self._compile_forall(formula, context)
        if isinstance(formula, FOAtom):
            # A bare atom is sugar for exists-nothing with a guard.
            return self._compile_exists(
                Exists((), formula), context
            )
        if isinstance(formula, Implies):
            return self._compile(to_guarded_nnf(formula), context)
        raise ExecutabilityError(f"cannot compile {formula!r}")

    # ------------------------------------------------------------- pieces
    def _compile_eq(
        self, formula: Eq, context: _Context, negated: bool
    ) -> _Context:
        condition = self._eq_condition(formula, context, negated)
        target = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(
                target, Select(Scan(context.table), (condition,))
            )
        )
        return _Context(target, context.variables)

    def _eq_condition(self, formula: Eq, context: _Context, negated: bool):
        from repro.plans.expressions import NeqAttr, NeqConst

        left, right = formula.left, formula.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            cls = NeqAttr if negated else EqAttr
            return cls(context.attr(left), context.attr(right))
        if isinstance(left, Variable) and isinstance(right, Constant):
            cls = NeqConst if negated else EqConst
            return cls(context.attr(left), right)
        if isinstance(left, Constant) and isinstance(right, Variable):
            cls = NeqConst if negated else EqConst
            return cls(context.attr(right), left)
        if isinstance(left, Constant) and isinstance(right, Constant):
            holds = (left == right) != negated
            return _AlwaysTrue() if holds else _AlwaysFalse()
        raise ExecutabilityError(f"cannot compile equality {formula!r}")

    def _compile_not(self, formula: Not, context: _Context) -> _Context:
        inner = formula.inner
        if isinstance(inner, Eq):
            return self._compile_eq(inner, context, negated=True)
        # General negation: context minus the satisfying rows.
        satisfied = self._compile(inner, context)
        target = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(
                target,
                Difference(Scan(context.table), Scan(satisfied.table)),
            )
        )
        return _Context(target, context.variables)

    def _compile_or(self, formula: Or, context: _Context) -> _Context:
        if not formula.parts:
            return self._compile(Bottom(), context)
        results = [self._compile(part, context) for part in formula.parts]
        current = results[0]
        for nxt in results[1:]:
            target = self._fresh("C")
            self.commands.append(
                MiddlewareCommand(
                    target,
                    ExprUnion(Scan(current.table), Scan(nxt.table)),
                )
            )
            current = _Context(target, context.variables)
        return current

    def _compile_exists(
        self, formula: Exists, context: _Context
    ) -> _Context:
        guard, rest = _existential_guard(formula)
        extended = self._access_and_join(
            guard, formula.variables, context
        )
        satisfied = self._compile(rest, extended)
        # Project the surviving extended rows back onto the context.
        target = self._fresh("C")
        attrs = tuple(v.name for v in context.variables)
        self.commands.append(
            MiddlewareCommand(
                target, Project(Scan(satisfied.table), attrs)
            )
        )
        return _Context(target, context.variables)

    def _compile_forall(
        self, formula: Forall, context: _Context
    ) -> _Context:
        guard, rest = _universal_guard(formula)
        extended = self._access_and_join(guard, formula.variables, context)
        satisfied = self._compile(to_guarded_nnf(rest), extended)
        bad = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(
                bad,
                Difference(Scan(extended.table), Scan(satisfied.table)),
            )
        )
        attrs = tuple(v.name for v in context.variables)
        bad_ctx = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(bad_ctx, Project(Scan(bad), attrs))
        )
        target = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(
                target, Difference(Scan(context.table), Scan(bad_ctx))
            )
        )
        return _Context(target, context.variables)

    def _access_and_join(
        self,
        guard: Atom,
        quantified: Tuple[Variable, ...],
        context: _Context,
    ) -> _Context:
        """Access the guard relation and join with the context.

        Produces a context over ``context.variables + new variables``.
        """
        method = method_for_guard(self.schema, guard, context.variables)
        if method is None:
            raise ExecutabilityError(
                f"no access method serves guard {guard!r} with bound "
                f"variables {[v.name for v in context.variables]}"
            )
        binding: List[Union[str, Constant]] = []
        for position in method.input_positions:
            term = guard.terms[position]
            if isinstance(term, Constant):
                binding.append(term)
            else:
                binding.append(context.attr(term))
        raw = self._fresh("A")
        positional = tuple(f"{raw}_p{i}" for i in range(guard.arity))
        input_attrs = tuple(
            dict.fromkeys(b for b in binding if isinstance(b, str))
        )
        self.commands.append(
            AccessCommand(
                target=raw,
                method=method.name,
                input_expr=Project(Scan(context.table), input_attrs),
                input_binding=tuple(binding),
                output_map=identity_output_map(positional),
            )
        )
        # Filter/rename the raw rows to the guard's term pattern.
        conditions: List[object] = []
        first: Dict[Variable, int] = {}
        for i, term in enumerate(guard.terms):
            if isinstance(term, Constant):
                conditions.append(EqConst(positional[i], term))
            elif isinstance(term, Variable):
                if term in first:
                    conditions.append(
                        EqAttr(positional[first[term]], positional[i])
                    )
                else:
                    first[term] = i
        expr: Expression = Scan(raw)
        if conditions:
            expr = Select(expr, tuple(conditions))
        keep = tuple(positional[p] for p in first.values())
        expr = Project(expr, keep)
        renaming = tuple(
            (positional[p], variable.name) for variable, p in first.items()
        )
        if renaming:
            expr = Rename(expr, renaming)
        joined = self._fresh("C")
        self.commands.append(
            MiddlewareCommand(joined, Join(Scan(context.table), expr))
        )
        new_vars = context.variables + tuple(
            v for v in first if v not in context.variables
        )
        return _Context(joined, new_vars)


# Tiny always-true / always-false selection conditions for constant
# equalities; they keep the Select node uniform.
class _AlwaysTrue:
    def holds(self, table, row) -> bool:
        """Whether the condition holds for one row of the table."""
        return True

    def __repr__(self) -> str:
        return "true"


class _AlwaysFalse:
    def holds(self, table, row) -> bool:
        """Whether the condition holds for one row of the table."""
        return False

    def __repr__(self) -> str:
        return "false"

