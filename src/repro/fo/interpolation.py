"""Constructive interpolation (Theorem 4) and its verification.

:func:`interpolate` computes an interpolant for an entailment
``phi1 |= phi2`` from a closed tableau, and checks the Theorem 4
guarantees programmatically:

1. ``phi1 |= I`` and ``I |= phi2``   (re-proved with the same prover),
2. relations occur in I only with polarities occurring in both sides,
3. constants of I occur in both sides,
4. binding patterns of I are among those of the inputs (checked when the
   inputs have defined BindPatt),
5. equality-freeness is preserved (the prover never introduces equality).

Verification is best-effort in the same sense the prover is: a bounded
search that can fail to confirm a true entailment, but never certifies a
false one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set

from repro.fo.binding import (
    BindingPattern,
    UnrestrictedQuantificationError,
    binding_patterns,
)
from repro.fo.formulas import Formula, Not, polarities
from repro.fo.tableau import ProofNotFound, TableauProver, is_parameter


@dataclass
class InterpolationResult:
    """An interpolant plus the outcome of the property checks."""

    interpolant: Formula
    entailed_by_left: Optional[bool]
    entails_right: Optional[bool]
    polarity_ok: bool
    constants_ok: bool
    binding_ok: Optional[bool]

    @property
    def fully_verified(self) -> bool:
        """All property checks passed (or were inapplicable)."""
        return bool(
            self.entailed_by_left
            and self.entails_right
            and self.polarity_ok
            and self.constants_ok
            and self.binding_ok in (True, None)
        )


def interpolate(
    phi1: Formula,
    phi2: Formula,
    prover: Optional[TableauProver] = None,
    verify: bool = True,
) -> InterpolationResult:
    """Interpolate ``phi1 |= phi2``; raises ProofNotFound if unprovable."""
    from repro.fo.normalize import normalize

    prover = prover or TableauProver()
    interpolant = prover.refute([phi1], [Not(phi2)])
    interpolant = _generalize_one_sided_constants(interpolant, phi1, phi2)
    interpolant = normalize(interpolant)
    entailed = entails = None
    if verify:
        entailed, entails = verify_interpolant(
            phi1, interpolant, phi2, prover
        )
    return InterpolationResult(
        interpolant=interpolant,
        entailed_by_left=entailed,
        entails_right=entails,
        polarity_ok=_polarity_ok(phi1, interpolant, phi2),
        constants_ok=_constants_ok(phi1, interpolant, phi2),
        binding_ok=_binding_ok(phi1, interpolant, phi2),
    )


def _generalize_one_sided_constants(
    interpolant: Formula, phi1: Formula, phi2: Formula
) -> Formula:
    """Quantify out constants that occur on only one side (Thm 4 item 3).

    A constant occurring only in ``phi1`` is existentially generalized
    (``phi1 |= I(c)`` gives ``phi1 |= exists z I(z)``, and since c is
    absent from ``phi2``, ``I(c) |= phi2`` gives ``exists z I(z) |=
    phi2``); a constant only in ``phi2`` is dually universalized.
    """
    from itertools import count

    from repro.fo.formulas import Exists, Forall
    from repro.fo.tableau import _replace_constant
    from repro.logic.terms import Variable

    shared = phi1.constants() & phi2.constants()
    left_only = phi1.constants() - shared
    fresh = count()
    result = interpolant
    for constant in sorted(result.constants()):
        if constant in shared or is_parameter(constant):
            continue
        variable = Variable(f"c{next(fresh)}")
        result = _replace_constant(result, constant, variable)
        if constant in left_only:
            result = Exists((variable,), result)
        else:
            result = Forall((variable,), result)
    return result


def verify_interpolant(
    phi1: Formula,
    interpolant: Formula,
    phi2: Formula,
    prover: Optional[TableauProver] = None,
) -> tuple:
    """(phi1 |= I proved?, I |= phi2 proved?) -- both best-effort."""
    prover = prover or TableauProver()
    return (
        prover.entails([phi1], interpolant),
        prover.entails([interpolant], phi2),
    )


def _polarity_ok(
    phi1: Formula, interpolant: Formula, phi2: Formula
) -> bool:
    """Theorem 4 item 2: polarity containment on both sides."""
    left = polarities(phi1)
    right = polarities(phi2)
    for relation, signs in polarities(interpolant).items():
        for sign in signs:
            if sign not in left.get(relation, set()):
                return False
            if sign not in right.get(relation, set()):
                return False
    return True


def _constants_ok(
    phi1: Formula, interpolant: Formula, phi2: Formula
) -> bool:
    """Theorem 4 item 3: shared constants only (parameters excluded)."""
    shared = phi1.constants() & phi2.constants()
    return all(
        constant in shared
        for constant in interpolant.constants()
        if not is_parameter(constant)
    )


def _binding_ok(
    phi1: Formula, interpolant: Formula, phi2: Formula
) -> Optional[bool]:
    """Theorem 4 item 4; None when some BindPatt is undefined."""
    try:
        allowed: Set[BindingPattern] = set(binding_patterns(phi1))
        allowed |= set(binding_patterns(phi2))
        mine = binding_patterns(interpolant)
    except UnrestrictedQuantificationError:
        return None
    # A pattern with more bound positions is servable whenever one with
    # fewer bound positions is: compare up to that monotonicity.
    for pattern in mine:
        if not any(
            pattern.relation == base.relation
            and base.bound_positions <= pattern.bound_positions
            for base in allowed
        ):
            return False
    return True
