"""Binding patterns: the paper's ``BindPatt`` semantics.

``BindPatt(phi)`` collects, per relation occurrence used in (guarded)
quantification, the set of argument positions whose values are already
bound when the quantifier is evaluated inductively -- the access pattern a
naive evaluator would need.  The definition is partial: formulas with
*unrestricted* quantifiers (e.g. ``exists x . not P(x)``) have no binding
pattern and raise :class:`UnrestrictedQuantificationError`, exactly as in
the paper (which notes every active-domain formula can be rewritten into
restricted form).

A top-level positive atom is treated as ``BindPatt(R(t)) = (R, all
positions)``; a quantified guard ``exists y (R(t, y) & phi)`` or
``forall y (R(t, y) -> phi)`` contributes ``(R, { i : t_i not in y })``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Variable


class UnrestrictedQuantificationError(ValueError):
    """Raised when BindPatt is undefined for a formula."""


@dataclass(frozen=True)
class BindingPattern:
    """A relation plus the positions bound at evaluation time."""

    relation: str
    bound_positions: FrozenSet[int]

    def __repr__(self) -> str:
        inner = ",".join(str(p) for p in sorted(self.bound_positions))
        return f"({self.relation},{{{inner}}})"


def binding_patterns(formula: Formula) -> FrozenSet[BindingPattern]:
    """``BindPatt`` of a formula, per the paper's induction."""
    out: Set[BindingPattern] = set()
    _collect(formula, out)
    return frozenset(out)


def _guard_pattern(atom: Atom, quantified: Tuple[Variable, ...]) -> BindingPattern:
    bound = frozenset(
        i
        for i, term in enumerate(atom.terms)
        if not (isinstance(term, Variable) and term in quantified)
    )
    return BindingPattern(atom.relation, bound)


def _collect(formula: Formula, out: Set[BindingPattern]) -> None:
    if isinstance(formula, (Top, Bottom, Eq)):
        return
    if isinstance(formula, FOAtom):
        out.add(
            BindingPattern(
                formula.atom.relation,
                frozenset(range(formula.atom.arity)),
            )
        )
        return
    if isinstance(formula, Not):
        _collect(formula.inner, out)
        return
    if isinstance(formula, (And, Or)):
        for part in formula.parts:
            _collect(part, out)
        return
    if isinstance(formula, Implies):
        _collect(formula.left, out)
        _collect(formula.right, out)
        return
    if isinstance(formula, Exists):
        guard, rest = _existential_guard(formula)
        out.add(_guard_pattern(guard, formula.variables))
        _collect(rest, out)
        return
    if isinstance(formula, Forall):
        guard, rest = _universal_guard(formula)
        out.add(_guard_pattern(guard, formula.variables))
        _collect(rest, out)
        return
    raise TypeError(f"unknown formula node {formula!r}")


def _existential_guard(formula: Exists) -> Tuple[Atom, Formula]:
    """Split ``exists y (R(..) & phi)``; the guard must cover the ys."""
    body = formula.body
    if isinstance(body, FOAtom):
        guard, rest = body.atom, Top()
    elif isinstance(body, And) and body.parts and isinstance(
        body.parts[0], FOAtom
    ):
        guard, rest = body.parts[0].atom, And(*body.parts[1:])
    else:
        raise UnrestrictedQuantificationError(
            f"existential quantifier without a guard atom: {formula!r}"
        )
    _check_guard_covers(guard, formula.variables, formula)
    return guard, rest


def _universal_guard(formula: Forall) -> Tuple[Atom, Formula]:
    """Split ``forall y (R(..) -> phi)``; the guard must cover the ys."""
    body = formula.body
    if isinstance(body, Implies) and isinstance(body.left, FOAtom):
        guard, rest = body.left.atom, body.right
    else:
        raise UnrestrictedQuantificationError(
            f"universal quantifier without a guard implication: {formula!r}"
        )
    _check_guard_covers(guard, formula.variables, formula)
    return guard, rest


def _check_guard_covers(
    guard: Atom, quantified: Tuple[Variable, ...], formula: Formula
) -> None:
    guard_vars = set(guard.variables())
    missing = [v for v in quantified if v not in guard_vars]
    if missing:
        raise UnrestrictedQuantificationError(
            f"quantified variables {missing} not covered by guard "
            f"{guard!r} in {formula!r}"
        )
