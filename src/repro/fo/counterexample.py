"""Counterexamples to access-determinacy (the proof of Claim 1, run).

Claim 1's proof is constructive in the negative direction: when ``Q``
does **not** entail ``InferredAccQ`` over ``AcSch<->(S0)``, a model of
the axioms satisfying ``Q and not InferredAccQ`` splits into two
instances -- ``I1`` (the original relations) and ``I2`` (the
inferred-accessible relations, renamed back) -- that have the *same
accessible part* while ``Q`` holds in ``I1`` and not in ``I2``.  No plan
can distinguish them, so no plan answers ``Q``.

:func:`determinacy_counterexample` executes exactly that construction:
chase the canonical database of Q with the bidirectional axioms to a
genuine fixpoint; if ``InferredAccQ`` never matched, read the two
instances off the final configuration (labelled nulls become fresh
constants).  The returned pair is a concrete, machine-checkable witness:
``accessible_part(schema, I1) == accessible_part(schema, I2)`` and the
boolean query evaluates differently -- both facts are verified by the
test suite rather than trusted.

Only *boolean* queries are supported (for non-boolean ones the
construction needs tuple-level bookkeeping that Claim 1 hand-waves).
``None`` is returned when the query IS determined or when the bounded
chase could not certify a fixpoint.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.data.instance import Instance
from repro.logic.queries import ConjunctiveQuery, QueryError
from repro.logic.terms import Constant, Null, NullFactory, Term
from repro.planner.proof_to_plan import success_match
from repro.schema.accessible import (
    AccessibleSchema,
    Variant,
    is_accessed_name,
    is_infacc_name,
    original_name,
)
from repro.schema.core import Schema


def determinacy_counterexample(
    schema: Schema,
    query: ConjunctiveQuery,
    policy: Optional[ChasePolicy] = None,
) -> Optional[Tuple[Instance, Instance]]:
    """Two same-accessible-part instances on which Q differs, or None."""
    if not query.is_boolean:
        raise QueryError(
            "counterexample construction supports boolean queries only"
        )
    acc = AccessibleSchema(schema, Variant.BIDIRECTIONAL)
    facts, frozen = query.canonical_database()
    config = ChaseConfiguration(facts)
    for fact in acc.initial_accessible_facts():
        config.add(fact)
    result = chase_to_fixpoint(
        config,
        list(acc.rules),
        NullFactory("cx"),
        policy or ChasePolicy(max_firings=50_000),
    )
    if not result.is_complete:
        return None  # cannot certify the model is a genuine fixpoint
    if success_match(config, query, frozen) is not None:
        return None  # determined: no counterexample exists
    grounding: Dict[Null, Constant] = {}

    def ground(term: Term) -> Constant:
        """Rename labelled nulls to fresh constants, consistently."""
        if isinstance(term, Null):
            if term not in grounding:
                grounding[term] = Constant(f"cx_{term.name}")
            return grounding[term]
        assert isinstance(term, Constant)
        return term

    original = Instance()
    inferred = Instance()
    schema_relations = {relation.name for relation in schema.relations}
    for fact in config:
        terms = tuple(ground(t) for t in fact.terms)
        if fact.relation in schema_relations:
            original.add(fact.relation, terms)
        elif is_infacc_name(fact.relation):
            inferred.add(original_name(fact.relation), terms)
    return original, inferred
