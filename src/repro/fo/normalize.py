"""Formula normalization: miniscoping, alpha-renaming, deduplication.

Tableau-extracted interpolants are correct but syntactically noisy: wide
disjunctions of variants of the same atom under one big quantifier
prefix.  This module cleans them up:

* :func:`drop_unused_quantifiers` removes bound variables that do not
  occur in the body,
* :func:`push_quantifiers` miniscopes -- ``exists z (A or B)`` becomes
  ``exists z A or exists z B`` (each keeping only the variables it
  uses); dually for ``forall`` over conjunctions,
* :func:`alpha_normalize` renames bound variables canonically so that
  alpha-equivalent subformulas become syntactically equal,
* flattening + deduplication of ``And``/``Or`` arguments.

:func:`normalize` composes all of them; it preserves logical equivalence
(each step is a classical equivalence) and is what the interpolation
pipeline applies before verification.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)
from repro.fo.tableau import simplify
from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Variable


def normalize(formula: Formula) -> Formula:
    """Simplify, miniscope, alpha-normalize and deduplicate."""
    result = simplify(formula)
    result = push_quantifiers(result)
    result = alpha_normalize(result)
    result = _dedupe(result)
    return simplify(result)


def drop_unused_quantifiers(formula: Formula) -> Formula:
    """Remove quantified variables that are not free in the body."""
    if isinstance(formula, (Exists, Forall)):
        body = drop_unused_quantifiers(formula.body)
        used = tuple(
            v for v in formula.variables if v in body.free_variables()
        )
        if not used:
            return body
        return type(formula)(used, body)
    return _map_children(formula, drop_unused_quantifiers)


def push_quantifiers(formula: Formula) -> Formula:
    """Miniscope quantifiers through their distributive connective."""
    formula = drop_unused_quantifiers(formula)
    if isinstance(formula, Exists):
        body = push_quantifiers(formula.body)
        if isinstance(body, Or):
            return Or(
                *(
                    push_quantifiers(Exists(formula.variables, part))
                    for part in body.parts
                )
            )
        return drop_unused_quantifiers(Exists(formula.variables, body))
    if isinstance(formula, Forall):
        body = push_quantifiers(formula.body)
        if isinstance(body, And):
            return And(
                *(
                    push_quantifiers(Forall(formula.variables, part))
                    for part in body.parts
                )
            )
        return drop_unused_quantifiers(Forall(formula.variables, body))
    return _map_children(formula, push_quantifiers)


def alpha_normalize(formula: Formula) -> Formula:
    """Rename bound variables canonically by binder depth.

    Depth-based (de Bruijn-style) names make alpha-equivalent *sibling*
    subformulas syntactically equal, which is what lets ``_dedupe``
    collapse them.  Nested scopes get increasing depths, so no capture
    can occur.
    """
    return _alpha(formula, {}, 0)


def _alpha(
    formula: Formula,
    renaming: Dict[Variable, Variable],
    depth: int,
) -> Formula:
    if isinstance(formula, FOAtom):
        terms = tuple(
            renaming.get(t, t) if isinstance(t, Variable) else t
            for t in formula.atom.terms
        )
        return FOAtom(Atom(formula.atom.relation, terms))
    if isinstance(formula, Eq):
        left = renaming.get(formula.left, formula.left)
        right = renaming.get(formula.right, formula.right)
        return Eq(left, right)
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_alpha(formula.inner, renaming, depth))
    if isinstance(formula, And):
        return And(*(_alpha(p, renaming, depth) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(*(_alpha(p, renaming, depth) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(
            _alpha(formula.left, renaming, depth),
            _alpha(formula.right, renaming, depth),
        )
    if isinstance(formula, (Exists, Forall)):
        inner = dict(renaming)
        fresh = []
        for offset, variable in enumerate(formula.variables):
            new = Variable(f"v{depth + offset}")
            inner[variable] = new
            fresh.append(new)
        return type(formula)(
            tuple(fresh),
            _alpha(formula.body, inner, depth + len(formula.variables)),
        )
    raise TypeError(f"unknown formula node {formula!r}")


def _dedupe(formula: Formula) -> Formula:
    """Remove duplicate arguments of flattened And/Or nodes."""
    if isinstance(formula, And):
        seen: Dict[Formula, None] = {}
        for part in (_dedupe(p) for p in formula.parts):
            seen.setdefault(part)
        parts = tuple(seen)
        return parts[0] if len(parts) == 1 else And(*parts)
    if isinstance(formula, Or):
        seen = {}
        for part in (_dedupe(p) for p in formula.parts):
            seen.setdefault(part)
        parts = tuple(seen)
        return parts[0] if len(parts) == 1 else Or(*parts)
    return _map_children(formula, _dedupe)


def _map_children(formula: Formula, mapper) -> Formula:
    """Apply ``mapper`` to immediate subformulas, rebuilding the node."""
    if isinstance(formula, Not):
        return Not(mapper(formula.inner))
    if isinstance(formula, And):
        return And(*(mapper(p) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(*(mapper(p) for p in formula.parts))
    if isinstance(formula, Implies):
        return Implies(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(formula.variables, mapper(formula.body))
    return formula
