"""Plan cost functions (Section 2, "Cost").

The framework works with any black-box cost that is *monotone*: appending
access commands never lowers a plan's cost.  The paper's default is the
*simple cost function* -- each method has a positive weight; a plan costs
the sum of the weights of its access commands (the same method invoked by
two commands is charged twice).  Theorem 9's optimality guarantee is
stated for simple cost functions; the cardinality-aware estimator here is
the kind of "generic" monotone cost the search also accepts.
"""

from repro.cost.bounds import SizeBounds
from repro.cost.calibration import CalibrationStore, MethodCalibration
from repro.cost.functions import (
    CardinalityCostFunction,
    CostFunction,
    CountingCostFunction,
    SimpleCostFunction,
    is_monotone_on,
)

__all__ = [
    "CalibrationStore",
    "CardinalityCostFunction",
    "CostFunction",
    "CountingCostFunction",
    "MethodCalibration",
    "SimpleCostFunction",
    "SizeBounds",
    "is_monotone_on",
]
