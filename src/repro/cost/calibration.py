"""Feedback-driven cost calibration from observed executions.

The planner's :class:`~repro.cost.functions.CardinalityCostFunction`
historically *guessed*: a flat ``select_selectivity`` of 0.5 and a flat
``default_cardinality`` for every access's output.  But the runtime has
been recording the truth since PR 3 -- :class:`~repro.exec.stats.ExecStats`
carries, per access command, how many distinct input tuples were
dispatched, how many raw rows the source answered with, and how many
rows survived the output mapping.  This module closes the loop:

* :class:`MethodCalibration` accumulates those counters per
  (relation, access method), with a log2 fan-out histogram for
  operators inspecting the distribution;
* :class:`CalibrationStore` aggregates observations across runs
  (thread-safe, deterministic -- plain integer sums), answers
  ``fan_out(method)`` / ``selectivity(method)`` queries with
  hit/fallback accounting, and persists itself as one versioned,
  atomically-written JSON file (the same idioms as
  :mod:`repro.planner.plan_cache`'s disk tier) so estimates survive
  restarts.

Two derived statistics feed the estimator:

``fan_out(method)``
    mean *emitted* rows per dispatched input tuple -- the calibrated
    replacement for the flat per-access output-cardinality guess.
``selectivity(method)``
    emitted / fetched rows -- the fraction of raw source answers that
    survive the output mapping's equality filter and set-semantics
    dedup.  By construction this lies in ``(0, 1]`` (clamped away from
    zero so downstream estimates stay positive), which is exactly the
    sound range the estimator's ``select_selectivity`` knob demands.

**Cache-key soundness.**  :meth:`CalibrationStore.identity` exposes a
monotone ``version`` plus a content digest; a cost function holding a
store includes that identity in its own
:meth:`~repro.cost.functions.CostFunction.identity`, so every
observation batch that moves the estimates lands plan-cache lookups on
a *different* key.  A cached best plan is only best relative to the
estimates that picked it -- when the estimates move, the stale entry
becomes unreachable instead of wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import CostModelError

#: Format marker + version stamped into the on-disk store.
#: Version 2 added the content checksum (stores without one are
#: treated as alien -- an empty store, re-filled by observation).
CALIBRATION_KIND = "repro.cost-calibration"
CALIBRATION_VERSION = 2


def store_checksum(entry: Mapping) -> str:
    """BLAKE2b content checksum of the on-disk store (sans checksum).

    Same discipline as the plan cache's disk tier: canonical JSON of
    everything but the checksum field, so a corrupt store is detected
    and quarantined instead of silently mis-calibrating the planner.
    """
    payload = json.dumps(
        {k: v for k, v in entry.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

#: Selectivities are clamped into (EPSILON, 1.0]: zero would make
#: downstream size estimates vanish (and divide costs to nothing).
EPSILON = 1e-6


def _fanout_bucket(fan_out: float) -> str:
    """The log2 histogram bucket label of one per-command fan-out."""
    if fan_out <= 0:
        return "0"
    power = 0
    ceiling = 1
    while ceiling < fan_out and power < 40:
        power += 1
        ceiling <<= 1
    return f"<=2^{power}"


@dataclass
class MethodCalibration:
    """Accumulated true row flow for one (relation, access method)."""

    method: str
    relation: str = ""
    commands: int = 0  # access-command executions observed
    dispatched: int = 0  # distinct input tuples sent to the source
    fetched: int = 0  # raw rows the source answered with
    emitted: int = 0  # rows kept after output mapping + set dedup
    fanout_histogram: Dict[str, int] = field(default_factory=dict)

    def observe(self, dispatched: int, fetched: int, emitted: int) -> None:
        """Fold one executed access command's counters in."""
        self.commands += 1
        self.dispatched += dispatched
        self.fetched += fetched
        self.emitted += emitted
        if dispatched > 0:
            bucket = _fanout_bucket(emitted / dispatched)
            self.fanout_histogram[bucket] = (
                self.fanout_histogram.get(bucket, 0) + 1
            )

    @property
    def fan_out(self) -> Optional[float]:
        """Mean emitted rows per dispatched tuple (None: no dispatches)."""
        if self.dispatched <= 0:
            return None
        return self.emitted / self.dispatched

    @property
    def selectivity(self) -> Optional[float]:
        """Observed emitted/fetched ratio, clamped into (0, 1]."""
        if self.fetched <= 0:
            return None
        return min(1.0, max(EPSILON, self.emitted / self.fetched))

    def as_dict(self) -> Dict:
        """A JSON-able representation (key-sorted histogram)."""
        return {
            "method": self.method,
            "relation": self.relation,
            "commands": self.commands,
            "dispatched": self.dispatched,
            "fetched": self.fetched,
            "emitted": self.emitted,
            "fanout_histogram": {
                bucket: self.fanout_histogram[bucket]
                for bucket in sorted(self.fanout_histogram)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MethodCalibration":
        """Inverse of :meth:`as_dict` (disk-tier rehydration)."""
        return cls(
            method=str(data["method"]),
            relation=str(data.get("relation", "")),
            commands=int(data.get("commands", 0)),
            dispatched=int(data.get("dispatched", 0)),
            fetched=int(data.get("fetched", 0)),
            emitted=int(data.get("emitted", 0)),
            fanout_histogram={
                str(k): int(v)
                for k, v in dict(data.get("fanout_histogram", {})).items()
            },
        )


class CalibrationStore:
    """Thread-safe per-method calibration with an optional disk tier.

    ``min_observations`` is the evidence floor: estimate queries fall
    back to the caller's default (and count a fallback) until a method
    has been seen in at least that many access commands, so one noisy
    run cannot swing the planner.

    Determinism: aggregation is pure integer summation, so feeding the
    same :class:`~repro.exec.stats.ExecStats` stream in the same order
    always yields the same estimates -- and every counter is monotone
    non-decreasing under added observations (the property tests in
    ``tests/cost/test_calibration.py`` pin both).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        min_observations: int = 1,
    ) -> None:
        if min_observations < 1:
            raise CostModelError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.path = path
        self.min_observations = min_observations
        self._lock = threading.Lock()
        # Serializes disk writes: _persist runs outside the main lock
        # (so estimate readers never wait on IO), but two persists must
        # not interleave on the temp-then-rename protocol.
        self._io_lock = threading.Lock()
        self._methods: Dict[str, MethodCalibration] = {}
        self.version = 0
        # Estimate-query accounting (exposed in QueryService.health()).
        self.hits = 0
        self.fallbacks = 0
        self.quarantined = 0
        self.persist_errors = 0
        if path is not None and os.path.exists(path):
            self._load(path)

    # ----------------------------------------------------------- observe
    def observe(
        self,
        method: str,
        *,
        relation: str = "",
        dispatched: int,
        fetched: int,
        emitted: int,
    ) -> None:
        """Fold one access command's true counters in (bumps version)."""
        with self._lock:
            self._observe_locked(
                method, relation, dispatched, fetched, emitted
            )
            self.version += 1
        self._persist()

    def observe_stats(
        self,
        stats,
        relation_of: Optional[Mapping[str, str]] = None,
    ) -> int:
        """Aggregate every access command of an ``ExecStats`` record.

        Only commands that carry their method name and actually
        dispatched something are evidence.  Returns the number of
        commands folded in; the store version is bumped once per batch
        that contained any, so one plan run moves plan-cache keys at
        most once.
        """
        observed = 0
        with self._lock:
            for command in stats.commands:
                if command.kind != "access" or command.method is None:
                    continue
                if command.dispatched <= 0:
                    continue
                relation = (
                    relation_of.get(command.method, "")
                    if relation_of
                    else ""
                )
                self._observe_locked(
                    command.method,
                    relation,
                    command.dispatched,
                    command.rows_fetched,
                    command.rows_out,
                )
                observed += 1
            if observed:
                self.version += 1
        if observed:
            self._persist()
        return observed

    def _observe_locked(
        self,
        method: str,
        relation: str,
        dispatched: int,
        fetched: int,
        emitted: int,
    ) -> None:
        entry = self._methods.get(method)
        if entry is None:
            entry = MethodCalibration(method=method, relation=relation)
            self._methods[method] = entry
        if relation and not entry.relation:
            entry.relation = relation
        entry.observe(dispatched, fetched, emitted)

    # ---------------------------------------------------------- estimate
    def fan_out(self, method: str) -> Optional[float]:
        """Calibrated mean output rows per dispatched input tuple.

        Returns None (and counts a fallback) when the method has fewer
        than ``min_observations`` observed commands.
        """
        with self._lock:
            entry = self._methods.get(method)
            if (
                entry is None
                or entry.commands < self.min_observations
                or entry.fan_out is None
            ):
                self.fallbacks += 1
                return None
            self.hits += 1
            return entry.fan_out

    def selectivity(self, method: str) -> Optional[float]:
        """Calibrated emitted/fetched selectivity in (0, 1], or None."""
        with self._lock:
            entry = self._methods.get(method)
            if (
                entry is None
                or entry.commands < self.min_observations
                or entry.selectivity is None
            ):
                self.fallbacks += 1
                return None
            self.hits += 1
            return entry.selectivity

    def select_selectivity(self) -> Optional[float]:
        """The observed global selectivity, pooled over every method.

        This is the calibrated replacement for the estimator's flat
        ``select_selectivity`` knob: total emitted over total fetched
        rows, clamped into (0, 1].  None until anything was fetched.
        """
        with self._lock:
            fetched = sum(m.fetched for m in self._methods.values())
            emitted = sum(m.emitted for m in self._methods.values())
            if fetched <= 0:
                self.fallbacks += 1
                return None
            self.hits += 1
            return min(1.0, max(EPSILON, emitted / fetched))

    # ---------------------------------------------------------- identity
    def identity(self) -> Dict[str, object]:
        """Version + content digest, for cost-model identities.

        Two stores with equal identities yield equal estimates, which is
        what lets a cost function embed this in its own ``identity()``
        (and hence in plan-cache keys): any observation batch bumps the
        version *and* moves the digest, so stale cached plans become
        unreachable rather than wrong.
        """
        with self._lock:
            payload = json.dumps(
                [
                    self._methods[name].as_dict()
                    for name in sorted(self._methods)
                ],
                sort_keys=True,
                separators=(",", ":"),
            )
            return {
                "version": self.version,
                "digest": hashlib.blake2b(
                    payload.encode("utf-8"), digest_size=8
                ).hexdigest(),
            }

    # -------------------------------------------------------- inspection
    @property
    def observations(self) -> int:
        """Total access commands observed across all methods."""
        with self._lock:
            return sum(m.commands for m in self._methods.values())

    def method_calibration(
        self, method: str
    ) -> Optional[MethodCalibration]:
        """The accumulator for one method (None when never observed)."""
        with self._lock:
            return self._methods.get(method)

    def counters(self) -> Dict[str, object]:
        """A JSON-able snapshot (surfaced by ``QueryService.health()``)."""
        with self._lock:
            return {
                "version": self.version,
                "methods": len(self._methods),
                "observations": sum(
                    m.commands for m in self._methods.values()
                ),
                "dispatched": sum(
                    m.dispatched for m in self._methods.values()
                ),
                "emitted": sum(m.emitted for m in self._methods.values()),
                "hits": self.hits,
                "fallbacks": self.fallbacks,
                "quarantined": self.quarantined,
                "persist_errors": self.persist_errors,
                "persistent": bool(self.path),
                "min_observations": self.min_observations,
            }

    def summary(self) -> str:
        """A one-line human-readable digest."""
        counters = self.counters()
        return (
            f"calibration v{counters['version']}: "
            f"{counters['observations']} commands over "
            f"{counters['methods']} methods "
            f"({counters['hits']} hits / {counters['fallbacks']} fallbacks)"
        )

    # --------------------------------------------------------- disk tier
    def as_dict(self) -> Dict:
        """The full JSON-able store state (what the disk tier holds)."""
        with self._lock:
            return {
                "format": CALIBRATION_KIND,
                "version": CALIBRATION_VERSION,
                "store_version": self.version,
                "methods": [
                    self._methods[name].as_dict()
                    for name in sorted(self._methods)
                ],
            }

    def _persist(self) -> None:
        """Atomically rewrite the disk tier (never raises into serving).

        Serialized under a dedicated IO lock -- two worker threads
        persisting concurrently must not race on the temp file -- and
        the temp name is thread-unique besides, so even an unexpected
        interleaving cannot tear the rename.  A failed persist (disk
        full, permissions) is counted, not raised: losing one disk
        snapshot costs nothing (the store re-persists on the next
        observation), whereas an exception here would detonate inside
        request accounting.
        """
        if self.path is None:
            return
        entry = self.as_dict()
        entry["checksum"] = store_checksum(entry)
        tmp = (
            f"{self.path}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            with self._io_lock:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True, indent=1)
                os.replace(tmp, self.path)
        except OSError:
            with self._lock:
                self.persist_errors += 1

    def _quarantine(self, path: str) -> None:
        """Move a corrupt store aside and continue empty (never raise).

        The store re-fills from live observations (every served request
        feeds it), so quarantine-and-continue converges back to
        calibrated estimates; meanwhile the estimator's documented
        fallback defaults apply.  The rotten file is kept as
        ``<path>.quarantined`` for inspection and the event counted.
        """
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:  # pragma: no cover -- racing cleanup is fine
            pass
        self.quarantined += 1

    def _load(self, path: str) -> None:
        """Rehydrate from disk; corrupt stores are quarantined, alien
        ones ignored -- either way this store starts empty and serves."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:  # pragma: no cover -- checked by caller
            return
        except (OSError, ValueError):
            self._quarantine(path)
            return
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CALIBRATION_KIND
            or entry.get("version") != CALIBRATION_VERSION
        ):
            return
        checksum = entry.get("checksum")
        if not isinstance(checksum, str) or checksum != store_checksum(entry):
            self._quarantine(path)
            return
        try:
            methods = [
                MethodCalibration.from_dict(item)
                for item in entry.get("methods", ())
            ]
            store_version = int(entry.get("store_version", 0))
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            return
        self._methods = {m.method: m for m in methods}
        self.version = store_version

    def __repr__(self) -> str:
        return f"CalibrationStore({self.summary()})"
