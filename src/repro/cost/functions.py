"""Concrete cost functions over plans and command sequences.

All cost functions expose two entry points:

* :meth:`CostFunction.plan_cost` -- the cost of a complete plan,
* :meth:`CostFunction.commands_cost` -- the cost of a command prefix,
  which is what Algorithm 1 charges partial plans with during search.

Monotonicity (appending commands never decreases cost) is what makes the
cost-bound pruning of Section 5 sound; :func:`is_monotone_on` provides a
programmatic spot-check used by the test suite.

Because every search-node expansion only *appends* commands to the
parent's prefix, cost functions additionally support an incremental
path: :meth:`CostFunction.cost_state` yields an opaque accumulator and
:meth:`CostFunction.delta_cost` extends it with the appended commands,
charging O(|new commands|) per expansion instead of re-walking the whole
prefix.  The base-class default falls back to a full recompute, so
third-party cost functions stay correct without opting in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.cost.bounds import SizeBounds
from repro.cost.calibration import CalibrationStore
from repro.errors import InvalidCostParameter
from repro.plans.commands import AccessCommand, Command, MiddlewareCommand
from repro.plans.expressions import (
    Difference,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union as UnionExpr,
)
from repro.plans.plan import Plan
from repro.schema.core import Schema


class CostFunction:
    """Base class: a monotone real-valued cost on command sequences."""

    def commands_cost(self, commands: Sequence[Command]) -> float:
        """Monotone cost of a command prefix."""
        raise NotImplementedError

    def cost_state(self) -> object:
        """The initial opaque accumulator for :meth:`delta_cost`.

        The default state is the command prefix itself, which makes the
        default ``delta_cost`` a full recompute -- correct for any
        subclass.  Subclasses override both methods together.
        """
        return ()

    def delta_cost(
        self, state: object, new_commands: Sequence[Command]
    ) -> Tuple[object, float]:
        """Charge only the appended commands of a growing prefix.

        Returns ``(next_state, total_cost)`` where ``total_cost`` equals
        ``commands_cost(prefix + new_commands)``; threading ``next_state``
        through successive extensions is what lets Algorithm 1 cost each
        expansion in O(|new_commands|).
        """
        commands = tuple(state) + tuple(new_commands)
        return commands, self.commands_cost(commands)

    def plan_cost(self, plan: Plan) -> float:
        """Cost of a complete plan (defaults to its command list)."""
        return self.commands_cost(plan.commands)

    def method_cost(self, method_name: str) -> float:
        """Cost of a single hypothetical access command on the method.

        Used by search heuristics to order candidate methods cheapest
        first; subclasses with data-dependent costs may approximate.
        """
        probe = AccessCommand(
            target="_probe",
            method=method_name,
            input_expr=Singleton(),
            input_binding=(),
            output_map=(),
        )
        return self.commands_cost([probe])

    def identity(self) -> Dict[str, object]:
        """A JSON-able description of this cost model and its knobs.

        Two cost functions with equal identities must assign equal
        costs to every plan -- that is the contract that lets the
        identity participate in plan-cache keys (a cached best plan is
        only best *relative to* the cost model that picked it).  The
        base implementation covers kind-only cost functions; subclasses
        with knobs override and include every knob, key-sorted.
        """
        return {"kind": type(self).__name__}

    def min_access_charge(self) -> float:
        """A sound lower bound on what *any* access command adds.

        Branch-and-bound pruning in Algorithm 1 uses this as an
        admissible completion estimate: every descendant of a
        non-successful search node must append at least one access
        command, so its cost is at least ``node.cost +
        min_access_charge()``.  The base implementation returns 0.0
        (no claim beyond monotonicity -- pruning degrades to a plain
        incumbent comparison); subclasses with known positive charges
        override.
        """
        return 0.0


@dataclass
class SimpleCostFunction(CostFunction):
    """The paper's simple cost: sum of per-method weights per command."""

    per_method: Mapping[str, float]
    default: float = 1.0

    @classmethod
    def from_schema(cls, schema: Schema) -> "SimpleCostFunction":
        """Use the cost declared on each access method."""
        return cls({m.name: m.cost for m in schema.methods})

    def commands_cost(self, commands: Sequence[Command]) -> float:
        """Monotone cost of a command prefix."""
        return sum(
            self.per_method.get(c.method, self.default)
            for c in commands
            if isinstance(c, AccessCommand)
        )

    def cost_state(self) -> float:
        """Running total; per-method weights are context-free."""
        return 0.0

    def delta_cost(
        self, state: float, new_commands: Sequence[Command]
    ) -> Tuple[float, float]:
        """O(|new_commands|): add the appended commands' weights."""
        total = state + self.commands_cost(new_commands)
        return total, total

    def identity(self) -> Dict[str, object]:
        """Kind plus the full per-method weight table and default."""
        return {
            "kind": type(self).__name__,
            "per_method": {
                name: float(self.per_method[name])
                for name in sorted(self.per_method)
            },
            "default": float(self.default),
        }

    def min_access_charge(self) -> float:
        """The cheapest declared weight (or the default, if cheaper)."""
        weights = [float(w) for w in self.per_method.values()]
        weights.append(float(self.default))
        return max(0.0, min(weights))


@dataclass
class CountingCostFunction(CostFunction):
    """Every access command costs one unit (pure access counting)."""

    def commands_cost(self, commands: Sequence[Command]) -> float:
        """Monotone cost of a command prefix."""
        return float(
            sum(1 for c in commands if isinstance(c, AccessCommand))
        )

    def cost_state(self) -> float:
        """Running total; counting is context-free."""
        return 0.0

    def delta_cost(
        self, state: float, new_commands: Sequence[Command]
    ) -> Tuple[float, float]:
        """O(|new_commands|): count the appended access commands."""
        total = state + self.commands_cost(new_commands)
        return total, total

    def min_access_charge(self) -> float:
        """Every access command costs exactly one unit."""
        return 1.0


@dataclass
class CardinalityCostFunction(CostFunction):
    """A monotone, cardinality-aware estimator.

    Each access command is charged ``per_access + per_tuple * |E|`` where
    ``|E|`` is the estimated number of input tuples fed to the method,
    propagated through the expression tree from per-relation cardinality
    statistics (``table_estimates`` maps temporary-table name prefixes are
    not needed: estimates flow through the command sequence itself).

    This is the "generic black box" flavour of cost the search accepts;
    it stays monotone because every access command adds a positive charge.

    Three optional refinements (all off by default, all preserving
    monotonicity):

    ``per_method_access``
        per-method access weights overriding the flat ``per_access``
        (absent methods keep the flat charge) -- the estimator's
        counterpart of :class:`SimpleCostFunction`'s weight table.
    ``calibration``
        a :class:`~repro.cost.calibration.CalibrationStore`: an access's
        output estimate becomes ``observed_fan_out(method) * fan_in``
        instead of the flat per-relation guess, and the observed global
        selectivity replaces the flat ``select_selectivity`` knob.  The
        store's identity folds into :meth:`identity`, so plan-cache
        entries keyed on this cost model invalidate whenever new
        observations move the estimates.
    ``bounds``
        a :class:`~repro.cost.bounds.SizeBounds`: every table estimate
        is capped at its static size bound.  A cap can only *lower*
        estimates (floored at 1.0), and fan-in only scales the
        per-tuple charge, so costs stay monotone and the
        :meth:`min_access_charge` lower bound stays sound.
    """

    relation_cardinality: Mapping[str, int]
    per_access: float = 1.0
    per_tuple: float = 0.01
    join_selectivity: float = 0.5
    select_selectivity: float = 0.5
    default_cardinality: int = 100
    per_method_access: Mapping[str, float] = field(default_factory=dict)
    calibration: Optional[CalibrationStore] = None
    bounds: Optional[SizeBounds] = None

    def __post_init__(self) -> None:
        for knob in ("select_selectivity", "join_selectivity"):
            value = getattr(self, knob)
            if not (0.0 < value <= 1.0):
                raise InvalidCostParameter(
                    f"{knob} must lie in (0, 1], got {value!r}",
                    parameter=knob,
                    value=value,
                )
        for knob in ("per_access", "per_tuple"):
            value = getattr(self, knob)
            if not (value >= 0.0):
                raise InvalidCostParameter(
                    f"{knob} must be non-negative, got {value!r}",
                    parameter=knob,
                    value=value,
                )
        if self.default_cardinality < 1:
            raise InvalidCostParameter(
                "default_cardinality must be >= 1, got "
                f"{self.default_cardinality!r}",
                parameter="default_cardinality",
                value=self.default_cardinality,
            )
        for name, weight in self.per_method_access.items():
            if not (weight >= 0.0):
                raise InvalidCostParameter(
                    f"per_method_access[{name!r}] must be non-negative, "
                    f"got {weight!r}",
                    parameter="per_method_access",
                    value=weight,
                )

    def commands_cost(self, commands: Sequence[Command]) -> float:
        """Monotone cost of a command prefix."""
        estimates: Dict[str, float] = {}
        static_bounds: Dict[str, float] = {}
        total = 0.0
        for command in commands:
            total += self._advance(estimates, static_bounds, command)
        return total

    def cost_state(self) -> Tuple[float, Dict[str, float], Dict[str, float]]:
        """Running total, table-size estimates, and static bounds so far."""
        return 0.0, {}, {}

    def delta_cost(
        self,
        state: Tuple[float, Mapping[str, float], Mapping[str, float]],
        new_commands: Sequence[Command],
    ) -> Tuple[Tuple[float, Dict[str, float], Dict[str, float]], float]:
        """O(|new_commands|): the estimate dicts carry the context."""
        total, estimates, static_bounds = state
        estimates = dict(estimates)
        static_bounds = dict(static_bounds)
        for command in new_commands:
            total += self._advance(estimates, static_bounds, command)
        return (total, estimates, static_bounds), total

    def identity(self) -> Dict[str, object]:
        """Kind plus every estimator knob, key-sorted.

        When a calibration store or static bounds are attached, their
        identities are included -- a calibration version bump therefore
        changes this cost model's identity, which is exactly what makes
        :func:`repro.planner.plan_cache.plan_cache_key` land on a new
        key and forces a re-plan under the updated estimates.
        """
        identity: Dict[str, object] = {
            "kind": type(self).__name__,
            "relation_cardinality": {
                name: int(self.relation_cardinality[name])
                for name in sorted(self.relation_cardinality)
            },
            "per_access": float(self.per_access),
            "per_tuple": float(self.per_tuple),
            "join_selectivity": float(self.join_selectivity),
            "select_selectivity": float(self.select_selectivity),
            "default_cardinality": int(self.default_cardinality),
        }
        if self.per_method_access:
            identity["per_method_access"] = {
                name: float(self.per_method_access[name])
                for name in sorted(self.per_method_access)
            }
        if self.calibration is not None:
            identity["calibration"] = self.calibration.identity()
        if self.bounds is not None:
            identity["bounds"] = self.bounds.identity()
        return identity

    def min_access_charge(self) -> float:
        """Cheapest access weight plus one tuple's charge.

        Sound because every table estimate is floored at 1.0, so the
        fan-in of any future access is at least one tuple.
        """
        weights = [float(w) for w in self.per_method_access.values()]
        weights.append(float(self.per_access))
        return max(0.0, min(weights)) + float(self.per_tuple)

    def access_charge(self, method: str, fan_in: float) -> float:
        """The charge of one access command with the given fan-in."""
        weight = float(
            self.per_method_access.get(method, self.per_access)
        )
        return weight + self.per_tuple * fan_in

    def _advance(
        self,
        estimates: Dict[str, float],
        static_bounds: Dict[str, float],
        command: Command,
    ) -> float:
        """Record the command's output estimate; return its charge."""
        if isinstance(command, AccessCommand):
            fan_in = self._estimate(command.input_expr, estimates)
            fan_out = (
                self.calibration.fan_out(command.method)
                if self.calibration is not None
                else None
            )
            if fan_out is not None:
                # Calibrated: observed mean output rows per dispatched
                # input tuple, scaled by the estimated fan-in.
                out = fan_out * fan_in
            else:
                relation = self._relation_of(command)
                out = float(
                    self.relation_cardinality.get(
                        relation, self.default_cardinality
                    )
                )
            estimates[command.target] = self._capped(
                out, command, static_bounds
            )
            return self.access_charge(command.method, fan_in)
        estimates[command.target] = self._capped(
            self._estimate(command.expr, estimates),
            command,
            static_bounds,
        )
        return 0.0

    def _capped(
        self,
        estimate: float,
        command: Command,
        static_bounds: Dict[str, float],
    ) -> float:
        """Cap an output estimate at its static size bound (floor 1.0).

        The bound itself is floored at 1.0 before capping so the
        invariant "every table estimate is at least one row" -- which
        :meth:`min_access_charge` relies on -- survives empty-relation
        bounds.
        """
        if self.bounds is None:
            return max(1.0, estimate)
        if isinstance(command, AccessCommand):
            fan_in_bound = self.bounds.expression_bound(
                command.input_expr, static_bounds
            )
            bound = self.bounds.access_bound(command.method, fan_in_bound)
        else:
            bound = self.bounds.expression_bound(
                command.expr, static_bounds
            )
        static_bounds[command.target] = bound
        if math.isinf(bound):
            return max(1.0, estimate)
        return max(1.0, min(estimate, bound))

    def _effective_select_selectivity(self) -> float:
        """The observed global selectivity when calibrated, else the knob.

        The calibration's pooled emitted/fetched ratio lies in (0, 1] by
        construction, the same sound range the constructor enforces for
        the static knob, so swapping it in preserves every invariant.
        """
        if self.calibration is not None:
            observed = self.calibration.select_selectivity()
            if observed is not None:
                return observed
        return self.select_selectivity

    def _relation_of(self, command: AccessCommand) -> str:
        # Access commands do not carry the relation; the method name is the
        # stable key callers configure estimates with.
        return command.method

    def _estimate(
        self, expr: Expression, estimates: Mapping[str, float]
    ) -> float:
        if isinstance(expr, Singleton):
            return 1.0
        if isinstance(expr, Scan):
            return estimates.get(expr.table, float(self.default_cardinality))
        if isinstance(expr, (Project, Rename)):
            return self._estimate(expr.child, estimates)
        if isinstance(expr, Select):
            return max(
                1.0,
                self._effective_select_selectivity()
                * self._estimate(expr.child, estimates),
            )
        if isinstance(expr, Join):
            left = self._estimate(expr.left, estimates)
            right = self._estimate(expr.right, estimates)
            return max(1.0, self.join_selectivity * min(left, right) *
                       max(1.0, max(left, right) ** 0.5))
        if isinstance(expr, UnionExpr):
            return self._estimate(expr.left, estimates) + self._estimate(
                expr.right, estimates
            )
        if isinstance(expr, Difference):
            return self._estimate(expr.left, estimates)
        return float(self.default_cardinality)


def is_monotone_on(
    cost: CostFunction, commands: Sequence[Command]
) -> bool:
    """Spot-check monotonicity along one command sequence's prefixes."""
    previous = 0.0
    for end in range(len(commands) + 1):
        value = cost.commands_cost(commands[:end])
        if value + 1e-9 < previous:
            return False
        previous = value
    return True
