"""Static upper bounds on intermediate-relation sizes of SPJU plans.

Following the classic observation of Chen & Schneider (static derivation
of output-size bounds for relational expressions), the size of every
temporary table a plan produces can be bounded *before execution* from
nothing more than the base-relation sizes and key constraints:

* an access into relation ``R`` can never emit more rows than ``|R|``,
  and per distinct dispatched binding it emits at most ``|R|`` matches
  -- or at most **one** when the bound input positions cover a declared
  key of ``R``;
* select, project and rename never grow their input (set semantics);
* a natural join is bounded by the product of its input bounds, a union
  by the sum, a difference by its left input.

These bounds are *sound but not tight* -- they hold for every instance
with the declared sizes, so two distinct consumers may rely on them:

1. the planner's branch-and-bound search caps its cardinality
   *estimates* at the static bound (an over-estimate above a hard
   ceiling is pure noise), and
2. :meth:`repro.service.service.QueryService.submit` rejects plans
   whose static result bound already exceeds the request's
   ``ResourceBudget`` row ceiling *before* dispatching a single access
   -- a typed :class:`~repro.errors.PlanInadmissible` beats an
   execution that is guaranteed to blow its budget halfway through.

Unknown sizes bound to ``inf``; every propagation rule treats ``inf``
pessimistically (so a partial size declaration is still sound), and the
admission check is deliberately permissive on infinite bounds -- we
only reject when we can *prove* doom.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.plans.commands import AccessCommand, MiddlewareCommand
from repro.plans.expressions import (
    Difference,
    Expression,
    Join,
    Literal,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan

INF = math.inf


class SizeBounds:
    """Static size bounds for plans over one schema + size declaration.

    ``relation_sizes`` maps relation names to (upper bounds on) their
    cardinalities; relations absent from the mapping bound to ``inf``.
    ``keys`` maps relation names to declared keys, each a tuple of
    0-based positions: when an access method's input positions cover a
    key, each dispatched binding matches at most one tuple.
    """

    def __init__(
        self,
        schema,
        relation_sizes: Mapping[str, int],
        keys: Optional[Mapping[str, Sequence[Sequence[int]]]] = None,
    ) -> None:
        self.schema = schema
        self.relation_sizes: Dict[str, float] = {
            name: float(size) for name, size in relation_sizes.items()
        }
        self.keys: Dict[str, Tuple[Tuple[int, ...], ...]] = {
            name: tuple(tuple(int(p) for p in key) for key in rel_keys)
            for name, rel_keys in (keys or {}).items()
        }

    @classmethod
    def from_instance(
        cls,
        schema,
        instance,
        keys: Optional[Mapping[str, Sequence[Sequence[int]]]] = None,
    ) -> "SizeBounds":
        """Bounds with every declared relation sized from an instance.

        The instance's *current* sizes are sound bounds for replaying
        queries against that instance -- the common calibration setup.
        """
        return cls(
            schema,
            {r.name: instance.size(r.name) for r in schema.relations},
            keys=keys,
        )

    # ---------------------------------------------------------- lookups
    def relation_bound(self, relation: str) -> float:
        """The declared size bound of a base relation (inf if unknown)."""
        return self.relation_sizes.get(relation, INF)

    def per_binding_bound(self, method_name: str) -> float:
        """Max rows one distinct dispatched binding can match.

        1 when the method's input positions cover a declared key of its
        relation; otherwise the relation's size bound (every tuple could
        match).
        """
        method = self.schema.method(method_name)
        bound_positions = set(method.input_positions)
        for key in self.keys.get(method.relation, ()):
            if set(key) <= bound_positions:
                return 1.0
        return self.relation_bound(method.relation)

    def access_bound(self, method_name: str, fan_in_bound: float) -> float:
        """Upper bound on one access command's output rows.

        ``min(|R|, fan_in * per_binding)``: the output mapping sends each
        accessed relation tuple to at most one row (equality filters only
        shrink), so the relation size caps the output regardless of how
        many bindings were dispatched.  Unknown methods bound to ``inf``
        (the planner may probe hypothetical accesses).
        """
        try:
            method = self.schema.method(method_name)
        except Exception:
            return INF
        if fan_in_bound == 0.0:
            return 0.0
        return min(
            self.relation_bound(method.relation),
            fan_in_bound * self.per_binding_bound(method_name),
        )

    # ------------------------------------------------------ propagation
    def expression_bound(
        self, expr: Expression, table_bounds: Mapping[str, float]
    ) -> float:
        """Upper bound on an expression's output rows.

        ``table_bounds`` supplies the bounds of the temporary tables
        the expression may scan.
        """
        if isinstance(expr, Singleton):
            return 1.0
        if isinstance(expr, Literal):
            return float(len(expr.table.rows))
        if isinstance(expr, Scan):
            return table_bounds.get(expr.table, INF)
        if isinstance(expr, (Select, Project, Rename)):
            return self.expression_bound(expr.child, table_bounds)
        if isinstance(expr, Join):
            left = self.expression_bound(expr.left, table_bounds)
            right = self.expression_bound(expr.right, table_bounds)
            # inf * 0 is nan in IEEE; an empty side makes the join empty.
            if left == 0.0 or right == 0.0:
                return 0.0
            return left * right
        if isinstance(expr, Union):
            return self.expression_bound(
                expr.left, table_bounds
            ) + self.expression_bound(expr.right, table_bounds)
        if isinstance(expr, Difference):
            return self.expression_bound(expr.left, table_bounds)
        # Unknown operator (full RA): no static bound.
        return INF

    def plan_bounds(self, plan: Plan) -> Dict[str, float]:
        """Per-target static size bounds, in command order.

        For an access command the bound is
        ``min(|R|, input_bound * per_binding_bound)`` -- the output maps
        relation tuples one-to-one (equality filters only shrink it), so
        the relation size caps it regardless of how many bindings were
        dispatched.
        """
        bounds: Dict[str, float] = {}
        for command in plan.commands:
            if isinstance(command, AccessCommand):
                fan_in = self.expression_bound(command.input_expr, bounds)
                bound = self.access_bound(command.method, fan_in)
            else:
                bound = self.expression_bound(command.expr, bounds)
            bounds[command.target] = bound
        return bounds

    def result_bound(self, plan: Plan) -> float:
        """Static upper bound on the plan's result rows (inf if none)."""
        return self.plan_bounds(plan)[plan.output_table]

    def resident_bound(self, plan: Plan) -> float:
        """Coarse bound on peak resident temporary rows.

        Sums every target's bound -- ignores the runtime's temp-table
        freeing, so it over-approximates the true peak (which is all we
        need for admission checks against ``max_resident_rows``).
        """
        return sum(self.plan_bounds(plan).values())

    # ---------------------------------------------------------- identity
    def identity(self) -> Dict[str, object]:
        """A stable content digest (for cost-model identities).

        Covers the size declaration and keys; the schema itself is
        already part of plan-cache keys via its fingerprint.
        """
        payload = json.dumps(
            {
                "sizes": {
                    name: (
                        "inf"
                        if math.isinf(self.relation_sizes[name])
                        else self.relation_sizes[name]
                    )
                    for name in sorted(self.relation_sizes)
                },
                "keys": {
                    name: sorted(self.keys[name])
                    for name in sorted(self.keys)
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return {
            "digest": hashlib.blake2b(
                payload.encode("utf-8"), digest_size=8
            ).hexdigest()
        }

    def __repr__(self) -> str:
        declared = sum(
            1 for s in self.relation_sizes.values() if not math.isinf(s)
        )
        return (
            f"SizeBounds({declared} sized relations, "
            f"{sum(len(k) for k in self.keys.values())} keys)"
        )


__all__ = ["INF", "SizeBounds"]
