"""The paper's baseline ``P_k``: k rounds of every possible access.

The alternative (non-constructive) proofs of Theorems 1-3 observe that
only k "levels" of the accessible part matter, and that an EUSPJ plan
``P_k`` can materialize them: *"P simply performs k rounds of making
every possible access with values produced by the previous round"* --
immediately adding *"which is certainly not feasible"*.  This module
implements that plan so the infeasibility is measurable: the brute-force
plan's runtime accesses blow up combinatorially in the known-value count
(every method is fed the full cartesian power of all known values) while
proof-based plans touch only what their proofs need.

``k_round_plan`` builds P_k (output: one accessed-copy table per
relation); ``brute_force_plan`` composes it with a middleware evaluation
of a CQ over the accessed copies, yielding a complete plan whenever the
query is monotonically determined with witness depth <= k.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.atoms import Atom
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable
from repro.plans.commands import (
    AccessCommand,
    Command,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    EqAttr,
    EqConst,
    Expression,
    Join,
    Literal,
    NamedTable,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan
from repro.schema.core import Schema


def accessed_table_name(relation: str) -> str:
    """Name of the brute-force plan's accessed copy of a relation."""
    return f"BF_{relation}"


VALUES_TABLE = "BF_vals"
_VAL = "v"


def k_round_plan(schema: Schema, k: int) -> Plan:
    """The plan P_k: materialize the k-round accessible part.

    After execution, ``BF_<R>`` holds the accessed R-tuples and
    ``BF_vals`` the accessible values reached within k rounds.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    commands: List[Command] = []
    counter = itertools.count()
    # Round 0: the schema constants.
    seed = NamedTable.from_rows(
        (_VAL,), [(c,) for c in schema.constants]
    )
    commands.append(MiddlewareCommand(VALUES_TABLE, Literal(seed)))
    per_relation_tables: Dict[str, List[str]] = {
        r.name: [] for r in schema.relations
    }
    for _round in range(k):
        round_outputs: List[Tuple[str, str, int]] = []
        for method in schema.methods:
            relation = schema.relation(method.relation)
            raw = f"BF_a{next(counter)}"
            width = len(method.input_positions)
            input_expr, binding_attrs = _value_power(width)
            commands.append(
                AccessCommand(
                    target=raw,
                    method=method.name,
                    input_expr=input_expr,
                    input_binding=binding_attrs,
                    output_map=identity_output_map(
                        tuple(
                            f"{raw}_p{i}" for i in range(relation.arity)
                        )
                    ),
                )
            )
            round_outputs.append((raw, relation.name, relation.arity))
            per_relation_tables[relation.name].append(raw)
        # Defining axioms: every column of every accessed tuple becomes
        # a known value for the next round.
        value_parts: List[Expression] = [Scan(VALUES_TABLE)]
        for raw, _relation, arity in round_outputs:
            for position in range(arity):
                value_parts.append(
                    Rename(
                        Project(Scan(raw), (f"{raw}_p{position}",)),
                        ((f"{raw}_p{position}", _VAL),),
                    )
                )
        union: Expression = value_parts[0]
        for part in value_parts[1:]:
            union = Union(union, part)
        commands.append(MiddlewareCommand(VALUES_TABLE, union))
    # Collapse each relation's per-round raw tables into one table with
    # positional attributes.
    for relation in schema.relations:
        positional = tuple(
            f"{accessed_table_name(relation.name)}_p{i}"
            for i in range(relation.arity)
        )
        parts = [
            Rename(
                Scan(raw),
                tuple(
                    (f"{raw}_p{i}", positional[i])
                    for i in range(relation.arity)
                ),
            )
            for raw in per_relation_tables[relation.name]
        ]
        if not parts:
            empty = NamedTable.empty(positional)
            expr: Expression = Literal(empty)
        else:
            expr = parts[0]
            for part in parts[1:]:
                expr = Union(expr, part)
        commands.append(
            MiddlewareCommand(accessed_table_name(relation.name), expr)
        )
    return Plan(tuple(commands), VALUES_TABLE, name=f"P_{k}")


def _value_power(width: int) -> Tuple[Expression, Tuple[str, ...]]:
    """The ``width``-fold cartesian power of the known-value table."""
    if width == 0:
        # Input-free methods fire unconditionally -- even before any
        # value is known (the paper's "every possible access").
        return Singleton(), ()
    attrs = tuple(f"in{i}" for i in range(width))
    expr: Expression = Rename(Scan(VALUES_TABLE), ((_VAL, attrs[0]),))
    for attr in attrs[1:]:
        expr = Join(expr, Rename(Scan(VALUES_TABLE), ((_VAL, attr),)))
    return expr, attrs


def cq_over_tables(
    query: ConjunctiveQuery,
    table_of: Dict[str, str],
    attr_prefixing=lambda table, i: f"{table}_p{i}",
) -> Expression:
    """Compile a CQ into a join expression over positional tables.

    Each atom scans its relation's table, filters constants and repeated
    variables, renames surviving positions to variable names; atoms are
    natural-joined (shared variables align by name) and the head is
    projected.
    """
    parts: List[Expression] = []
    for atom in query.atoms:
        table = table_of[atom.relation]
        positional = [
            attr_prefixing(table, i) for i in range(atom.arity)
        ]
        conditions: List[object] = []
        first: Dict[Variable, int] = {}
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                conditions.append(EqConst(positional[i], term))
            elif isinstance(term, Variable):
                if term in first:
                    conditions.append(
                        EqAttr(positional[first[term]], positional[i])
                    )
                else:
                    first[term] = i
        expr: Expression = Scan(table)
        if conditions:
            expr = Select(expr, tuple(conditions))
        keep = tuple(positional[p] for p in first.values())
        expr = Project(expr, keep)
        renaming = tuple(
            (positional[p], variable.name)
            for variable, p in first.items()
        )
        if renaming:
            expr = Rename(expr, renaming)
        parts.append(expr)
    joined = parts[0]
    for part in parts[1:]:
        joined = Join(joined, part)
    return Project(joined, tuple(v.name for v in query.head))


def brute_force_plan(
    schema: Schema, query: ConjunctiveQuery, k: int
) -> Plan:
    """P_k followed by middleware evaluation of the query.

    Complete whenever the query has a USPJ plan whose witnesses live in
    the k-round accessible part (any proof-based plan with <= k access
    "layers" implies this).
    """
    base = k_round_plan(schema, k)
    table_of = {
        relation.name: accessed_table_name(relation.name)
        for relation in schema.relations
    }
    evaluation = MiddlewareCommand(
        "T_fin", cq_over_tables(query, table_of)
    )
    return Plan(
        base.commands + (evaluation,),
        "T_fin",
        name=f"bruteforce_{k}",
    )
