"""Plans from chase proofs (Section 4, Theorem 5).

A chase proof that ``Q`` entails ``InferredAccQ`` is, for planning
purposes, fully determined by its sequence of accessibility-axiom firings:
everything else (original constraints, defining axioms, inferred-
accessible rules) is cost-free and fired eagerly.  :class:`ChaseProof`
records exactly that sequence -- which fact was exposed with which
method -- and :func:`plan_from_proof` replays it into a complete SPJ plan
whose structure mirrors the proof's.

The replay enforces the paper's *eager proof* discipline: cost-free rules
are saturated before and after every access firing, and one access firing
exposes, besides the chosen fact, every other fact of the same relation
that agrees with it on the method's input positions (the "facts induced
by firing" -- they come back from the very same access, so incorporating
them costs no extra access command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.engine import ChasePolicy, saturate
from repro.chase.stats import ChaseStats
from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Null, NullFactory, Variable
from repro.planner.plan_state import PlanningError, PlanState
from repro.plans.plan import Plan
from repro.schema.accessible import (
    AccessibleSchema,
    accessed_name,
    inferred_accessible_query,
)
from repro.schema.core import AccessMethod


@dataclass(frozen=True)
class Exposure:
    """One accessibility-axiom firing: expose ``fact`` via ``method``."""

    fact: Atom
    method: str

    def __repr__(self) -> str:
        return f"expose {self.fact!r} via {self.method}"


@dataclass(frozen=True)
class ChaseProof:
    """The access-relevant skeleton of a chase proof for a query."""

    query: ConjunctiveQuery
    exposures: Tuple[Exposure, ...]

    def __repr__(self) -> str:
        steps = "; ".join(repr(e) for e in self.exposures)
        return f"ChaseProof({self.query.name}: {steps})"


@dataclass
class SaturationLog:
    """Aggregated completeness and cost of every saturation in a run.

    Complete saturations everywhere mean the explored proof space is the
    *whole* bounded proof space: a failed search is then a certified
    negative for the given access budget.  ``stats`` accumulates the
    chase instrumentation of all per-node saturations, which is what the
    CLI and benchmarks report for one planning run.
    """

    complete: bool = True
    stats: ChaseStats = field(default_factory=ChaseStats)

    def absorb(self, result) -> None:
        """Merge one chase result's completeness and stats into the log."""
        if not result.is_complete:
            self.complete = False
        self.stats.absorb(result.stats)


@dataclass
class ReplayResult:
    """Everything the replay produced."""

    plan: Plan
    config: ChaseConfiguration
    state: PlanState
    head_nulls: Tuple[Null, ...]
    match: Substitution


def initial_configuration(
    acc_schema: AccessibleSchema,
    query: ConjunctiveQuery,
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    log: Optional["SaturationLog"] = None,
) -> Tuple[ChaseConfiguration, Dict[Variable, Null]]:
    """Canonical database + schema-constant seeds, free rules saturated."""
    facts, frozen = query.canonical_database()
    config = ChaseConfiguration(facts)
    for fact in acc_schema.initial_accessible_facts():
        config.add(fact)
    result = saturate(
        config,
        list(acc_schema.free_rules),
        nulls,
        policy.for_saturation() if policy else None,
    )
    if log is not None:
        log.absorb(result)
    return config, frozen


def fire_access(
    config: ChaseConfiguration,
    state: PlanState,
    fact: Atom,
    method: AccessMethod,
    acc_schema: AccessibleSchema,
    nulls: NullFactory,
    policy: Optional[ChasePolicy] = None,
    expose_induced: bool = True,
    log: Optional["SaturationLog"] = None,
) -> Tuple[PlanState, Tuple[Atom, ...]]:
    """Fire one accessibility axiom in place; returns (state, exposed).

    Mutates ``config``; callers who branch (the search tree) copy first.
    Exposes the chosen fact and (unless ``expose_induced`` is False -- an
    ablation switch) all facts induced by the same access, then saturates
    the cost-free rules.
    """
    _check_inputs_accessible(config, fact, method)
    exposed: List[Atom] = []
    new_state = state
    # The configuration arrives saturated under the free rules (the
    # eager-proof invariant), so the re-saturation below only needs to
    # join through the accessed facts added here: record the watermark.
    pre_generation = config.generation
    to_expose = (
        _induced_facts(config, fact, method)
        if expose_induced
        else (fact,)
    )
    for induced in to_expose:
        accessed = induced.rename_relation(accessed_name(induced.relation))
        if accessed in config:
            continue
        new_state = new_state.expose(induced, method)
        config.add(
            accessed,
            Provenance(
                rule=f"access[{method.name}]",
                trigger_facts=(induced,),
                depth=config.depth(induced) + 1,
            ),
        )
        exposed.append(induced)
    if not exposed:
        raise PlanningError(
            f"{fact!r} is already exposed; firing {method.name} is a no-op"
        )
    result = saturate(
        config,
        list(acc_schema.free_rules),
        nulls,
        policy.for_saturation() if policy else None,
        since_generation=pre_generation,
    )
    if log is not None:
        log.absorb(result)
    return new_state, tuple(exposed)


def _check_inputs_accessible(
    config: ChaseConfiguration, fact: Atom, method: AccessMethod
) -> None:
    if fact.relation != method.relation:
        raise PlanningError(
            f"method {method.name} is on {method.relation}, "
            f"got fact {fact!r}"
        )
    if fact not in config:
        raise PlanningError(
            f"{fact!r} is not in the chase configuration; only derived "
            f"facts can be exposed"
        )
    for position in method.input_positions:
        term = fact.terms[position]
        if not config.is_accessible(term):
            raise PlanningError(
                f"cannot fire {method.name} on {fact!r}: input value "
                f"{term!r} (position {position}) is not accessible"
            )


def _induced_facts(
    config: ChaseConfiguration, fact: Atom, method: AccessMethod
) -> Tuple[Atom, ...]:
    """All facts the access retrieving ``fact`` also exposes.

    These are the relation's facts agreeing with the chosen one on the
    method's input positions (Algorithm 1, line 8).  The chosen fact is
    listed first so its plan commands come first.
    """
    same_access = [
        other
        for other in config.facts_of(fact.relation)
        if other != fact
        and all(
            other.terms[p] == fact.terms[p]
            for p in method.input_positions
        )
    ]
    return (fact, *sorted(same_access, key=repr))


def success_match(
    config: ChaseConfiguration,
    query: ConjunctiveQuery,
    head_nulls: Dict[Variable, Null],
) -> Optional[Substitution]:
    """A match for InferredAccQ preserving the free variables, if any."""
    target = inferred_accessible_query(query)
    seed = Substitution(
        {variable: head_nulls[variable] for variable in query.head}
    )
    return find_homomorphism(list(target.atoms), config.index, seed)


def replay_proof(
    acc_schema: AccessibleSchema,
    proof: ChaseProof,
    policy: Optional[ChasePolicy] = None,
    name: str = "proof-plan",
) -> ReplayResult:
    """Replay a proof's exposures and produce the corresponding plan.

    Raises :class:`PlanningError` if an exposure is not fireable in
    sequence or if the final configuration has no match for
    ``InferredAccQ`` (i.e. the proof is not actually successful).
    """
    query = proof.query
    nulls = NullFactory("r")
    config, frozen = initial_configuration(acc_schema, query, nulls, policy)
    state = PlanState()
    schema = acc_schema.schema
    for exposure in proof.exposures:
        method = schema.method(exposure.method)
        state, _ = fire_access(
            config, state, exposure.fact, method, acc_schema, nulls, policy
        )
    match = success_match(config, query, frozen)
    if match is None:
        raise PlanningError(
            f"proof does not witness InferredAcc{query.name}: "
            f"no match after {len(proof.exposures)} exposures"
        )
    head_nulls = tuple(frozen[v] for v in query.head)
    plan = state.finish(head_nulls, name=name)
    return ReplayResult(
        plan=plan,
        config=config,
        state=state,
        head_nulls=head_nulls,
        match=match,
    )


def plan_from_proof(
    acc_schema: AccessibleSchema,
    proof: ChaseProof,
    policy: Optional[ChasePolicy] = None,
    name: str = "proof-plan",
) -> Plan:
    """The SPJ plan generated from a chase proof (Theorem 5)."""
    return replay_proof(acc_schema, proof, policy, name).plan
