"""Proof refinement: minimization and iterative-deepening planning.

``minimize_proof`` post-processes a successful chase proof by greedily
dropping exposures whose removal keeps the proof successful (the
remaining firings must still be fireable in order and still produce a
match for InferredAccQ).  First-found proofs -- e.g. from
``stop_on_first`` searches -- are often padded with accesses a later
match never uses; minimizing them lowers every monotone cost.

``find_best_plan_iterative`` wraps Algorithm 1 with iterative deepening
on the access budget: try d = 1, 2, ... until a plan is found or the cap
is reached.  With certified exhaustion at each level, the first success
uses the *minimum possible number of access commands*, and failures
below the cap are certified level by level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chase.engine import ChasePolicy
from repro.cost.functions import CostFunction
from repro.logic.queries import ConjunctiveQuery
from repro.planner.plan_state import PlanningError
from repro.planner.proof_to_plan import ChaseProof, Exposure, replay_proof
from repro.planner.search import (
    SearchOptions,
    SearchResult,
    find_best_plan,
)
from repro.schema.accessible import AccessibleSchema
from repro.schema.core import Schema


def proof_is_valid(
    acc: AccessibleSchema,
    proof: ChaseProof,
    policy: Optional[ChasePolicy] = None,
) -> bool:
    """Whether the exposure sequence replays into a successful proof."""
    try:
        replay_proof(acc, proof, policy)
        return True
    except PlanningError:
        return False


def minimize_proof(
    acc: AccessibleSchema,
    proof: ChaseProof,
    policy: Optional[ChasePolicy] = None,
) -> ChaseProof:
    """Greedily remove exposures while the proof stays successful.

    Quadratic in proof length (each removal attempt replays the proof);
    proofs are short (bounded by the access budget), so this is cheap
    relative to the search that produced them.
    """
    exposures: List[Exposure] = list(proof.exposures)
    changed = True
    while changed:
        changed = False
        for index in range(len(exposures) - 1, -1, -1):
            candidate = ChaseProof(
                proof.query,
                tuple(exposures[:index] + exposures[index + 1:]),
            )
            if proof_is_valid(acc, candidate, policy):
                del exposures[index]
                changed = True
    return ChaseProof(proof.query, tuple(exposures))


def find_best_plan_iterative(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    cost: Optional[CostFunction] = None,
    chase_policy: Optional[ChasePolicy] = None,
) -> Tuple[SearchResult, int]:
    """Iterative deepening on the access budget.

    Returns (result, depth_reached).  The result is the first level's
    search that found a plan (so its plan uses the minimum number of
    access commands any complete plan needs), or the last level's failed
    search when nothing was found up to ``max_accesses``.
    """
    last: Optional[SearchResult] = None
    for depth in range(1, max_accesses + 1):
        result = find_best_plan(
            schema,
            query,
            SearchOptions(
                max_accesses=depth,
                cost=cost,
                chase_policy=chase_policy,
            ),
        )
        if result.found:
            return result, depth
        last = result
        if not result.exhausted:
            # Truncated saturation: deeper levels may still succeed, but
            # the per-level negative is no longer certified; continue.
            continue
    assert last is not None
    return last, max_accesses
