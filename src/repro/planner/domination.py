"""Fingerprint-indexed domination pruning for Algorithm 1.

Domination (the paper's second "Optimization") discards a freshly
expanded node when some already-explored node has *at least as many
useful facts* at no higher cost: a homomorphism from the new node's
relevant facts (original, inferred-accessible and ``_accessible``
relations) into the explored node's configuration, fixing the canonical
constants of the query's free variables.

The check is the search's hot loop: naively it scans every explored node
and runs a full backtracking-join homomorphism against each.  This
module makes the scan sublinear with a *signature subsumption* index:

* every configuration gets a cheap canonical **signature** -- the set of
  relations with at least one relevant fact, plus every *rigid* term
  occurrence ``(relation, position, term)`` where rigid means a schema
  constant or a frozen head null (the terms a domination homomorphism
  must map to themselves);
* a homomorphism of the candidate's pattern into a target configuration
  maps each pattern atom to a fact of the *same* relation that agrees
  with it on every rigid position, so the target's signature necessarily
  **contains** the candidate's -- signature subsumption is a sound
  prefilter (it can only admit false positives, never reject a true
  dominator);
* the registry keeps an inverted index from signature elements to the
  nodes whose signatures contain them; candidate dominators are the
  intersection of the posting lists of the child's signature elements,
  visited cheapest-cost-first, and the full ``find_homomorphism`` runs
  only on those survivors.

Per-relation fact *counts* are deliberately not part of the subsumption
test: homomorphisms need not be injective, so a dominator may hold fewer
facts of a relation than the pattern it absorbs (several pattern facts
collapsing onto one image).  Requiring ``count >= count`` would wrongly
reject such dominators.

:class:`LinearRegistry` preserves the original linear scan as a
differential-testing oracle, and :class:`DifferentialRegistry` runs both
side by side, asserting they agree on every single check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.chase.configuration import ChaseConfiguration
from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.terms import Constant, Null, Term
from repro.schema.accessible import is_accessed_name

_EPS = 1e-12

SignatureElement = Tuple
Signature = FrozenSet[SignatureElement]


def relevant_facts(config: ChaseConfiguration) -> List[Atom]:
    """Facts the domination homomorphism must preserve.

    The paper requires preservation of original-schema and
    inferred-accessible facts; we additionally preserve ``_accessible``
    facts, which only makes domination *harder* to establish (strictly
    fewer prunes -- safe).
    """
    out: List[Atom] = []
    for relation in config.relations():
        if is_accessed_name(relation):
            continue
        out.extend(config.facts_of(relation))
    return out


def signature_of(
    pattern: Sequence[Atom], rigid: FrozenSet[Term]
) -> Signature:
    """The canonical signature of a configuration's relevant facts.

    Elements are ``("rel", R)`` per populated relation and
    ``("occ", R, i, t)`` per rigid term occurrence.  ``rigid`` holds the
    frozen head nulls; schema constants are always rigid.
    """
    elements: Set[SignatureElement] = set()
    for atom in pattern:
        elements.add(("rel", atom.relation))
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant) or term in rigid:
                elements.add(("occ", atom.relation, position, term))
    return frozenset(elements)


@dataclass
class DominationStats:
    """Instrumentation of the domination check across one search run.

    * ``checks`` -- how many nodes were tested for domination;
    * ``registry_scanned`` -- explored nodes a linear scan would have
      examined (the sum of registry sizes at each check);
    * ``candidates`` -- nodes surviving the signature-subsumption
      prefilter (before the cost cutoff);
    * ``hom_calls`` -- full ``find_homomorphism`` invocations actually
      run;
    * ``time_seconds`` -- wall time inside the check.
    """

    checks: int = 0
    registry_scanned: int = 0
    candidates: int = 0
    hom_calls: int = 0
    time_seconds: float = 0.0

    @property
    def hom_calls_avoided(self) -> int:
        """Homomorphism checks the index saved over a linear scan."""
        return self.registry_scanned - self.hom_calls

    def as_dict(self) -> dict:
        """A JSON-ready flat rendering (used by benchmark reports)."""
        return {
            "checks": self.checks,
            "registry_scanned": self.registry_scanned,
            "candidates": self.candidates,
            "hom_calls": self.hom_calls,
            "hom_calls_avoided": self.hom_calls_avoided,
            "time_seconds": self.time_seconds,
        }


@dataclass
class _Entry:
    """One registered (explored, non-pruned) search node."""

    node_id: int
    cost: float
    config: ChaseConfiguration
    signature: Signature


class DominationRegistry:
    """Interface shared by the indexed registry and the linear oracle."""

    def __init__(
        self, frozen: Substitution, rigid: FrozenSet[Term]
    ) -> None:
        # The identity substitution on the frozen head nulls: domination
        # must preserve the canonical constants of the free variables.
        self.frozen = frozen
        self.rigid = rigid
        self.stats = DominationStats()

    def __len__(self) -> int:
        raise NotImplementedError

    def register(
        self, node_id: int, cost: float, config: ChaseConfiguration
    ) -> None:
        """Admit an explored node as a potential future dominator."""
        raise NotImplementedError

    def find_dominator(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        """The node id of a dominator of (cost, config), or None."""
        tick = time.perf_counter()
        try:
            return self._find(cost, config)
        finally:
            self.stats.time_seconds += time.perf_counter() - tick

    def _find(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        raise NotImplementedError


class FingerprintRegistry(DominationRegistry):
    """Signature-subsumption buckets over an inverted element index."""

    def __init__(
        self, frozen: Substitution, rigid: FrozenSet[Term]
    ) -> None:
        super().__init__(frozen, rigid)
        self._entries: List[_Entry] = []
        self._postings: Dict[SignatureElement, List[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def register(
        self, node_id: int, cost: float, config: ChaseConfiguration
    ) -> None:
        """Index the node under every element of its signature."""
        signature = signature_of(relevant_facts(config), self.rigid)
        slot = len(self._entries)
        self._entries.append(_Entry(node_id, cost, config, signature))
        for element in signature:
            self._postings.setdefault(element, []).append(slot)

    def _find(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        self.stats.checks += 1
        self.stats.registry_scanned += len(self._entries)
        pattern = relevant_facts(config)
        signature = signature_of(pattern, self.rigid)
        survivors = self._subsuming_entries(signature)
        if not survivors:
            return None
        self.stats.candidates += len(survivors)
        survivors.sort(key=lambda entry: entry.cost)
        for entry in survivors:
            if entry.cost > cost + _EPS:
                break  # cost-sorted: nothing cheaper remains
            self.stats.hom_calls += 1
            hom = find_homomorphism(
                pattern, entry.config.index, self.frozen, map_nulls=True
            )
            if hom is not None:
                return entry.node_id
        return None

    def _subsuming_entries(self, signature: Signature) -> List[_Entry]:
        """Entries whose signature contains every element of ``signature``."""
        if not signature:
            return list(self._entries)
        postings: List[List[int]] = []
        for element in signature:
            posting = self._postings.get(element)
            if posting is None:
                return []
            postings.append(posting)
        postings.sort(key=len)
        slots = set(postings[0])
        for posting in postings[1:]:
            slots.intersection_update(posting)
            if not slots:
                return []
        return [self._entries[slot] for slot in slots]


class LinearRegistry(DominationRegistry):
    """The original O(registry) scan, kept as the differential oracle."""

    def __init__(
        self, frozen: Substitution, rigid: FrozenSet[Term]
    ) -> None:
        super().__init__(frozen, rigid)
        self._entries: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def register(
        self, node_id: int, cost: float, config: ChaseConfiguration
    ) -> None:
        """Append the node; signatures are not needed for the scan."""
        self._entries.append(
            _Entry(node_id, cost, config, frozenset())
        )

    def _find(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        self.stats.checks += 1
        self.stats.registry_scanned += len(self._entries)
        pattern = relevant_facts(config)
        pattern_relations = {atom.relation for atom in pattern}
        for entry in self._entries:
            if entry.cost > cost + _EPS:
                continue
            # Cheap prefilter: a homomorphism needs every relation of the
            # pattern present in the target configuration.
            if not pattern_relations <= set(entry.config.relations()):
                continue
            self.stats.candidates += 1
            self.stats.hom_calls += 1
            hom = find_homomorphism(
                pattern, entry.config.index, self.frozen, map_nulls=True
            )
            if hom is not None:
                return entry.node_id
        return None


class NaiveRegistry(DominationRegistry):
    """A full homomorphism check against every cost-eligible node.

    The unoptimized reference point of the search benchmarks: no
    signature index and no relation prefilter, so ``hom_calls`` measures
    what domination costs without any indexing.  Prune outcomes are
    identical to the other registries (the extra homomorphism attempts
    all fail on entries the prefilters would have skipped).
    """

    def __init__(
        self, frozen: Substitution, rigid: FrozenSet[Term]
    ) -> None:
        super().__init__(frozen, rigid)
        self._entries: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def register(
        self, node_id: int, cost: float, config: ChaseConfiguration
    ) -> None:
        """Append the node."""
        self._entries.append(
            _Entry(node_id, cost, config, frozenset())
        )

    def _find(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        self.stats.checks += 1
        self.stats.registry_scanned += len(self._entries)
        pattern = relevant_facts(config)
        for entry in self._entries:
            if entry.cost > cost + _EPS:
                continue
            self.stats.candidates += 1
            self.stats.hom_calls += 1
            hom = find_homomorphism(
                pattern, entry.config.index, self.frozen, map_nulls=True
            )
            if hom is not None:
                return entry.node_id
        return None


class DominationMismatch(AssertionError):
    """The fingerprint index and the linear oracle disagreed."""


class DifferentialRegistry(DominationRegistry):
    """Runs the fingerprint index against the linear oracle on every check.

    Raises :class:`DominationMismatch` the moment the two disagree on
    whether a dominator exists; reported stats are the fingerprint
    side's.  Slow by construction -- for tests and audits only.
    """

    def __init__(
        self, frozen: Substitution, rigid: FrozenSet[Term]
    ) -> None:
        super().__init__(frozen, rigid)
        self.indexed = FingerprintRegistry(frozen, rigid)
        self.oracle = LinearRegistry(frozen, rigid)
        self.stats = self.indexed.stats

    def __len__(self) -> int:
        return len(self.indexed)

    def register(
        self, node_id: int, cost: float, config: ChaseConfiguration
    ) -> None:
        """Register with both sides."""
        self.indexed.register(node_id, cost, config)
        self.oracle.register(node_id, cost, config)

    def find_dominator(
        self, cost: float, config: ChaseConfiguration
    ) -> Optional[int]:
        """Check both sides; any disagreement is a hard error."""
        fast = self.indexed.find_dominator(cost, config)
        slow = self.oracle.find_dominator(cost, config)
        if (fast is None) != (slow is None):
            raise DominationMismatch(
                f"fingerprint says dominator={fast!r}, "
                f"linear oracle says dominator={slow!r} "
                f"for a node of cost {cost} "
                f"({len(self.indexed)} registered nodes)"
            )
        return fast


REGISTRY_KINDS = ("fingerprint", "linear", "naive", "differential")


def make_registry(
    kind: str, frozen: Substitution, rigid: FrozenSet[Term]
) -> DominationRegistry:
    """Build the requested registry flavour."""
    if kind == "fingerprint":
        return FingerprintRegistry(frozen, rigid)
    if kind == "linear":
        return LinearRegistry(frozen, rigid)
    if kind == "naive":
        return NaiveRegistry(frozen, rigid)
    if kind == "differential":
        return DifferentialRegistry(frozen, rigid)
    raise ValueError(
        f"unknown domination index {kind!r}; "
        f"expected one of {REGISTRY_KINDS}"
    )
