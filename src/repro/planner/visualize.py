"""Graphviz (DOT) renderings of proof trees and plans.

``search_tree_to_dot`` regenerates Figure 1 of the paper as an actual
figure: one box per proof-tree node showing the exposed fact, partial
cost and status (success / pruned-by-cost / dominated), edges following
the accessibility-axiom firings.  Render with ``dot -Tpdf``.

``plan_to_dot`` draws a plan's dataflow: access commands as double
octagons (labelled with their method), middleware tables as boxes,
edges following table reads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.planner.search import SearchResult
from repro.plans.commands import AccessCommand
from repro.plans.plan import Plan


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def search_tree_to_dot(result: SearchResult, title: str = "proof space") -> str:
    """DOT text for a search run's proof tree (needs ``collect_tree``)."""
    if not result.tree:
        raise ValueError(
            "no tree recorded: run the search with "
            "SearchOptions(collect_tree=True)"
        )
    lines = [
        "digraph prooftree {",
        "  rankdir=TB;",
        f'  label="{_escape(title)}";',
        "  node [shape=box, fontsize=10];",
    ]
    for node in result.tree:
        if node.exposures:
            exposure = node.exposures[-1]
            label = f"n{node.node_id}\\nexpose {exposure.fact.relation}"
            label += f"\\nvia {exposure.method}"
        else:
            label = f"n{node.node_id}\\n(root)"
        label += f"\\ncost {node.cost:g}"
        attrs = [f'label="{_escape(label)}"']
        if node.successful:
            attrs.append("style=filled")
            attrs.append('fillcolor="#b7e1a1"')
        elif node.pruned == "cost":
            attrs.append("style=filled")
            attrs.append('fillcolor="#f4c7c3"')
        elif node.pruned == "domination":
            attrs.append("style=filled")
            attrs.append('fillcolor="#d9d2e9"')
        lines.append(f"  n{node.node_id} [{', '.join(attrs)}];")
        if node.parent_id is not None:
            lines.append(f"  n{node.parent_id} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(plan: Plan) -> str:
    """DOT text for a plan's command dataflow."""
    lines = [
        "digraph plan {",
        "  rankdir=LR;",
        f'  label="{_escape(plan.name)} ({plan.kind.value})";',
        "  node [fontsize=10];",
    ]
    for index, command in enumerate(plan.commands):
        if isinstance(command, AccessCommand):
            label = f"{command.target}\\naccess {command.method}"
            shape = "doubleoctagon"
            expr = command.input_expr
        else:
            label = f"{command.target}"
            shape = "box"
            expr = command.expr
        lines.append(
            f'  "{command.target}" [shape={shape}, '
            f'label="{_escape(label)}"];'
        )
        for source in sorted(expr.tables_read()):
            lines.append(f'  "{source}" -> "{command.target}";')
    lines.append(
        f'  "{plan.output_table}" [style=filled, fillcolor="#b7e1a1"];'
    )
    lines.append("}")
    return "\n".join(lines)
