"""ESPJ support: planning queries with head-variable inequalities.

Section 2 allows inequalities in selections and join conditions (the
``E`` in ESPJ/EUSPJ).  For conjunctive queries extended with
inequalities *among head variables and constants*, planning reduces to
planning the conjunctive core and filtering the final table: the
canonical constants of head variables are frozen through the whole
proof, so the filter applies to exactly the tuples the query's
inequality semantics constrains.

(Inequalities touching existential variables are NOT supported this way:
their witnesses are projected away before the filter could see them.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.logic.queries import ConjunctiveQuery, QueryError
from repro.logic.terms import Constant, Variable
from repro.planner.search import (
    SearchOptions,
    SearchResult,
    find_best_plan,
)
from repro.plans.commands import MiddlewareCommand
from repro.plans.expressions import (
    NeqAttr,
    NeqConst,
    Project,
    Scan,
    Select,
)
from repro.plans.plan import Plan
from repro.schema.core import Schema

InequalityTerm = Union[Variable, Constant]


@dataclass(frozen=True)
class Inequality:
    """``left != right`` between head variables and/or constants."""

    left: InequalityTerm
    right: InequalityTerm

    def __repr__(self) -> str:
        return f"{self.left!r} != {self.right!r}"


@dataclass
class InequalityPlanResult:
    """A filtered plan plus the underlying conjunctive-core search."""

    plan: Optional[Plan]
    core: SearchResult

    @property
    def found(self) -> bool:
        """Whether a (filtered) complete plan was produced."""
        return self.plan is not None


def plan_with_inequalities(
    schema: Schema,
    query: ConjunctiveQuery,
    inequalities: Sequence[Inequality],
    options: Optional[SearchOptions] = None,
) -> InequalityPlanResult:
    """Plan ``query AND inequalities`` (head variables/constants only)."""
    _validate(query, inequalities)
    core = find_best_plan(schema, query, options)
    if not core.found:
        return InequalityPlanResult(plan=None, core=core)
    plan = apply_inequalities(core.best_plan, query, inequalities)
    return InequalityPlanResult(plan=plan, core=core)


def apply_inequalities(
    plan: Plan,
    query: ConjunctiveQuery,
    inequalities: Sequence[Inequality],
) -> Plan:
    """Insert the inequality filter over the plan's output table.

    The proof-generated plans name output attributes after the canonical
    nulls of the head variables (``<query>_<var>``), which is what the
    filter conditions reference.
    """
    _validate(query, inequalities)
    _facts, frozen = query.canonical_database()

    def attr_of(variable: Variable) -> str:
        """Output attribute carrying the head variable."""
        return frozen[variable].name

    conditions: List[object] = []
    for inequality in inequalities:
        left, right = inequality.left, inequality.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            conditions.append(NeqAttr(attr_of(left), attr_of(right)))
        elif isinstance(left, Variable) and isinstance(right, Constant):
            conditions.append(NeqConst(attr_of(left), right))
        elif isinstance(left, Constant) and isinstance(right, Variable):
            conditions.append(NeqConst(attr_of(right), left))
        else:
            if left == right:  # constant != itself: always-empty query
                return _always_empty(plan)
            # Distinct constants: the inequality is vacuous.
    if not conditions:
        return plan
    filtered = MiddlewareCommand(
        "T_ineq", Select(Scan(plan.output_table), tuple(conditions))
    )
    return Plan(
        plan.commands + (filtered,), "T_ineq", name=f"{plan.name}+ineq"
    )


def _always_empty(plan: Plan) -> Plan:
    from repro.plans.expressions import Difference

    empty = MiddlewareCommand(
        "T_ineq",
        Difference(Scan(plan.output_table), Scan(plan.output_table)),
    )
    return Plan(
        plan.commands + (empty,), "T_ineq", name=f"{plan.name}+ineq"
    )


def _validate(
    query: ConjunctiveQuery, inequalities: Sequence[Inequality]
) -> None:
    head = set(query.head)
    for inequality in inequalities:
        for term in (inequality.left, inequality.right):
            if isinstance(term, Variable) and term not in head:
                raise QueryError(
                    f"inequality {inequality!r}: {term!r} is not a head "
                    f"variable (existential inequalities unsupported)"
                )
