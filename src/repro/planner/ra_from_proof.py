"""Theorem 7: RA / USPJ-with-negation plans from bidirectional proofs.

The backward-induction algorithm of Section 4 ("RA-plans for schemas with
TGDs"): given a chase proof over ``AcSch<->(S0)`` -- a sequence of
*positive* accessibility firings (expose ``R(c)``, as in the SPJ case)
and *negative* accessibility firings (expose ``InfAcc_R(c)``, i.e. use an
access to *verify* facts, compiled to a universal quantifier) -- build an
executable FO query by backward induction, then compile it to a plan with
Proposition 1.

A proof using only the ``AcSch-neg`` axioms (negative firings demanding
*all* positions accessible) yields a USPJ-with-atomic-negation plan; a
general bidirectional proof yields an RA plan.  The search helper
:func:`find_bidirectional_proof` does a bounded DFS over access firings of
both polarities to discover such proofs automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.engine import ChasePolicy, saturate
from repro.fo.executable import executable_to_plan
from repro.fo.formulas import (
    And,
    Exists,
    FOAtom,
    Forall,
    Formula,
    Implies,
    Top,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Null, NullFactory, Term, Variable
from repro.planner.plan_state import PlanningError
from repro.planner.proof_to_plan import initial_configuration, success_match
from repro.plans.plan import Plan
from repro.schema.accessible import (
    AccessibleSchema,
    Variant,
    accessed_name,
    infacc_name,
)
from repro.schema.core import AccessMethod, Schema


@dataclass(frozen=True)
class BackwardStep:
    """One access firing in a bidirectional proof.

    ``negative=False``: a positive firing exposing the original-relation
    fact ``fact`` (hidden fact becomes accessed).
    ``negative=True``: a negative firing exposing ``InfAcc_R(fact.terms)``
    (a derived fact is *verified* through the access and transferred to
    the original relation).
    """

    fact: Atom
    method: str
    negative: bool = False

    def __repr__(self) -> str:
        polarity = "neg" if self.negative else "pos"
        return f"{polarity}-expose {self.fact!r} via {self.method}"


def ra_plan_from_proof(
    schema: Schema,
    query,
    steps: Sequence[BackwardStep],
    name: str = "ra-plan",
) -> Plan:
    """Backward-induct an executable query from the proof; compile it."""
    formula = executable_query_from_proof(schema, query, steps)
    return executable_to_plan(formula, schema, name=name)


def uspj_neg_plan(
    schema: Schema,
    query,
    steps: Sequence[BackwardStep],
    name: str = "uspj-neg-plan",
) -> Plan:
    """Alias documenting the AcSch-neg case of Theorem 7."""
    return ra_plan_from_proof(schema, query, steps, name=name)


def executable_query_from_proof(
    schema: Schema,
    query,
    steps: Sequence[BackwardStep],
) -> Formula:
    """The executable FO sentence the backward induction produces.

    Accessibility is replayed forward to know which chase constants are
    bound at each step; the formula is then assembled back-to-front:
    trivial proofs yield Top, a positive step wraps the remainder in an
    existential guard, a negative step in a universal guard.
    """
    bound: Set[Null] = set()
    step_new_nulls: List[Tuple[Null, ...]] = []
    for step in steps:
        method = schema.method(step.method)
        for position in method.input_positions:
            term = step.fact.terms[position]
            if isinstance(term, Null) and term not in bound:
                raise PlanningError(
                    f"step {step!r}: input {term!r} not yet accessible"
                )
        fresh = tuple(
            null for null in step.fact.nulls() if null not in bound
        )
        step_new_nulls.append(fresh)
        bound.update(fresh)
    formula: Formula = Top()
    for step, fresh in zip(reversed(steps), reversed(step_new_nulls)):
        variables = tuple(Variable(null.name) for null in fresh)
        guard = Atom(
            step.fact.relation,
            tuple(_as_variable(t) for t in step.fact.terms),
        )
        if step.negative:
            formula = Forall(variables, Implies(FOAtom(guard), formula))
        else:
            formula = Exists(variables, And(FOAtom(guard), formula))
    return formula


def _as_variable(term: Term) -> Term:
    if isinstance(term, Null):
        return Variable(term.name)
    return term


# ------------------------------------------------------------ proof search
def find_bidirectional_proof(
    schema: Schema,
    query,
    max_steps: int = 6,
    variant: Variant = Variant.BIDIRECTIONAL,
    chase_policy: Optional[ChasePolicy] = None,
) -> Optional[Tuple[BackwardStep, ...]]:
    """Bounded DFS for a chase proof over AcSch<-> (or AcSch-neg).

    Returns the step sequence of the first proof found, or None.  Positive
    steps expose original-relation facts; negative steps fire the variant's
    negative accessibility axioms on InfAcc facts.
    """
    acc = AccessibleSchema(schema, variant)
    nulls = NullFactory("b")
    config, frozen = initial_configuration(acc, query, nulls, chase_policy)
    return _dfs(
        acc, query, frozen, config, (), max_steps, nulls, chase_policy
    )


def _dfs(
    acc: AccessibleSchema,
    query,
    frozen,
    config: ChaseConfiguration,
    steps: Tuple[BackwardStep, ...],
    budget: int,
    nulls: NullFactory,
    policy: Optional[ChasePolicy],
) -> Optional[Tuple[BackwardStep, ...]]:
    if success_match(config, query, frozen) is not None:
        return steps
    if budget <= 0:
        return None
    for step in _candidate_steps(acc, config):
        child = config.copy()
        _apply_step(acc, child, step, nulls, policy)
        found = _dfs(
            acc, query, frozen, child, steps + (step,),
            budget - 1, nulls, policy,
        )
        if found is not None:
            return found
    return None


def _candidate_steps(
    acc: AccessibleSchema, config: ChaseConfiguration
) -> List[BackwardStep]:
    schema = acc.schema
    out: List[BackwardStep] = []
    negative_allowed = acc.variant in (
        Variant.BIDIRECTIONAL,
        Variant.NEGATIVE,
    )
    for method in schema.methods:
        relation = method.relation
        # Positive candidates: original facts not yet accessed.
        for fact in config.facts_of(relation):
            accessed = fact.rename_relation(accessed_name(relation))
            if accessed in config:
                continue
            if all(
                config.is_accessible(fact.terms[p])
                for p in method.input_positions
            ):
                out.append(BackwardStep(fact, method.name, negative=False))
        if not negative_allowed:
            continue
        # Negative candidates: InfAcc facts not yet accessed.
        required = (
            range(schema.relation(relation).arity)
            if acc.variant is Variant.NEGATIVE
            else method.input_positions
        )
        for infacc in config.facts_of(infacc_name(relation)):
            original = infacc.rename_relation(relation)
            accessed = infacc.rename_relation(accessed_name(relation))
            if accessed in config or original in config:
                continue
            if all(
                config.is_accessible(infacc.terms[p]) for p in required
            ):
                out.append(
                    BackwardStep(original, method.name, negative=True)
                )
    out.sort(key=lambda s: (s.negative, repr(s.fact), s.method))
    return out


def _apply_step(
    acc: AccessibleSchema,
    config: ChaseConfiguration,
    step: BackwardStep,
    nulls: NullFactory,
    policy: Optional[ChasePolicy],
) -> None:
    accessed = step.fact.rename_relation(accessed_name(step.fact.relation))
    provenance = Provenance(
        rule=f"{'neg-' if step.negative else ''}access[{step.method}]",
        trigger_facts=(step.fact,),
        depth=0,
    )
    # The DFS keeps every configuration saturated under the free rules,
    # so re-saturation only needs to join through the facts added here.
    pre_generation = config.generation
    config.add(accessed, provenance)
    if step.negative:
        # Accessed_R(x) -> R(x): the verified fact joins the original side.
        config.add(step.fact, provenance)
    saturate(
        config,
        list(acc.free_rules),
        nulls,
        policy.for_saturation() if policy else None,
        since_generation=pre_generation,
    )
