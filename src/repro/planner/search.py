"""Algorithm 1: cost-guided exploration of the proof space (Section 5).

The search maintains a *partial proof tree*.  Each node carries a chase
configuration (saturated under cost-free rules -- the eager-proof
discipline), the partial plan generated so far, and its cost.  Expanding
a node fires one accessibility axiom for a *candidate fact for exposure*:
a fact of an original relation, not yet accessed, whose chosen method's
input positions all hold accessible values.

Pruning (the paper's "Optimizations"):

* cost-bound -- monotone costs let us abort any node whose partial plan
  already costs at least as much as the best complete plan found;
* domination -- a new node is discarded when an already-explored node has
  "at least as many useful facts" (a homomorphism over the original,
  inferred-accessible and accessible relations, fixing the canonical
  constants of the query's free variables) at no higher cost.

Search order follows the paper: depth-first on the leftmost branch, with
candidates ordered by derivation depth and methods by expected cost; a
best-first (cheapest partial plan) strategy is also provided.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy
from repro.chase.stats import ChaseStats
from repro.cost.functions import (
    CostFunction,
    CountingCostFunction,
    SimpleCostFunction,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Null, NullFactory, Variable
from repro.planner.plan_state import PlanState, PlanningError
from repro.planner.proof_to_plan import (
    ChaseProof,
    Exposure,
    SaturationLog,
    fire_access,
    initial_configuration,
    success_match,
)
from repro.plans.plan import Plan
from repro.schema.accessible import (
    ACCESSIBLE,
    AccessibleSchema,
    Variant,
    accessed_name,
    infacc_name,
    is_accessed_name,
    is_infacc_name,
)
from repro.schema.core import AccessMethod, Schema


@dataclass
class SearchOptions:
    """Tuning knobs for Algorithm 1."""

    max_accesses: int = 6
    cost: Optional[CostFunction] = None
    prune_by_cost: bool = True
    domination: bool = True
    expose_induced: bool = True
    strategy: str = "dfs"  # or "best-first"
    # Candidate ordering within a node: "depth" prefers facts of minimal
    # derivation depth (paper default), "method" prefers the cheapest
    # method first (the fixed method priority of Example 5 / Figure 1).
    candidate_order: str = "depth"
    # Optional beam width: keep only the best-ranked N candidates per
    # node.  Cuts the tree aggressively but FORFEITS Theorem 9 optimality
    # (and certified negatives: exhausted is forced False).
    beam_width: Optional[int] = None
    chase_policy: Optional[ChasePolicy] = None
    max_nodes: Optional[int] = None
    stop_on_first: bool = False
    collect_tree: bool = False


@dataclass
class SearchStats:
    """Counters reported by one search run."""

    nodes_created: int = 0
    nodes_expanded: int = 0
    successes: int = 0
    pruned_by_cost: int = 0
    pruned_by_domination: int = 0
    pruned_by_depth: int = 0
    best_cost_history: List[float] = field(default_factory=list)
    # Aggregated instrumentation of every per-node chase saturation.
    chase: ChaseStats = field(default_factory=ChaseStats)


@dataclass
class SearchNode:
    """One node of the partial proof tree."""

    node_id: int
    parent_id: Optional[int]
    config: ChaseConfiguration
    state: PlanState
    exposures: Tuple[Exposure, ...]
    cost: float
    successful: bool = False
    pruned: Optional[str] = None
    pending: List[Tuple[Atom, AccessMethod]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Number of access commands in the partial plan."""
        return self.state.access_command_count

    @property
    def is_terminal(self) -> bool:
        """Successful or out of candidates (Algorithm 1's terminal nodes)."""
        return self.successful or not self.pending


@dataclass
class SearchResult:
    """Outcome of one Algorithm 1 run."""

    best_plan: Optional[Plan]
    best_cost: float
    best_proof: Optional[ChaseProof]
    stats: SearchStats
    tree: Tuple[SearchNode, ...] = ()
    # True when the bounded proof space was fully explored AND every
    # cost-free saturation genuinely reached a fixpoint: a failed search
    # is then a *certified* "no plan within the access budget".
    exhausted: bool = False

    @property
    def found(self) -> bool:
        """Whether a complete plan was found."""
        return self.best_plan is not None


def plan_search(
    acc_schema: AccessibleSchema,
    query: ConjunctiveQuery,
    options: Optional[SearchOptions] = None,
) -> SearchResult:
    """Run Algorithm 1 over the given accessible schema and query."""
    searcher = _Searcher(acc_schema, query, options or SearchOptions())
    return searcher.run()


def find_best_plan(
    schema: Schema,
    query: ConjunctiveQuery,
    options: Optional[SearchOptions] = None,
) -> SearchResult:
    """Build ``AcSch(schema)`` and search for the cheapest plan."""
    schema.validate_query(query)
    return plan_search(
        AccessibleSchema(schema, Variant.FORWARD), query, options
    )


def find_any_plan(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    chase_policy: Optional[ChasePolicy] = None,
) -> SearchResult:
    """First-proof search: stop at the first complete plan found."""
    options = SearchOptions(
        max_accesses=max_accesses,
        cost=CountingCostFunction(),
        stop_on_first=True,
        chase_policy=chase_policy,
    )
    return find_best_plan(schema, query, options)


# ---------------------------------------------------------------- internals
class _Searcher:
    def __init__(
        self,
        acc_schema: AccessibleSchema,
        query: ConjunctiveQuery,
        options: SearchOptions,
    ) -> None:
        self.acc = acc_schema
        self.schema = acc_schema.schema
        self.query = query
        self.options = options
        self.cost = options.cost or SimpleCostFunction.from_schema(
            self.schema
        )
        self.nulls = NullFactory("s")
        self.stats = SearchStats()
        self.best_plan: Optional[Plan] = None
        self.best_cost = float("inf")
        self.best_proof: Optional[ChaseProof] = None
        self.nodes: List[SearchNode] = []
        # Domination registry: every non-pruned node explored so far.
        self._registry: List[SearchNode] = []
        self.saturation_log = SaturationLog()
        self._drained = False
        self._ids = itertools.count()
        self.head_nulls: Dict[Variable, Null] = {}
        # Methods ordered by expected cost (the paper's fixed priority).
        self._method_priority = {
            m.name: (self.cost.method_cost(m.name), m.name)
            for m in self.schema.methods
        }

    # ------------------------------------------------------------- setup
    def _make_root(self) -> SearchNode:
        config, frozen = initial_configuration(
            self.acc,
            self.query,
            self.nulls,
            self.options.chase_policy,
            log=self.saturation_log,
        )
        self.head_nulls = frozen
        root = SearchNode(
            node_id=next(self._ids),
            parent_id=None,
            config=config,
            state=PlanState(),
            exposures=(),
            cost=0.0,
        )
        self._finalize_node(root)
        return root

    # ------------------------------------------------------------- main
    def run(self) -> SearchResult:
        """Execute every command; returns the output table."""
        root = self._make_root()
        if self.options.strategy == "best-first":
            self._run_best_first(root)
        else:
            self._run_dfs(root)
        self.stats.chase = self.saturation_log.stats
        return SearchResult(
            best_plan=self.best_plan,
            best_cost=self.best_cost,
            best_proof=self.best_proof,
            stats=self.stats,
            tree=tuple(self.nodes) if self.options.collect_tree else (),
            exhausted=(
                self._drained
                and self.saturation_log.complete
                and self.options.beam_width is None
            ),
        )

    def _run_dfs(self, root: SearchNode) -> None:
        stack = [root]
        while stack:
            if self._budget_exhausted():
                return
            node = stack[-1]
            if node.is_terminal:
                stack.pop()
                continue
            fact, method = node.pending.pop(0)
            child = self._expand(node, fact, method)
            if child is not None:
                if self.options.stop_on_first and child.successful:
                    return
                stack.append(child)
        self._drained = True

    def _run_best_first(self, root: SearchNode) -> None:
        counter = itertools.count()
        heap: List[Tuple[float, int, SearchNode]] = []
        heapq.heappush(heap, (root.cost, next(counter), root))
        while heap:
            if self._budget_exhausted():
                return
            _, _, node = heapq.heappop(heap)
            if node.successful:
                continue
            while node.pending:
                fact, method = node.pending.pop(0)
                child = self._expand(node, fact, method)
                if child is not None:
                    if self.options.stop_on_first and child.successful:
                        return
                    if not child.is_terminal:
                        heapq.heappush(
                            heap, (child.cost, next(counter), child)
                        )
        self._drained = True

    def _budget_exhausted(self) -> bool:
        return (
            self.options.max_nodes is not None
            and self.stats.nodes_created >= self.options.max_nodes
        )

    # --------------------------------------------------------- expansion
    def _expand(
        self, node: SearchNode, fact: Atom, method: AccessMethod
    ) -> Optional[SearchNode]:
        self.stats.nodes_expanded += 1
        config = node.config.copy()
        try:
            state, _exposed = fire_access(
                config,
                node.state,
                fact,
                method,
                self.acc,
                self.nulls,
                self.options.chase_policy,
                expose_induced=self.options.expose_induced,
                log=self.saturation_log,
            )
        except PlanningError:
            return None
        if state.access_command_count > self.options.max_accesses:
            self.stats.pruned_by_depth += 1
            return None
        cost = self.cost.commands_cost(state.commands)
        child = SearchNode(
            node_id=next(self._ids),
            parent_id=node.node_id,
            config=config,
            state=state,
            exposures=node.exposures + (Exposure(fact, method.name),),
            cost=cost,
        )
        if self.options.prune_by_cost and cost >= self.best_cost:
            self.stats.pruned_by_cost += 1
            child.pruned = "cost"
            self._record(child)
            return None
        if self.options.domination and self._is_dominated(child):
            self.stats.pruned_by_domination += 1
            child.pruned = "domination"
            self._record(child)
            return None
        self._finalize_node(child)
        return child

    def _finalize_node(self, node: SearchNode) -> None:
        """Success check, candidate generation, registration."""
        self.stats.nodes_created += 1
        match = success_match(node.config, self.query, self.head_nulls)
        if match is not None:
            node.successful = True
            self.stats.successes += 1
            plan = node.state.finish(
                tuple(self.head_nulls[v] for v in self.query.head),
                name=f"plan@{node.node_id}",
            )
            plan_cost = self.cost.plan_cost(plan)
            if plan_cost < self.best_cost:
                self.best_cost = plan_cost
                self.best_plan = plan
                self.best_proof = ChaseProof(self.query, node.exposures)
                self.stats.best_cost_history.append(plan_cost)
        else:
            node.pending = self._candidates(node)
        self._record(node)
        self._registry.append(node)

    def _record(self, node: SearchNode) -> None:
        if self.options.collect_tree:
            self.nodes.append(node)

    def _candidates(
        self, node: SearchNode
    ) -> List[Tuple[Atom, AccessMethod]]:
        """Candidate (fact, method) pairs for exposure, in search order."""
        out: List[Tuple[Atom, AccessMethod, Tuple]] = []
        for relation in self.schema.relations:
            methods = self.schema.methods_of(relation.name)
            if not methods:
                continue
            for fact in node.config.facts_of(relation.name):
                accessed = fact.rename_relation(accessed_name(fact.relation))
                if accessed in node.config:
                    continue
                for method in methods:
                    if all(
                        node.config.is_accessible(fact.terms[p])
                        for p in method.input_positions
                    ):
                        if self.options.candidate_order == "method":
                            rank = (
                                self._method_priority[method.name],
                                node.config.depth(fact),
                                repr(fact),
                            )
                        else:
                            rank = (
                                node.config.depth(fact),
                                self._method_priority[method.name],
                                repr(fact),
                            )
                        out.append((fact, method, rank))
        out.sort(key=lambda item: item[2])
        candidates = [(fact, method) for fact, method, _ in out]
        if self.options.beam_width is not None:
            candidates = candidates[: self.options.beam_width]
        return candidates

    # -------------------------------------------------------- domination
    def _is_dominated(self, child: SearchNode) -> bool:
        pattern = _relevant_facts(child.config)
        child_relations = {atom.relation for atom in pattern}
        frozen = Substitution(
            {null: null for null in self.head_nulls.values()}
        )
        for other in self._registry:
            if other.cost > child.cost + 1e-12:
                continue
            # Cheap prefilter: a homomorphism needs every relation of the
            # pattern present in the target configuration.
            if not child_relations <= set(other.config.relations()):
                continue
            hom = find_homomorphism(
                pattern, other.config.index, frozen, map_nulls=True
            )
            if hom is not None:
                return True
        return False


def _relevant_facts(config: ChaseConfiguration) -> List[Atom]:
    """Facts the domination homomorphism must preserve.

    The paper requires preservation of original-schema and
    inferred-accessible facts; we additionally preserve ``_accessible``
    facts, which only makes domination *harder* to establish (strictly
    fewer prunes -- safe).
    """
    out: List[Atom] = []
    for relation in config.relations():
        if is_accessed_name(relation):
            continue
        out.extend(config.facts_of(relation))
    return out
