"""Algorithm 1: cost-guided exploration of the proof space (Section 5).

The search maintains a *partial proof tree*.  Each node carries a chase
configuration (saturated under cost-free rules -- the eager-proof
discipline), the partial plan generated so far, and its cost.  Expanding
a node fires one accessibility axiom for a *candidate fact for exposure*:
a fact of an original relation, not yet accessed, whose chosen method's
input positions all hold accessible values.

Pruning (the paper's "Optimizations"):

* cost-bound -- monotone costs let us abort any node whose partial plan
  already costs at least as much as the best complete plan found;
* domination -- a new node is discarded when an already-explored node has
  "at least as many useful facts" (a homomorphism over the original,
  inferred-accessible and accessible relations, fixing the canonical
  constants of the query's free variables) at no higher cost.

Search order follows the paper: depth-first on the leftmost branch, with
candidates ordered by derivation depth and methods by expected cost; a
best-first (cheapest partial plan) strategy is also provided.

The hot loop is incremental end to end (see ``docs/theory.md``,
"Search-state indexing and incrementality"):

* domination queries go through a fingerprint-indexed registry
  (:mod:`repro.planner.domination`) instead of a linear scan, with the
  old scan available as a differential oracle (``domination_index``);
* children inherit the parent's ranked candidate list and extend it only
  from ``config.facts_since(parent_generation)`` plus facts whose input
  positions newly became accessible (``incremental_candidates``);
* monotone cost functions are charged only for the appended commands via
  :meth:`CostFunction.delta_cost` (``incremental_cost``);
* configuration forks are copy-on-write (``cow_configs``), sharing the
  parent's generation-log prefix instead of deep-copying the index.

Each piece can be switched back to the original full recomputation for
differential testing and the search benchmarks' baseline mode.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy
from repro.chase.stats import ChaseStats
from repro.cost.functions import (
    CostFunction,
    CountingCostFunction,
    SimpleCostFunction,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Null, NullFactory, Term, Variable
from repro.planner.domination import (
    DominationRegistry,
    DominationStats,
    make_registry,
)
from repro.planner.plan_state import PlanState, PlanningError
from repro.planner.proof_to_plan import (
    ChaseProof,
    Exposure,
    SaturationLog,
    fire_access,
    initial_configuration,
    success_match,
)
from repro.plans.plan import Plan
from repro.schema.accessible import (
    ACCESSIBLE,
    AccessibleSchema,
    Variant,
    accessed_name,
    infacc_name,
    is_accessed_name,
    is_infacc_name,
)
from repro.schema.core import AccessMethod, Schema


@dataclass
class SearchOptions:
    """Tuning knobs for Algorithm 1."""

    max_accesses: int = 6
    cost: Optional[CostFunction] = None
    prune_by_cost: bool = True
    # Incumbent-based branch-and-bound: close any non-successful node
    # whose cost plus the cost function's admissible completion margin
    # (``CostFunction.min_access_charge()`` -- every descendant appends
    # at least one more access command) already reaches the incumbent
    # best cost.  Strictly stronger than ``prune_by_cost`` alone and
    # plan-preserving whenever the margin is sound (a descendant could
    # at best *tie* the incumbent, never beat it); off by default so
    # node-count baselines stay bit-identical.
    prune_by_bound: bool = False
    domination: bool = True
    expose_induced: bool = True
    strategy: str = "dfs"  # or "best-first"
    # Candidate ordering within a node: "depth" prefers facts of minimal
    # derivation depth (paper default), "method" prefers the cheapest
    # method first (the fixed method priority of Example 5 / Figure 1).
    candidate_order: str = "depth"
    # Optional beam width: keep only the best-ranked N candidates per
    # node.  Cuts the tree aggressively but FORFEITS Theorem 9 optimality
    # (and certified negatives: exhausted is forced False).
    beam_width: Optional[int] = None
    chase_policy: Optional[ChasePolicy] = None
    max_nodes: Optional[int] = None
    stop_on_first: bool = False
    collect_tree: bool = False
    # Domination registry flavour: "fingerprint" (signature-subsumption
    # index), "linear" (the original prefiltered scan), "naive" (a full
    # homomorphism per registered node -- the benchmarks' unoptimized
    # reference), or "differential" (fingerprint + linear, with
    # agreement asserted on every check).
    domination_index: str = "fingerprint"
    # Incremental hot-loop machinery; each switch falls back to the
    # original full recomputation when False (baseline/differential mode).
    incremental_candidates: bool = True
    incremental_cost: bool = True
    cow_configs: bool = True


@dataclass
class SearchStats:
    """Counters reported by one search run."""

    nodes_created: int = 0
    nodes_expanded: int = 0
    successes: int = 0
    pruned_by_cost: int = 0
    pruned_by_bound: int = 0
    pruned_by_domination: int = 0
    pruned_by_depth: int = 0
    best_cost_history: List[float] = field(default_factory=list)
    # Aggregated instrumentation of every per-node chase saturation.
    chase: ChaseStats = field(default_factory=ChaseStats)
    # Domination-check breakdown (see repro.planner.domination).
    domination: DominationStats = field(default_factory=DominationStats)
    # Candidate generation: pairs inherited from the parent's list vs.
    # freshly discovered from the configuration delta.
    candidates_inherited: int = 0
    candidates_fresh: int = 0
    # Wall time inside the hot loop's three incremental pieces.
    time_copy: float = 0.0
    time_candidates: float = 0.0
    time_cost: float = 0.0

    def summary(self) -> str:
        """A human-readable breakdown (printed by ``--search-stats``)."""
        d = self.domination
        return "\n".join(
            [
                f"nodes: created={self.nodes_created} "
                f"expanded={self.nodes_expanded} successes={self.successes}",
                f"pruned: cost={self.pruned_by_cost} "
                f"bound={self.pruned_by_bound} "
                f"domination={self.pruned_by_domination} "
                f"depth={self.pruned_by_depth}",
                f"domination checks: {d.checks} "
                f"(candidates={d.candidates} hom_calls={d.hom_calls} "
                f"avoided={d.hom_calls_avoided} "
                f"time={d.time_seconds:.4f}s)",
                f"candidates: inherited={self.candidates_inherited} "
                f"fresh={self.candidates_fresh}",
                f"time: copy={self.time_copy:.4f}s "
                f"candidates={self.time_candidates:.4f}s "
                f"cost={self.time_cost:.4f}s",
            ]
        )

    def as_dict(self) -> dict:
        """JSON-ready rendering (used by ``benchmarks/bench_search.py``)."""
        return {
            "nodes_created": self.nodes_created,
            "nodes_expanded": self.nodes_expanded,
            "successes": self.successes,
            "pruned_by_cost": self.pruned_by_cost,
            "pruned_by_bound": self.pruned_by_bound,
            "pruned_by_domination": self.pruned_by_domination,
            "pruned_by_depth": self.pruned_by_depth,
            "domination": self.domination.as_dict(),
            "candidates_inherited": self.candidates_inherited,
            "candidates_fresh": self.candidates_fresh,
            "time_copy": self.time_copy,
            "time_candidates": self.time_candidates,
            "time_cost": self.time_cost,
        }


@dataclass
class SearchNode:
    """One node of the partial proof tree."""

    node_id: int
    parent_id: Optional[int]
    config: ChaseConfiguration
    state: PlanState
    exposures: Tuple[Exposure, ...]
    cost: float
    successful: bool = False
    pruned: Optional[str] = None
    # Full ranked candidate list (rank, fact, method); children inherit
    # it, so it is never truncated -- ``limit`` caps consumption (beam
    # search) and ``cursor`` walks it in O(1) per candidate.
    candidates: List[Tuple[Tuple, Atom, AccessMethod]] = field(
        default_factory=list
    )
    cursor: int = 0
    limit: Optional[int] = None
    # Configuration generation at finalize time: children ask
    # ``facts_since(parent.generation)`` for their candidate delta.
    generation: int = 0
    # Opaque CostFunction accumulator threaded through delta_cost.
    cost_state: object = None

    @property
    def _end(self) -> int:
        if self.limit is None:
            return len(self.candidates)
        return min(self.limit, len(self.candidates))

    @property
    def pending(self) -> List[Tuple[Atom, AccessMethod]]:
        """Remaining (fact, method) candidates, in search order."""
        return [
            (fact, method)
            for _, fact, method in self.candidates[self.cursor : self._end]
        ]

    @property
    def has_pending(self) -> bool:
        """Whether any candidate remains to be expanded."""
        return self.cursor < self._end

    def next_candidate(self) -> Tuple[Atom, AccessMethod]:
        """Consume and return the next candidate (cursor advance)."""
        _, fact, method = self.candidates[self.cursor]
        self.cursor += 1
        return fact, method

    @property
    def depth(self) -> int:
        """Number of access commands in the partial plan."""
        return self.state.access_command_count

    @property
    def is_terminal(self) -> bool:
        """Successful or out of candidates (Algorithm 1's terminal nodes)."""
        return self.successful or not self.has_pending


@dataclass
class SearchResult:
    """Outcome of one Algorithm 1 run."""

    best_plan: Optional[Plan]
    best_cost: float
    best_proof: Optional[ChaseProof]
    stats: SearchStats
    tree: Tuple[SearchNode, ...] = ()
    # True when the bounded proof space was fully explored AND every
    # cost-free saturation genuinely reached a fixpoint: a failed search
    # is then a *certified* "no plan within the access budget".
    exhausted: bool = False

    @property
    def found(self) -> bool:
        """Whether a complete plan was found."""
        return self.best_plan is not None


def plan_search(
    acc_schema: AccessibleSchema,
    query: ConjunctiveQuery,
    options: Optional[SearchOptions] = None,
) -> SearchResult:
    """Run Algorithm 1 over the given accessible schema and query."""
    searcher = _Searcher(acc_schema, query, options or SearchOptions())
    return searcher.run()


def find_best_plan(
    schema: Schema,
    query: ConjunctiveQuery,
    options: Optional[SearchOptions] = None,
) -> SearchResult:
    """Build ``AcSch(schema)`` and search for the cheapest plan."""
    schema.validate_query(query)
    return plan_search(
        AccessibleSchema(schema, Variant.FORWARD), query, options
    )


def find_any_plan(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    chase_policy: Optional[ChasePolicy] = None,
) -> SearchResult:
    """First-proof search: stop at the first complete plan found."""
    options = SearchOptions(
        max_accesses=max_accesses,
        cost=CountingCostFunction(),
        stop_on_first=True,
        chase_policy=chase_policy,
    )
    return find_best_plan(schema, query, options)


# ---------------------------------------------------------------- internals
class _Searcher:
    def __init__(
        self,
        acc_schema: AccessibleSchema,
        query: ConjunctiveQuery,
        options: SearchOptions,
    ) -> None:
        self.acc = acc_schema
        self.schema = acc_schema.schema
        self.query = query
        self.options = options
        self.cost = options.cost or SimpleCostFunction.from_schema(
            self.schema
        )
        self.nulls = NullFactory("s")
        self.stats = SearchStats()
        self.best_plan: Optional[Plan] = None
        self.best_cost = float("inf")
        self.best_proof: Optional[ChaseProof] = None
        self.nodes: List[SearchNode] = []
        # Domination registry over every non-pruned node explored so far;
        # built in _make_root once the frozen head nulls are known.
        self._registry: Optional[DominationRegistry] = None
        self.saturation_log = SaturationLog()
        self._drained = False
        self._ids = itertools.count()
        self.head_nulls: Dict[Variable, Null] = {}
        # Admissible completion margin for branch-and-bound: every
        # descendant of a non-successful node appends at least one
        # access command, which charges at least this much.
        self._min_access_charge = self.cost.min_access_charge()
        # Methods ordered by expected cost (the paper's fixed priority).
        self._method_priority = {
            m.name: (self.cost.method_cost(m.name), m.name)
            for m in self.schema.methods
        }
        # Accessed relations only: relations without methods can never be
        # exposed, so candidate generation skips them entirely.
        self._methods_by_relation: Dict[str, Tuple[AccessMethod, ...]] = {
            r.name: tuple(self.schema.methods_of(r.name))
            for r in self.schema.relations
            if self.schema.methods_of(r.name)
        }
        # Input positions a relation's methods read: when a term becomes
        # accessible, only facts holding it in one of these positions can
        # turn into new candidates.
        self._input_positions: Dict[str, Tuple[int, ...]] = {
            relation: tuple(
                sorted({p for m in methods for p in m.input_positions})
            )
            for relation, methods in self._methods_by_relation.items()
        }

    # ------------------------------------------------------------- setup
    def _make_root(self) -> SearchNode:
        config, frozen = initial_configuration(
            self.acc,
            self.query,
            self.nulls,
            self.options.chase_policy,
            log=self.saturation_log,
        )
        self.head_nulls = frozen
        rigid = frozenset(self.head_nulls.values())
        self._registry = make_registry(
            self.options.domination_index,
            Substitution({null: null for null in rigid}),
            rigid,
        )
        root = SearchNode(
            node_id=next(self._ids),
            parent_id=None,
            config=config,
            state=PlanState(),
            exposures=(),
            cost=0.0,
            cost_state=(
                self.cost.cost_state()
                if self.options.incremental_cost
                else None
            ),
        )
        self._finalize_node(root)
        return root

    # ------------------------------------------------------------- main
    def run(self) -> SearchResult:
        """Drive the chosen search strategy over the bounded proof space
        and package the best plan found (if any) with its statistics."""
        root = self._make_root()
        if self.options.strategy == "best-first":
            self._run_best_first(root)
        else:
            self._run_dfs(root)
        self.stats.chase = self.saturation_log.stats
        self.stats.domination = self._registry.stats
        return SearchResult(
            best_plan=self.best_plan,
            best_cost=self.best_cost,
            best_proof=self.best_proof,
            stats=self.stats,
            tree=tuple(self.nodes) if self.options.collect_tree else (),
            exhausted=(
                self._drained
                and self.saturation_log.complete
                and self.options.beam_width is None
            ),
        )

    def _run_dfs(self, root: SearchNode) -> None:
        stack = [root]
        while stack:
            if self._budget_exhausted():
                return
            node = stack[-1]
            if node.is_terminal:
                stack.pop()
                continue
            fact, method = node.next_candidate()
            child = self._expand(node, fact, method)
            if child is not None:
                if self.options.stop_on_first and child.successful:
                    return
                stack.append(child)
        self._drained = True

    def _run_best_first(self, root: SearchNode) -> None:
        counter = itertools.count()
        heap: List[Tuple[float, int, SearchNode]] = []
        heapq.heappush(heap, (root.cost, next(counter), root))
        while heap:
            if self._budget_exhausted():
                return
            _, _, node = heapq.heappop(heap)
            if node.successful:
                continue
            while node.has_pending:
                fact, method = node.next_candidate()
                child = self._expand(node, fact, method)
                if child is not None:
                    if self.options.stop_on_first and child.successful:
                        return
                    if not child.is_terminal:
                        heapq.heappush(
                            heap, (child.cost, next(counter), child)
                        )
        self._drained = True

    def _budget_exhausted(self) -> bool:
        return (
            self.options.max_nodes is not None
            and self.stats.nodes_created >= self.options.max_nodes
        )

    # --------------------------------------------------------- expansion
    def _expand(
        self, node: SearchNode, fact: Atom, method: AccessMethod
    ) -> Optional[SearchNode]:
        self.stats.nodes_expanded += 1
        tick = time.perf_counter()
        if self.options.cow_configs:
            config = node.config.copy()
        else:
            config = node.config.deep_copy()
        self.stats.time_copy += time.perf_counter() - tick
        try:
            state, _exposed = fire_access(
                config,
                node.state,
                fact,
                method,
                self.acc,
                self.nulls,
                self.options.chase_policy,
                expose_induced=self.options.expose_induced,
                log=self.saturation_log,
            )
        except PlanningError:
            return None
        if state.access_command_count > self.options.max_accesses:
            self.stats.pruned_by_depth += 1
            return None
        tick = time.perf_counter()
        if self.options.incremental_cost:
            new_commands = state.commands[len(node.state.commands) :]
            cost_state, cost = self.cost.delta_cost(
                node.cost_state, new_commands
            )
        else:
            cost_state, cost = None, self.cost.commands_cost(state.commands)
        self.stats.time_cost += time.perf_counter() - tick
        child = SearchNode(
            node_id=next(self._ids),
            parent_id=node.node_id,
            config=config,
            state=state,
            exposures=node.exposures + (Exposure(fact, method.name),),
            cost=cost,
            cost_state=cost_state,
        )
        if self.options.prune_by_cost and cost >= self.best_cost:
            self.stats.pruned_by_cost += 1
            child.pruned = "cost"
            self._record(child)
            return None
        if (
            self.options.domination
            and self._registry.find_dominator(child.cost, child.config)
            is not None
        ):
            self.stats.pruned_by_domination += 1
            child.pruned = "domination"
            self._record(child)
            return None
        self._finalize_node(child, parent=node)
        return child

    def _finalize_node(
        self, node: SearchNode, parent: Optional[SearchNode] = None
    ) -> None:
        """Success check, candidate generation, registration."""
        self.stats.nodes_created += 1
        node.generation = node.config.generation
        match = success_match(node.config, self.query, self.head_nulls)
        if match is not None:
            node.successful = True
            self.stats.successes += 1
            plan = node.state.finish(
                tuple(self.head_nulls[v] for v in self.query.head),
                name=f"plan@{node.node_id}",
            )
            plan_cost = self.cost.plan_cost(plan)
            if plan_cost < self.best_cost:
                self.best_cost = plan_cost
                self.best_plan = plan
                self.best_proof = ChaseProof(self.query, node.exposures)
                self.stats.best_cost_history.append(plan_cost)
        elif (
            self.options.prune_by_bound
            and self.best_plan is not None
            and node.cost + self._min_access_charge >= self.best_cost
        ):
            # Branch-and-bound: this node is not successful, so every
            # descendant plan costs at least node.cost plus the margin
            # -- it can at best tie the incumbent.  Close the subtree
            # (no candidates generated); the node still registers with
            # the domination index so it keeps pruning others.
            self.stats.pruned_by_bound += 1
            node.pruned = "bound"
        else:
            tick = time.perf_counter()
            if parent is not None and self.options.incremental_candidates:
                node.candidates = self._child_candidates(node, parent)
            else:
                node.candidates = self._full_candidates(node)
            if self.options.beam_width is not None:
                node.limit = self.options.beam_width
            self.stats.time_candidates += time.perf_counter() - tick
        self._record(node)
        if self.options.domination:
            self._registry.register(node.node_id, node.cost, node.config)

    def _record(self, node: SearchNode) -> None:
        if self.options.collect_tree:
            self.nodes.append(node)

    # -------------------------------------------------------- candidates
    def _rank(
        self, config: ChaseConfiguration, fact: Atom, method: AccessMethod
    ) -> Tuple:
        """The node-independent sort key of a candidate pair.

        Derivation depth comes from the fact's provenance, fixed at first
        insertion and shared down the branch, so a pair ranks identically
        in every configuration containing the fact -- which is what lets
        children merge inherited and fresh candidates without re-sorting.
        """
        if self.options.candidate_order == "method":
            return (
                self._method_priority[method.name],
                config.depth(fact),
                repr(fact),
            )
        return (
            config.depth(fact),
            self._method_priority[method.name],
            repr(fact),
        )

    def _full_candidates(
        self, node: SearchNode
    ) -> List[Tuple[Tuple, Atom, AccessMethod]]:
        """Candidate (fact, method) pairs for exposure, in search order.

        Full rescan of every accessed relation -- used for the root and
        as the non-incremental baseline.
        """
        config = node.config
        out: List[Tuple[Tuple, Atom, AccessMethod]] = []
        for relation, methods in self._methods_by_relation.items():
            for fact in config.facts_of(relation):
                accessed = fact.rename_relation(
                    accessed_name(fact.relation)
                )
                if accessed in config:
                    continue
                for method in methods:
                    if all(
                        config.is_accessible(fact.terms[p])
                        for p in method.input_positions
                    ):
                        out.append((self._rank(config, fact, method), fact, method))
        out.sort(key=lambda item: item[0])
        return out

    def _child_candidates(
        self, node: SearchNode, parent: SearchNode
    ) -> List[Tuple[Tuple, Atom, AccessMethod]]:
        """Incremental candidate generation from the parent's list.

        Sound because configurations only grow along a branch: a pair
        valid in the parent stays valid in the child unless its fact got
        an accessed copy (checked during inheritance), and a pair valid
        in the child but not in the parent must involve either a fact
        from the delta ``facts_since(parent.generation)`` or a fact whose
        missing input term became accessible in that delta.
        """
        config = node.config
        inherited: List[Tuple[Tuple, Atom, AccessMethod]] = []
        seen: Set[Tuple[Atom, str]] = set()
        dropped = False
        for rank, fact, method in parent.candidates:
            accessed = fact.rename_relation(accessed_name(fact.relation))
            if accessed in config:
                dropped = True
                continue
            inherited.append((rank, fact, method))
            seen.add((fact, method.name))
        fresh: List[Tuple[Tuple, Atom, AccessMethod]] = []
        new_terms: List[Term] = []
        for fact in config.facts_since(parent.generation):
            if fact.relation == ACCESSIBLE:
                new_terms.append(fact.terms[0])
                continue
            methods = self._methods_by_relation.get(fact.relation)
            if methods:
                self._try_candidate(config, fact, methods, seen, fresh)
        for term in new_terms:
            for relation, positions in self._input_positions.items():
                methods = self._methods_by_relation[relation]
                for position in positions:
                    for fact in config.index.facts_with(
                        relation, position, term
                    ):
                        self._try_candidate(
                            config, fact, methods, seen, fresh
                        )
        fresh.sort(key=lambda item: item[0])
        self.stats.candidates_inherited += len(inherited)
        self.stats.candidates_fresh += len(fresh)
        # Ranks are node-independent and the inherited list is already
        # sorted (a filtered subsequence of the parent's), so a linear
        # merge reproduces the full rescan's order exactly.  Candidate
        # lists are never mutated after construction (nodes walk them by
        # integer cursor), so when nothing was filtered and nothing is
        # fresh the parent's list can be shared by reference -- deep
        # branches stop paying an O(n) copy per child.
        if not fresh:
            return parent.candidates if not dropped else inherited
        if not inherited:
            return fresh
        return list(
            heapq.merge(inherited, fresh, key=lambda item: item[0])
        )

    def _try_candidate(
        self,
        config: ChaseConfiguration,
        fact: Atom,
        methods: Sequence[AccessMethod],
        seen: Set[Tuple[Atom, str]],
        out: List[Tuple[Tuple, Atom, AccessMethod]],
    ) -> None:
        """Append every fireable (fact, method) pair not seen before."""
        accessed = fact.rename_relation(accessed_name(fact.relation))
        if accessed in config:
            return
        for method in methods:
            key = (fact, method.name)
            if key in seen:
                continue
            if all(
                config.is_accessible(fact.terms[p])
                for p in method.input_positions
            ):
                seen.add(key)
                out.append((self._rank(config, fact, method), fact, method))
