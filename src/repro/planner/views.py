"""Theorem 6: conjunctive rewriting over views by chasing.

View-based access restrictions are the special case where some relations
(the views ``V_i``) are fully accessible and constraints state each view
equivalent to a conjunctive query ``Q_i`` over a hidden base signature.
The paper shows the accessible-schema chase terminates in polynomially
many steps here, so chase-then-check decides whether a CQ over the base
can be rewritten as a CQ over the views -- recovering the seminal
answering-queries-using-views result of Levy, Mendelzon, Sagiv and
Srivastava.

:func:`views_schema` compiles view definitions into the two inclusion
TGDs per view; :func:`rewrite_over_views` runs the proof search and, on
success, also reads the rewriting back as a conjunctive query over the
view relations (every exposure in the proof contributes one view atom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chase.engine import ChasePolicy
from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Null, Term, Variable
from repro.planner.proof_to_plan import ChaseProof
from repro.planner.search import (
    SearchOptions,
    SearchResult,
    find_best_plan,
)
from repro.cost.functions import CountingCostFunction
from repro.plans.plan import Plan
from repro.schema.core import AccessMethod, Relation, Schema, SchemaError


@dataclass(frozen=True)
class ViewDefinition:
    """A view relation defined by a conjunctive query over the base."""

    name: str
    definition: ConjunctiveQuery

    @property
    def arity(self) -> int:
        """Arity of the view relation (its head width)."""
        return len(self.definition.head)


@dataclass
class ViewRewritingResult:
    """Outcome of a view-rewriting attempt."""

    rewritable: bool
    plan: Optional[Plan]
    rewriting: Optional[ConjunctiveQuery]
    search: SearchResult


def views_schema(
    base_relations: Sequence[Relation],
    views: Sequence[ViewDefinition],
    constants: Sequence[Constant] = (),
    extra_constraints: Sequence[TGD] = (),
    name: str = "views",
    view_inputs: Optional[Dict[str, Sequence[int]]] = None,
) -> Schema:
    """A schema where only the views are accessible.

    Each view contributes two TGDs: definition-to-view (the view contains
    every tuple its definition derives) and view-to-definition (each view
    tuple is witnessed).  Base relations get no access method; views get
    free access by default, or the binding pattern given in
    ``view_inputs`` (the views-with-access-patterns setting of Deutsch,
    Ludäscher and Nash that the paper's §1 relates itself to).
    """
    relations: List[Relation] = list(base_relations)
    methods: List[AccessMethod] = []
    constraints: List[TGD] = list(extra_constraints)
    base_names = {r.name for r in base_relations}
    for view in views:
        if view.name in base_names:
            raise SchemaError(
                f"view {view.name} collides with a base relation"
            )
        head = view.definition.head
        if len(set(head)) != len(head):
            raise SchemaError(
                f"view {view.name}: repeated head variable unsupported"
            )
        relations.append(Relation(view.name, view.arity))
        inputs = tuple((view_inputs or {}).get(view.name, ()))
        methods.append(
            AccessMethod(f"mt_{view.name}", view.name, inputs)
        )
        view_atom = Atom(view.name, tuple(head))
        constraints.append(
            TGD(
                view.definition.atoms,
                (view_atom,),
                name=f"def->{view.name}",
            )
        )
        constraints.append(
            TGD(
                (view_atom,),
                view.definition.atoms,
                name=f"{view.name}->def",
            )
        )
    return Schema(relations, methods, constants, constraints, name=name)


def rewrite_over_views(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 8,
    chase_policy: Optional[ChasePolicy] = None,
) -> ViewRewritingResult:
    """Decide CQ rewritability over the views of a view schema.

    The schema must come from :func:`views_schema` (or be shaped the same
    way: only fully-accessible relations carry methods).  The chase on the
    generated accessible schema terminates for view constraints, so a
    failed bounded search is a genuine "no" whenever the chase reached its
    fixpoint within budget.
    """
    options = SearchOptions(
        max_accesses=max_accesses,
        cost=CountingCostFunction(),
        stop_on_first=True,
        chase_policy=chase_policy or ChasePolicy(max_firings=50_000),
    )
    search = find_best_plan(schema, query, options)
    if not search.found:
        return ViewRewritingResult(False, None, None, search)
    rewriting = _rewriting_from_proof(search.best_proof, query)
    return ViewRewritingResult(True, search.best_plan, rewriting, search)


def _rewriting_from_proof(
    proof: ChaseProof, query: ConjunctiveQuery
) -> ConjunctiveQuery:
    """Read the CQ-over-views off the proof's exposures.

    Every exposed fact ``V(c1..cn)`` becomes an atom with one variable per
    chase constant; the head variables are those standing for the query's
    free variables (canonical nulls are named ``<query>_<var>``).
    """
    def var_of(term: Term) -> Term:
        """Chase constants become variables; schema constants stay."""
        if isinstance(term, Null):
            return Variable(term.name)
        return term

    atoms = tuple(
        Atom(e.fact.relation, tuple(var_of(t) for t in e.fact.terms))
        for e in proof.exposures
    )
    _facts, frozen = query.canonical_database()
    head = tuple(Variable(frozen[v].name) for v in query.head)
    return ConjunctiveQuery(head, atoms, name=f"{query.name}_over_views")
