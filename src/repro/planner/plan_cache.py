"""A fingerprint-keyed cache of planning results.

The millions-of-users regime is many clients issuing *few distinct
queries* (path-view web-service workloads: every user asks "phone of
X", "reachable from Y" with different bindings).  Algorithm 1's search
is by far the most expensive step per request, yet its result depends
only on three inputs:

* the **query** (up to exact syntax -- we key on a canonical text
  rendering, see :func:`canonical_query_text`),
* the **schema** (relations, methods and their declared costs,
  constants, constraints -- keyed by the stable
  :meth:`Schema.fingerprint <repro.schema.core.Schema.fingerprint>`),
* the **cost model** and its knobs (keyed by
  :meth:`CostFunction.identity <repro.cost.functions.CostFunction.identity>`;
  a cached plan is only *best* relative to the cost model that
  picked it).

:func:`plan_cache_key` hashes exactly those three components with
BLAKE2b, so any change to any of them -- a method added, a cost knob
tweaked -- lands on a different key and can never resurrect a stale
plan.  That is the whole soundness argument: the cache maps a complete
planning *problem* to a planning *result*, never a partial one.

:class:`PlanCache` is a thread-safe LRU with an optional on-disk tier
(one JSON file per key under a cache directory), so warmed plans
survive process restarts and can be shared between service replicas on
the same host.  Entries carry the serialized plan IR
(:mod:`repro.plans.ir`), not pickles.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cost.functions import CostFunction
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.plans.ir import PlanIRError, ir_to_plan, plan_to_ir
from repro.plans.plan import Plan
from repro.schema.core import Schema

#: Format marker + version stamped into every on-disk cache entry.
#: Version 2 added the content checksum (entries without one are
#: treated as alien -- a miss, so old caches simply re-fill).
CACHE_KIND = "repro.plan-cache"
CACHE_VERSION = 2


def entry_checksum(entry: Mapping[str, Any]) -> str:
    """The BLAKE2b content checksum of one disk entry (sans checksum).

    Computed over the canonical JSON rendering of every field *except*
    the checksum itself, so any bit flipped by a bad disk, a partial
    write, or a concurrent editor moves the digest and the entry is
    quarantined instead of trusted.
    """
    payload = json.dumps(
        {k: v for k, v in entry.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def canonical_query_text(query: ConjunctiveQuery) -> str:
    """A deterministic text rendering of a conjunctive query.

    Variables render as ``?name``, constants as their JSON encoding
    (which keeps ``3``, ``3.0``, ``"3"`` and ``true`` apart).  The
    query *name* is deliberately excluded: it labels the request, it
    does not change the planning problem.  Atom order is preserved --
    reordered bodies key differently, which costs at most a cache miss,
    never a wrong plan.
    """
    def render(term: object) -> str:
        """Render one head/body term deterministically."""
        if isinstance(term, Variable):
            return f"?{term.name}"
        if isinstance(term, Constant):
            return json.dumps(term.value, sort_keys=True, default=str)
        raise ValueError(f"cannot render query term {term!r}")

    head = ",".join(render(v) for v in query.head)
    body = " & ".join(
        f"{atom.relation}({','.join(render(t) for t in atom.terms)})"
        for atom in query.atoms
    )
    return f"({head}) :- {body}"


def plan_cache_key(
    query: ConjunctiveQuery,
    schema: Schema,
    cost: Optional[CostFunction] = None,
) -> str:
    """The BLAKE2b cache key of one planning problem.

    Hashes the canonical query text, the schema fingerprint and the
    cost-model identity together; ``cost=None`` keys as the planner's
    default (per-method declared costs), which is what
    ``find_best_plan`` resolves it to.
    """
    identity: Dict[str, Any]
    if cost is None:
        identity = {"kind": "default"}
    else:
        identity = cost.identity()
    payload = json.dumps(
        {
            "query": canonical_query_text(query),
            "schema": schema.fingerprint(),
            "cost": identity,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class CachedPlan:
    """One cached planning result."""

    plan: Plan
    cost: float
    #: "memory" or "disk" -- where this hit was served from.
    tier: str = "memory"


class PlanCache:
    """Thread-safe LRU plan cache with an optional on-disk tier.

    ``capacity`` bounds the in-memory tier (least recently *used*
    evicted first; disk entries are never evicted by capacity).  Pass
    ``directory`` to persist entries as one JSON file per key --
    corrupt or alien files are treated as misses, never as errors.
    """

    def __init__(
        self,
        capacity: int = 128,
        directory: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = directory
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Plan, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0
        self.invalidations = 0
        self.quarantined = 0
        self.persist_errors = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[CachedPlan]:
        """The cached result for one key, or None (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CachedPlan(entry[0], entry[1], tier="memory")
        loaded = self._load_from_disk(key)
        with self._lock:
            if loaded is not None:
                self.hits += 1
                self.disk_hits += 1
                self._install(key, loaded.plan, loaded.cost)
                return loaded
            self.misses += 1
            return None

    def put(
        self,
        key: str,
        plan: Plan,
        cost: float,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Store one planning result (memory, and disk if configured).

        ``meta`` is extra JSON-able context (canonical query text,
        schema fingerprint, ...) recorded in the on-disk entry for
        humans inspecting the cache dir; it does not affect lookups.
        """
        with self._lock:
            self._install(key, plan, cost)
            self.stores += 1
        if self.directory:
            entry = {
                "format": CACHE_KIND,
                "version": CACHE_VERSION,
                "key": key,
                "cost": cost,
                "plan": plan_to_ir(plan),
            }
            if meta:
                entry["meta"] = dict(meta)
            entry["checksum"] = entry_checksum(entry)
            path = self._path(key)
            # Thread-unique temp name: two submitting threads storing
            # the same key concurrently (both missed, both searched)
            # must not race on the temp-then-rename protocol.  A failed
            # disk write is counted, not raised -- the memory tier has
            # the entry and the next put retries the disk.
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True, indent=1)
                os.replace(tmp, path)
            except OSError:
                with self._lock:
                    self.persist_errors += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry from both tiers; True when anything was dropped."""
        dropped = False
        with self._lock:
            if self._entries.pop(key, None) is not None:
                dropped = True
        if self.directory:
            try:
                os.remove(self._path(key))
                dropped = True
            except FileNotFoundError:
                pass
        if dropped:
            with self._lock:
                self.invalidations += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry (memory and disk)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.invalidations += count
        if self.directory:
            for name in os.listdir(self.directory):
                if name.endswith(".json"):
                    try:
                        os.remove(os.path.join(self.directory, name))
                    except FileNotFoundError:
                        pass

    # ---------------------------------------------------------- internals
    def _install(self, key: str, plan: Plan, cost: float) -> None:
        self._entries[key] = (plan, cost)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, key: str) -> None:
        """Move one corrupt entry aside and continue (never raise).

        The file is renamed to ``<key>.json.quarantined`` so operators
        can inspect what rotted, the slot reads as a miss (the planner
        re-plans and the next ``put`` writes a fresh entry), and the
        event is counted -- corruption is *visible and survivable*,
        never served and never fatal.
        """
        path = self._path(key)
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:  # pragma: no cover -- racing cleanup is fine
            pass
        with self._lock:
            self.quarantined += 1

    def _load_from_disk(self, key: str) -> Optional[CachedPlan]:
        if not self.directory:
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # Unreadable or not JSON at all: torn write or bad disk.
            self._quarantine(key)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_KIND
            or entry.get("version") != CACHE_VERSION
            or entry.get("key") != key
        ):
            # Alien or outdated format: a miss, not corruption.
            return None
        checksum = entry.get("checksum")
        if not isinstance(checksum, str) or checksum != entry_checksum(entry):
            self._quarantine(key)
            return None
        try:
            plan = ir_to_plan(entry["plan"])
        except (KeyError, TypeError, PlanIRError):
            self._quarantine(key)
            return None
        return CachedPlan(plan, float(entry.get("cost", 0.0)), tier="disk")

    # ------------------------------------------------------------ surface
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, Any]:
        """A JSON-able snapshot of the cache counters (for health())."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "persistent": bool(self.directory),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "quarantined": self.quarantined,
                "persist_errors": self.persist_errors,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self)}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses"
            + (f", dir={self.directory}" if self.directory else "")
            + ")"
        )
