"""Plan existence: is a query completely answerable?

Theorem 1 reduces existence of a (U)SPJ plan to entailment of
``InferredAccQ`` from ``Q`` over ``AcSch(S0)``; for TGD constraints the
chase is the proof system.  For Guarded TGDs the question is decidable
(2EXPTIME-complete, Section 3), and the guarded-bag blocking policy makes
the chase search terminate; for arbitrary TGDs this is a sound
semi-decision procedure bounded by the access budget.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.chase.blocking import BlockingPolicy
from repro.chase.engine import ChasePolicy
from repro.logic.queries import ConjunctiveQuery
from repro.planner.search import (
    SearchOptions,
    SearchResult,
    find_any_plan,
    find_best_plan,
)
from repro.cost.functions import CountingCostFunction
from repro.schema.core import Schema


class Answerability(enum.Enum):
    """Three-valued answerability verdict."""

    ANSWERABLE = "answerable"
    NO_PLAN_WITHIN_BUDGET = "no-plan-within-budget"
    UNKNOWN = "unknown"


def default_policy_for(schema: Schema) -> ChasePolicy:
    """A chase policy fitting the schema's constraint class.

    * weakly acyclic constraints: the chase provably terminates (and the
      accessible schema preserves weak acyclicity -- its extra axioms are
      full TGDs over fresh relation copies), so no safety valve is
      needed beyond a generous firing budget;
    * guarded constraint sets: guarded-bag blocking (safe termination);
    * anything else: a conservative depth bound so saturation returns.
    """
    from repro.logic.analysis import analyze_constraints

    analysis = analyze_constraints(schema.constraints)
    if analysis.weakly_acyclic:
        return ChasePolicy(max_firings=200_000)
    if analysis.guarded:
        return ChasePolicy(blocking=BlockingPolicy(enabled=True))
    return ChasePolicy(max_depth=8, max_firings=20_000)


def is_answerable(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    chase_policy: Optional[ChasePolicy] = None,
) -> bool:
    """True when some complete SPJ plan with at most ``max_accesses``
    access commands answers the query."""
    return answerability_witness(
        schema, query, max_accesses, chase_policy
    ).found


def answerability_witness(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    chase_policy: Optional[ChasePolicy] = None,
) -> SearchResult:
    """The full search result (witnessing plan and proof when they exist)."""
    policy = chase_policy or default_policy_for(schema)
    return find_any_plan(
        schema, query, max_accesses=max_accesses, chase_policy=policy
    )


def decide_answerability(
    schema: Schema,
    query: ConjunctiveQuery,
    max_accesses: int = 6,
    chase_policy: Optional[ChasePolicy] = None,
) -> Answerability:
    """Three-valued decision with certified negatives.

    ``ANSWERABLE``
        a witnessing plan was found (always correct).
    ``NO_PLAN_WITHIN_BUDGET``
        the bounded proof space was *exhausted* with every cost-free
        saturation reaching a true fixpoint (no blocking, no depth or
        firing truncation): there is certifiably no complete SPJ plan
        with at most ``max_accesses`` access commands.
    ``UNKNOWN``
        the search failed but some saturation was truncated (e.g. by
        blocking or a firing budget), so absence of a proof is not a
        proof of absence.
    """
    policy = chase_policy or default_policy_for(schema)
    result = find_best_plan(
        schema,
        query,
        SearchOptions(
            max_accesses=max_accesses,
            cost=CountingCostFunction(),
            chase_policy=policy,
            # Full exploration (no early stop) so exhaustion is meaningful;
            # cost/domination pruning never hide proofs' existence.
            stop_on_first=False,
        ),
    )
    if result.found:
        return Answerability.ANSWERABLE
    if result.exhausted:
        return Answerability.NO_PLAN_WITHIN_BUDGET
    return Answerability.UNKNOWN
