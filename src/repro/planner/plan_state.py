"""The incremental plan builder behind Section 4's proof-to-plan algorithm.

A :class:`PlanState` is the plan-side mirror of a chase configuration:
after j accessibility-axiom firings it holds a command prefix whose
current temporary table ``T_j`` has one attribute per *accessible* chase
constant, and whose rows (on any instance) are candidate homomorphisms
mapping those constants into the instance -- the invariant of Theorem 5.

Each exposure of a fact ``R(c1..cn)`` via method ``mt``:

1. emits (or reuses) an *access command* whose input expression projects
   the current table onto the attributes named by the chase constants at
   ``mt``'s input positions (schema constants are passed through the
   input binding), producing a raw table with positional attributes;
2. emits middleware that filters the raw rows by the fact's constant and
   repeated-null pattern, renames positions to chase-constant names, and
   joins the result with the current table.

Raw access tables are *reused* when a later exposure needs the same
method with the same input binding: this is how the "facts induced by
firing" of Algorithm 1 become cost-free, since only a new join is added.

PlanState is immutable; every operation returns a new state, which is
what lets thousands of search-tree nodes share command prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Term
from repro.plans.commands import (
    AccessCommand,
    Command,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    EqAttr,
    EqConst,
    Expression,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
)
from repro.plans.plan import Plan
from repro.errors import ReproError
from repro.schema.core import AccessMethod


class PlanningError(ReproError):
    """Raised when a plan step is requested that the state cannot honour."""


# Hashable identity of an access: method name plus, per input position,
# either the chase-constant attribute feeding it or the fixed constant.
AccessKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def _attr_of(null: Null) -> str:
    return null.name


@dataclass(frozen=True)
class PlanState:
    """An immutable prefix of an SPJ plan under construction."""

    commands: Tuple[Command, ...] = ()
    current: Optional[str] = None
    attributes: FrozenSet[str] = frozenset()
    access_tables: Tuple[Tuple[AccessKey, str], ...] = ()
    counter: int = 0

    # ------------------------------------------------------------ helpers
    def _registry(self) -> Dict[AccessKey, str]:
        return dict(self.access_tables)

    def _fresh(self, prefix: str, counter: int) -> str:
        return f"{prefix}{counter}"

    def has_attribute(self, null: Null) -> bool:
        """Whether the null's attribute is in the current table."""
        return _attr_of(null) in self.attributes

    # ------------------------------------------------------------ exposure
    def expose(self, fact: Atom, method: AccessMethod) -> "PlanState":
        """Extend the plan with the commands for one accessibility firing."""
        if fact.relation != method.relation:
            raise PlanningError(
                f"method {method.name} is on {method.relation}, "
                f"not {fact.relation}"
            )
        key, binding = self._access_key(fact, method)
        registry = self._registry()
        commands = list(self.commands)
        counter = self.counter
        raw = registry.get(key)
        if raw is None:
            raw = self._fresh("A", counter)
            counter += 1
            commands.append(
                self._access_command(raw, method, binding, fact.arity)
            )
            registry[key] = raw
        incorporate = self._incorporation_expr(fact, raw)
        new_attrs = set(self.attributes)
        new_attrs.update(_attr_of(n) for n in fact.nulls())
        target = self._fresh("T", counter)
        counter += 1
        if self.current is None:
            commands.append(MiddlewareCommand(target, incorporate))
        else:
            commands.append(
                MiddlewareCommand(
                    target, Join(Scan(self.current), incorporate)
                )
            )
        return PlanState(
            commands=tuple(commands),
            current=target,
            attributes=frozenset(new_attrs),
            access_tables=tuple(sorted(registry.items())),
            counter=counter,
        )

    def _access_key(
        self, fact: Atom, method: AccessMethod
    ) -> Tuple[AccessKey, Tuple[Union[str, Constant], ...]]:
        binding: List[Union[str, Constant]] = []
        key_parts: List[Tuple[str, object]] = []
        for position in method.input_positions:
            term = fact.terms[position]
            if isinstance(term, Constant):
                binding.append(term)
                key_parts.append(("const", term.value))
            elif isinstance(term, Null):
                attr = _attr_of(term)
                if attr not in self.attributes:
                    raise PlanningError(
                        f"input value {term!r} of {fact!r} is not yet "
                        f"accessible in the plan (attributes: "
                        f"{sorted(self.attributes)})"
                    )
                binding.append(attr)
                key_parts.append(("attr", attr))
            else:
                raise PlanningError(f"non-ground input term {term!r}")
        return (method.name, tuple(key_parts)), tuple(binding)

    def _access_command(
        self,
        raw: str,
        method: AccessMethod,
        binding: Tuple[Union[str, Constant], ...],
        arity: int,
    ) -> AccessCommand:
        input_attrs = tuple(
            dict.fromkeys(b for b in binding if isinstance(b, str))
        )
        if self.current is None:
            if input_attrs:
                raise PlanningError(
                    "input attributes requested before any table exists"
                )
            input_expr: Expression = Singleton()
        else:
            # Projecting onto the (possibly empty) set of needed input
            # attributes: with no attributes this yields one empty row iff
            # the current table is non-empty, so accesses are skipped for
            # provably-empty intermediate results.
            input_expr = Project(Scan(self.current), input_attrs)
        positional = tuple(f"{raw}_p{i}" for i in range(arity))
        return AccessCommand(
            target=raw,
            method=method.name,
            input_expr=input_expr,
            input_binding=binding,
            output_map=identity_output_map(positional),
        )

    def _incorporation_expr(self, fact: Atom, raw: str) -> Expression:
        """Filter + rename the raw access output to the fact's constants."""
        positional = [f"{raw}_p{i}" for i in range(fact.arity)]
        conditions: List[object] = []
        first_position: Dict[Null, int] = {}
        for i, term in enumerate(fact.terms):
            if isinstance(term, Constant):
                conditions.append(EqConst(positional[i], term))
            elif isinstance(term, Null):
                if term in first_position:
                    conditions.append(
                        EqAttr(positional[first_position[term]], positional[i])
                    )
                else:
                    first_position[term] = i
        expr: Expression = Scan(raw)
        if conditions:
            expr = Select(expr, tuple(conditions))
        keep = tuple(positional[p] for p in first_position.values())
        expr = Project(expr, keep)
        renaming = tuple(
            (positional[p], _attr_of(null))
            for null, p in first_position.items()
        )
        if renaming:
            expr = Rename(expr, renaming)
        return expr

    # ------------------------------------------------------------- output
    def finish(
        self,
        output_nulls: Sequence[Null],
        name: str = "plan",
    ) -> Plan:
        """Close the plan, projecting onto the answer attributes.

        For boolean queries pass no nulls: the output is the zero-attribute
        table, non-empty exactly when the query holds.
        """
        attrs = tuple(_attr_of(n) for n in output_nulls)
        for attr in attrs:
            if attr not in self.attributes:
                raise PlanningError(
                    f"output attribute {attr!r} is not accessible"
                )
        commands = list(self.commands)
        if self.current is None:
            # A proof with no accesses: the query is witnessed by reasoning
            # alone; the constant TRUE table is the (boolean) answer.
            if attrs:
                raise PlanningError(
                    "non-boolean output requested from an access-free plan"
                )
            commands.append(MiddlewareCommand("T_fin", Singleton()))
        else:
            commands.append(
                MiddlewareCommand(
                    "T_fin", Project(Scan(self.current), attrs)
                )
            )
        return Plan(tuple(commands), "T_fin", name=name)

    @property
    def access_command_count(self) -> int:
        """Number of access commands so far."""
        return sum(
            1 for c in self.commands if isinstance(c, AccessCommand)
        )

    def __repr__(self) -> str:
        return (
            f"PlanState({len(self.commands)} commands, "
            f"{self.access_command_count} accesses, "
            f"current={self.current})"
        )
