"""Proof-driven planning: the paper's core contribution.

* :mod:`repro.planner.plan_state` -- the incremental SPJ plan builder
  whose steps mirror accessibility-axiom firings (Section 4).
* :mod:`repro.planner.proof_to_plan` -- replay a chase proof (a sequence
  of (fact, method) exposures) into a complete plan (Theorem 5).
* :mod:`repro.planner.search` -- Algorithm 1: cost-guided exploration of
  the space of eager chase proofs, with cost-bound and domination pruning
  (Section 5), returning the cheapest plan within an access budget.
* :mod:`repro.planner.views` -- Theorem 6: chase-based conjunctive
  rewriting over views (the Levy-Mendelzon-Sagiv-Srivastava setting).
* :mod:`repro.planner.ra_from_proof` -- Theorem 7: RA / USPJ-with-atomic-
  negation plans from proofs over the bidirectional axioms.
* :mod:`repro.planner.answerability` -- plan-existence decision wrapper.
"""

from repro.planner.plan_state import PlanningError, PlanState
from repro.planner.plan_cache import (
    CachedPlan,
    PlanCache,
    canonical_query_text,
    plan_cache_key,
)
from repro.planner.proof_to_plan import (
    ChaseProof,
    Exposure,
    plan_from_proof,
    replay_proof,
)
from repro.planner.search import (
    SearchNode,
    SearchOptions,
    SearchResult,
    SearchStats,
    find_any_plan,
    find_best_plan,
    plan_search,
)
from repro.planner.answerability import (
    Answerability,
    answerability_witness,
    decide_answerability,
    is_answerable,
)
from repro.planner.views import (
    ViewRewritingResult,
    rewrite_over_views,
    views_schema,
)
from repro.planner.brute_force import (
    brute_force_plan,
    k_round_plan,
)
from repro.planner.inequalities import (
    Inequality,
    plan_with_inequalities,
)
from repro.planner.refine import (
    find_best_plan_iterative,
    minimize_proof,
)
from repro.planner.visualize import plan_to_dot, search_tree_to_dot
from repro.planner.ra_from_proof import (
    BackwardStep,
    ra_plan_from_proof,
    uspj_neg_plan,
)

__all__ = [
    "Answerability",
    "BackwardStep",
    "CachedPlan",
    "ChaseProof",
    "PlanCache",
    "Exposure",
    "PlanState",
    "PlanningError",
    "SearchNode",
    "SearchOptions",
    "SearchResult",
    "SearchStats",
    "ViewRewritingResult",
    "Inequality",
    "answerability_witness",
    "brute_force_plan",
    "canonical_query_text",
    "plan_cache_key",
    "decide_answerability",
    "find_any_plan",
    "find_best_plan_iterative",
    "find_best_plan",
    "is_answerable",
    "k_round_plan",
    "minimize_proof",
    "plan_from_proof",
    "plan_search",
    "plan_to_dot",
    "plan_with_inequalities",
    "ra_plan_from_proof",
    "replay_proof",
    "rewrite_over_views",
    "search_tree_to_dot",
    "uspj_neg_plan",
    "views_schema",
]
