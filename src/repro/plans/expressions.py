"""Relational-algebra expressions over named-attribute temporary tables.

Expressions evaluate against an *environment*: a mapping from temporary
table names to :class:`NamedTable` values.  Cells hold ground terms
(schema :class:`~repro.logic.terms.Constant` values; labelled nulls never
reach the runtime).  Joins are natural joins on shared attribute names --
the proof-to-plan algorithms arrange for attribute names (chase constants)
to encode exactly the intended join conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ExecutionError
from repro.logic.terms import Constant, Term


class EvaluationError(ExecutionError):
    """Raised when an expression is evaluated against an unfit environment."""


@dataclass(frozen=True)
class NamedTable:
    """An immutable relation with named attributes."""

    attributes: Tuple[str, ...]
    rows: FrozenSet[Tuple[Term, ...]]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise EvaluationError(
                f"duplicate attribute in {self.attributes}"
            )
        for row in self.rows:
            if len(row) != len(self.attributes):
                raise EvaluationError(
                    f"row width {len(row)} != {len(self.attributes)} attrs"
                )

    @classmethod
    def from_rows(
        cls, attributes: Sequence[str], rows: Iterable[Sequence[Term]]
    ) -> "NamedTable":
        """Build a table from attribute names and row iterables."""
        return cls(tuple(attributes), frozenset(tuple(r) for r in rows))

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "NamedTable":
        """An empty table with the given attributes."""
        return cls(tuple(attributes), frozenset())

    @classmethod
    def singleton(cls) -> "NamedTable":
        """The zero-attribute table with one (empty) row: logical TRUE."""
        return cls((), frozenset({()}))

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def is_empty(self) -> bool:
        """True when the table has no rows."""
        return not self.rows

    def column_map(self) -> Dict[str, int]:
        """Attribute -> index map, computed once per table and cached.

        The cache lives outside the dataclass fields (set via
        ``object.__setattr__`` on the frozen instance), so equality and
        hashing still consider only ``attributes`` and ``rows``.
        """
        try:
            return self._colmap  # type: ignore[attr-defined]
        except AttributeError:
            colmap = {a: i for i, a in enumerate(self.attributes)}
            object.__setattr__(self, "_colmap", colmap)
            return colmap

    def column(self, attribute: str) -> int:
        """Index of an attribute (raises on unknown names)."""
        try:
            return self.column_map()[attribute]
        except KeyError:
            raise EvaluationError(
                f"no attribute {attribute!r} in {self.attributes}"
            ) from None

    def project(self, attributes: Sequence[str]) -> "NamedTable":
        """Duplicate-eliminating projection."""
        columns = [self.column(a) for a in attributes]
        return NamedTable(
            tuple(attributes),
            frozenset(tuple(row[c] for c in columns) for row in self.rows),
        )

    def rename(self, mapping: Mapping[str, str]) -> "NamedTable":
        """A copy with attributes renamed."""
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return NamedTable(new_attrs, self.rows)

    def __repr__(self) -> str:
        return f"NamedTable({list(self.attributes)}, {len(self.rows)} rows)"


Environment = Mapping[str, NamedTable]


# --------------------------------------------------------------- conditions
@dataclass(frozen=True)
class EqAttr:
    """Selection condition: two attributes are equal."""

    left: str
    right: str

    def holds(self, table: NamedTable, row: Tuple[Term, ...]) -> bool:
        """Whether the condition holds for one row of the table."""
        return row[table.column(self.left)] == row[table.column(self.right)]

    def __repr__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class EqConst:
    """Selection condition: attribute equals a constant."""

    attribute: str
    value: Constant

    def holds(self, table: NamedTable, row: Tuple[Term, ...]) -> bool:
        """Whether the condition holds for one row of the table."""
        return row[table.column(self.attribute)] == self.value

    def __repr__(self) -> str:
        return f"{self.attribute}={self.value!r}"


@dataclass(frozen=True)
class NeqAttr:
    """Inequality between two attributes (the E in ESPJ)."""

    left: str
    right: str

    def holds(self, table: NamedTable, row: Tuple[Term, ...]) -> bool:
        """Whether the condition holds for one row of the table."""
        return row[table.column(self.left)] != row[table.column(self.right)]

    def __repr__(self) -> str:
        return f"{self.left}!={self.right}"


@dataclass(frozen=True)
class NeqConst:
    """Inequality between an attribute and a constant."""

    attribute: str
    value: Constant

    def holds(self, table: NamedTable, row: Tuple[Term, ...]) -> bool:
        """Whether the condition holds for one row of the table."""
        return row[table.column(self.attribute)] != self.value

    def __repr__(self) -> str:
        return f"{self.attribute}!={self.value!r}"


Condition = (EqAttr, EqConst, NeqAttr, NeqConst)


def _compile_conditions(conditions, attrs: Tuple[str, ...]):
    """Index-based row predicates for the built-in condition types.

    Returns ``None`` when some condition is not one of the four known
    classes (the caller must then fall back to ``holds``-based
    filtering).  Unknown attribute names raise :class:`EvaluationError`,
    matching what ``holds`` would have raised.
    """
    colmap = {a: i for i, a in enumerate(attrs)}

    def _col(name: str) -> int:
        try:
            return colmap[name]
        except KeyError:
            raise EvaluationError(
                f"no attribute {name!r} in {attrs}"
            ) from None

    checks = []
    for cond in conditions:
        if isinstance(cond, EqAttr):
            left, right = _col(cond.left), _col(cond.right)
            checks.append(lambda row, l=left, r=right: row[l] == row[r])
        elif isinstance(cond, EqConst):
            index, value = _col(cond.attribute), cond.value
            checks.append(lambda row, i=index, v=value: row[i] == v)
        elif isinstance(cond, NeqAttr):
            left, right = _col(cond.left), _col(cond.right)
            checks.append(lambda row, l=left, r=right: row[l] != row[r])
        elif isinstance(cond, NeqConst):
            index, value = _col(cond.attribute), cond.value
            checks.append(lambda row, i=index, v=value: row[i] != v)
        else:
            return None
    return checks


# -------------------------------------------------------------- expressions
class Expression:
    """Base class for RA expressions.

    Subclasses implement :meth:`attributes` (static schema) and
    :meth:`evaluate`.  ``uses_union``/``uses_difference``/
    ``uses_inequality`` drive plan-language classification.
    """

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        raise NotImplementedError

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        raise NotImplementedError

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        raise NotImplementedError

    @property
    def uses_union(self) -> bool:
        """Whether a union operator occurs in the subtree."""
        return any(child.uses_union for child in self.children())

    @property
    def uses_difference(self) -> bool:
        """Whether a difference operator occurs in the subtree."""
        return any(child.uses_difference for child in self.children())

    @property
    def uses_inequality(self) -> bool:
        """Whether an inequality condition occurs in the subtree."""
        return any(child.uses_inequality for child in self.children())

    def children(self) -> Tuple["Expression", ...]:
        """Immediate subexpressions."""
        return ()


@dataclass(frozen=True)
class Singleton(Expression):
    """The TRUE table: no attributes, one empty row.

    Used as the input expression of input-free access commands (the
    paper's ``T <- mt <- {}`` convention).
    """

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        return ()

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        return NamedTable.singleton()

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return frozenset()

    def __repr__(self) -> str:
        return "{()}"


@dataclass(frozen=True)
class Literal(Expression):
    """An inline constant table (e.g. the schema constants)."""

    table: NamedTable

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        return self.table.attributes

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        return self.table

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return frozenset()

    def __repr__(self) -> str:
        return f"lit[{','.join(self.table.attributes)};{len(self.table)}]"


@dataclass(frozen=True)
class Scan(Expression):
    """Read a temporary table by name."""

    table: str

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        try:
            return env_schema[self.table]
        except KeyError:
            raise EvaluationError(f"unknown table {self.table!r}") from None

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        try:
            return env[self.table]
        except KeyError:
            raise EvaluationError(f"unknown table {self.table!r}") from None

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return frozenset({self.table})

    def __repr__(self) -> str:
        return self.table


@dataclass(frozen=True)
class Project(Expression):
    """Duplicate-eliminating projection onto named attributes."""

    child: Expression
    attrs: Tuple[str, ...]

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        child_attrs = self.child.attributes(env_schema)
        for attr in self.attrs:
            if attr not in child_attrs:
                raise EvaluationError(
                    f"projection attribute {attr!r} not in {child_attrs}"
                )
        return self.attrs

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        if isinstance(self.child, Join):
            return self.child._evaluate_fused(env, (), self.attrs)
        if isinstance(self.child, Select) and isinstance(
            self.child.child, Join
        ):
            return self.child.child._evaluate_fused(
                env, self.child.conditions, self.attrs
            )
        return self.child.evaluate(env).project(self.attrs)

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.child.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.child,)

    def __repr__(self) -> str:
        return f"π[{','.join(self.attrs)}]({self.child!r})"


@dataclass(frozen=True)
class Select(Expression):
    """Selection by a conjunction of (in)equality conditions."""

    child: Expression
    conditions: Tuple[object, ...]

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        return self.child.attributes(env_schema)

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        if isinstance(self.child, Join):
            return self.child._evaluate_fused(env, self.conditions, None)
        table = self.child.evaluate(env)
        try:
            checks = _compile_conditions(self.conditions, table.attributes)
        except EvaluationError:
            checks = None
        if checks is not None:
            rows = frozenset(
                row
                for row in table.rows
                if all(check(row) for check in checks)
            )
        else:
            rows = frozenset(
                row
                for row in table.rows
                if all(cond.holds(table, row) for cond in self.conditions)
            )
        return NamedTable(table.attributes, rows)

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.child.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.child,)

    @property
    def uses_inequality(self) -> bool:
        """Whether an inequality condition occurs in the subtree."""
        if any(isinstance(c, (NeqAttr, NeqConst)) for c in self.conditions):
            return True
        return self.child.uses_inequality

    def __repr__(self) -> str:
        conds = " & ".join(repr(c) for c in self.conditions)
        return f"σ[{conds}]({self.child!r})"


@dataclass(frozen=True)
class Join(Expression):
    """Natural join on shared attribute names."""

    left: Expression
    right: Expression

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        left_attrs = self.left.attributes(env_schema)
        right_attrs = self.right.attributes(env_schema)
        extra = tuple(a for a in right_attrs if a not in left_attrs)
        return left_attrs + extra

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        return self._evaluate_fused(env, (), None)

    def _evaluate_fused(
        self,
        env: Environment,
        conditions: Tuple[object, ...],
        project_to: Optional[Tuple[str, ...]],
    ) -> NamedTable:
        """Hash join with optional fused selection and projection.

        The hash table is built on the *smaller* input; ``conditions``
        are applied to each joined row before it is materialized, and
        ``project_to`` (when given) narrows the row in the same pass --
        so ``σ``/``π`` directly above a join never materialize the full
        join result.  Semantically identical to evaluating the join and
        then filtering/projecting.
        """
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        shared = [a for a in right.attributes if a in left.attributes]
        extra = [a for a in right.attributes if a not in left.attributes]
        out_attrs = left.attributes + tuple(extra)
        try:
            checks = _compile_conditions(conditions, out_attrs)
        except EvaluationError:
            # Unknown attribute: preserve the unfused (lazy) behaviour,
            # which only raises when a row is actually checked.
            checks = None
        if checks is None:
            # Unknown condition type or attribute: join, filter via `holds`.
            table = self._evaluate_fused(env, (), None)
            rows = frozenset(
                row
                for row in table.rows
                if all(cond.holds(table, row) for cond in conditions)
            )
            table = NamedTable(out_attrs, rows)
            return (
                table.project(project_to) if project_to is not None else table
            )
        left_key = [left.column(a) for a in shared]
        right_key = [right.column(a) for a in shared]
        extra_cols = [right.column(a) for a in extra]
        out_cols: Optional[List[int]] = None
        if project_to is not None:
            colmap = {a: i for i, a in enumerate(out_attrs)}
            out_cols = []
            for attr in project_to:
                if attr not in colmap:
                    raise EvaluationError(
                        f"no attribute {attr!r} in {out_attrs}"
                    )
                out_cols.append(colmap[attr])
        rows: Set[Tuple[Term, ...]] = set()

        def _emit(joined: Tuple[Term, ...]) -> None:
            if all(check(joined) for check in checks):
                rows.add(
                    joined
                    if out_cols is None
                    else tuple(joined[c] for c in out_cols)
                )

        if len(right.rows) <= len(left.rows):
            # Build on the right, probe with the left (the classic shape).
            by_key: Dict[Tuple[Term, ...], List[Tuple[Term, ...]]] = {}
            for row in right.rows:
                key = tuple(row[c] for c in right_key)
                by_key.setdefault(key, []).append(
                    tuple(row[c] for c in extra_cols)
                )
            for row in left.rows:
                key = tuple(row[c] for c in left_key)
                for suffix in by_key.get(key, ()):
                    _emit(row + suffix)
        else:
            # Left side is smaller: build on it, probe with the right.
            by_left: Dict[Tuple[Term, ...], List[Tuple[Term, ...]]] = {}
            for row in left.rows:
                key = tuple(row[c] for c in left_key)
                by_left.setdefault(key, []).append(row)
            for row in right.rows:
                key = tuple(row[c] for c in right_key)
                bucket = by_left.get(key)
                if not bucket:
                    continue
                suffix = tuple(row[c] for c in extra_cols)
                for left_row in bucket:
                    _emit(left_row + suffix)
        attributes = out_attrs if project_to is None else tuple(project_to)
        return NamedTable(attributes, frozenset(rows))

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.left.tables_read() | self.right.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


@dataclass(frozen=True)
class Union(Expression):
    """Set union; the right side is reordered to the left's attributes."""

    left: Expression
    right: Expression

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        left_attrs = self.left.attributes(env_schema)
        right_attrs = self.right.attributes(env_schema)
        if set(left_attrs) != set(right_attrs):
            raise EvaluationError(
                f"union attribute mismatch: {left_attrs} vs {right_attrs}"
            )
        return left_attrs

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        left = self.left.evaluate(env)
        right = self.right.evaluate(env).project(left.attributes)
        return NamedTable(left.attributes, left.rows | right.rows)

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.left.tables_read() | self.right.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.left, self.right)

    @property
    def uses_union(self) -> bool:
        """Whether a union operator occurs in the subtree."""
        return True

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True)
class Difference(Expression):
    """Set difference; attribute sets must coincide."""

    left: Expression
    right: Expression

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        left_attrs = self.left.attributes(env_schema)
        right_attrs = self.right.attributes(env_schema)
        if set(left_attrs) != set(right_attrs):
            raise EvaluationError(
                f"difference attribute mismatch: {left_attrs} vs {right_attrs}"
            )
        return left_attrs

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        left = self.left.evaluate(env)
        right = self.right.evaluate(env).project(left.attributes)
        return NamedTable(left.attributes, left.rows - right.rows)

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.left.tables_read() | self.right.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.left, self.right)

    @property
    def uses_difference(self) -> bool:
        """Whether a difference operator occurs in the subtree."""
        return True

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True)
class Rename(Expression):
    """Attribute renaming."""

    child: Expression
    mapping: Tuple[Tuple[str, str], ...]

    def _map(self) -> Dict[str, str]:
        return dict(self.mapping)

    def attributes(self, env_schema: Mapping[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Static output attributes (see :class:`Expression`)."""
        mapping = self._map()
        return tuple(
            mapping.get(a, a) for a in self.child.attributes(env_schema)
        )

    def evaluate(self, env: Environment) -> NamedTable:
        """Evaluate against the environment (see :class:`Expression`)."""
        return self.child.evaluate(env).rename(self._map())

    def tables_read(self) -> FrozenSet[str]:
        """Temporary tables this expression scans."""
        return self.child.tables_read()

    def children(self) -> Tuple[Expression, ...]:
        """Immediate subexpressions."""
        return (self.child,)

    def __repr__(self) -> str:
        pairs = ",".join(f"{a}->{b}" for a, b in self.mapping)
        return f"ρ[{pairs}]({self.child!r})"
