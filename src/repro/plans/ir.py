"""An explicit, JSON-serializable intermediate representation of plans.

``Plan`` objects are Python dataclass trees; that is fine inside one
process but useless the moment a plan must cross a boundary -- be
shipped to a worker process, cached on disk keyed by query fingerprint,
or handed to a non-interpreter backend.  This module makes the plan
representation *explicit*: :func:`plan_to_ir` lowers a plan to a plain
JSON-able dict (lists, strings, numbers only), :func:`ir_to_plan`
reconstructs an **equal** plan (dataclass equality, asserted by the
round-trip tests), and :class:`PlanIR` wraps the dict with the
``to_json`` / ``from_json`` / ``fingerprint`` conveniences the
executor backends and the plan-cache roadmap item consume.

The encoding is canonical: literal-table rows are emitted in sorted
order and ``fingerprint`` hashes the key-sorted JSON, so the same plan
always serializes to the same bytes -- two processes can agree on "the
same plan" without exchanging pickles.

Consumers today:

* the columnar backend (:mod:`repro.exec.columnar`) compiles the IR --
  not the dataclass tree -- into its vectorized program, so anything
  able to produce this IR can be executed columnar;
* the golden files under ``tests/plans/golden`` pin the format.

The format is versioned (:data:`IR_VERSION`); loaders reject unknown
versions instead of guessing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.logic.terms import Constant, Null, Term
from repro.plans.commands import (
    AccessCommand,
    Command,
    MiddlewareCommand,
)
from repro.plans.expressions import (
    Difference,
    EqAttr,
    EqConst,
    Expression,
    Join,
    Literal,
    NamedTable,
    NeqAttr,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union as UnionExpr,
)
from repro.plans.plan import Plan

#: Format marker + version stamped into every serialized plan.
IR_KIND = "repro.plan"
IR_VERSION = 1


class PlanIRError(ValueError):
    """Raised when a plan cannot be lowered to IR or an IR is malformed."""


# ------------------------------------------------------------------ terms
def term_to_ir(term: Term) -> Dict[str, Any]:
    """Encode a ground term (schema constant or labelled null)."""
    if isinstance(term, Constant):
        return {"k": "const", "v": term.value}
    if isinstance(term, Null):
        return {"k": "null", "v": term.name}
    raise PlanIRError(f"cannot serialize term {term!r} (variables never reach plans)")


def term_from_ir(obj: Mapping[str, Any]) -> Term:
    """Decode a term encoded by :func:`term_to_ir`."""
    kind = obj.get("k")
    if kind == "const":
        return Constant(obj["v"])
    if kind == "null":
        return Null(obj["v"])
    raise PlanIRError(f"unknown term kind {kind!r}")


# ------------------------------------------------------------- conditions
_COND_ENCODERS = {
    EqAttr: lambda c: {"cond": "eq_attr", "left": c.left, "right": c.right},
    NeqAttr: lambda c: {"cond": "neq_attr", "left": c.left, "right": c.right},
    EqConst: lambda c: {
        "cond": "eq_const", "attr": c.attribute, "value": term_to_ir(c.value)
    },
    NeqConst: lambda c: {
        "cond": "neq_const", "attr": c.attribute, "value": term_to_ir(c.value)
    },
}


def condition_to_ir(condition: object) -> Dict[str, Any]:
    """Encode one of the four built-in (in)equality conditions."""
    encoder = _COND_ENCODERS.get(type(condition))
    if encoder is None:
        raise PlanIRError(
            f"cannot serialize condition {condition!r} of type "
            f"{type(condition).__name__}: the plan IR covers the four "
            "built-in (in)equality conditions only"
        )
    return encoder(condition)


def condition_from_ir(obj: Mapping[str, Any]) -> object:
    """Decode a condition encoded by :func:`condition_to_ir`."""
    kind = obj.get("cond")
    if kind == "eq_attr":
        return EqAttr(obj["left"], obj["right"])
    if kind == "neq_attr":
        return NeqAttr(obj["left"], obj["right"])
    if kind == "eq_const":
        return EqConst(obj["attr"], term_from_ir(obj["value"]))
    if kind == "neq_const":
        return NeqConst(obj["attr"], term_from_ir(obj["value"]))
    raise PlanIRError(f"unknown condition kind {kind!r}")


# ------------------------------------------------------------ expressions
def expr_to_ir(expr: Expression) -> Dict[str, Any]:
    """Encode an RA expression tree as nested JSON-able dicts."""
    if isinstance(expr, Singleton):
        return {"op": "singleton"}
    if isinstance(expr, Scan):
        return {"op": "scan", "table": expr.table}
    if isinstance(expr, Literal):
        return {
            "op": "literal",
            "attrs": list(expr.table.attributes),
            # Sorted rows make the encoding canonical: frozenset
            # iteration order must never leak into serialized bytes.
            "rows": [
                [term_to_ir(cell) for cell in row]
                for row in sorted(expr.table.rows)
            ],
        }
    if isinstance(expr, Project):
        return {
            "op": "project",
            "child": expr_to_ir(expr.child),
            "attrs": list(expr.attrs),
        }
    if isinstance(expr, Select):
        return {
            "op": "select",
            "child": expr_to_ir(expr.child),
            "conditions": [condition_to_ir(c) for c in expr.conditions],
        }
    if isinstance(expr, Rename):
        return {
            "op": "rename",
            "child": expr_to_ir(expr.child),
            "mapping": [[old, new] for old, new in expr.mapping],
        }
    if isinstance(expr, Join):
        return {
            "op": "join",
            "left": expr_to_ir(expr.left),
            "right": expr_to_ir(expr.right),
        }
    if isinstance(expr, UnionExpr):
        return {
            "op": "union",
            "left": expr_to_ir(expr.left),
            "right": expr_to_ir(expr.right),
        }
    if isinstance(expr, Difference):
        return {
            "op": "difference",
            "left": expr_to_ir(expr.left),
            "right": expr_to_ir(expr.right),
        }
    raise PlanIRError(
        f"cannot serialize expression {expr!r} of type {type(expr).__name__}"
    )


def expr_from_ir(obj: Mapping[str, Any]) -> Expression:
    """Decode an expression encoded by :func:`expr_to_ir`."""
    op = obj.get("op")
    if op == "singleton":
        return Singleton()
    if op == "scan":
        return Scan(obj["table"])
    if op == "literal":
        return Literal(
            NamedTable(
                tuple(obj["attrs"]),
                frozenset(
                    tuple(term_from_ir(cell) for cell in row)
                    for row in obj["rows"]
                ),
            )
        )
    if op == "project":
        return Project(expr_from_ir(obj["child"]), tuple(obj["attrs"]))
    if op == "select":
        return Select(
            expr_from_ir(obj["child"]),
            tuple(condition_from_ir(c) for c in obj["conditions"]),
        )
    if op == "rename":
        return Rename(
            expr_from_ir(obj["child"]),
            tuple((old, new) for old, new in obj["mapping"]),
        )
    if op == "join":
        return Join(expr_from_ir(obj["left"]), expr_from_ir(obj["right"]))
    if op == "union":
        return UnionExpr(expr_from_ir(obj["left"]), expr_from_ir(obj["right"]))
    if op == "difference":
        return Difference(
            expr_from_ir(obj["left"]), expr_from_ir(obj["right"])
        )
    raise PlanIRError(f"unknown expression op {op!r}")


# ------------------------------------------------------------------ tables
def table_to_ir(table: NamedTable) -> Dict[str, Any]:
    """Encode an answer table (attributes + sorted rows).

    This is how worker processes ship results back to the service: the
    rows are emitted in sorted order, so equal tables serialize to equal
    bytes and the parent's merge of several workers' answers is
    deterministic regardless of which worker finished first.
    """
    return {
        "attrs": list(table.attributes),
        "rows": [
            [term_to_ir(cell) for cell in row]
            for row in sorted(table.rows)
        ],
    }


def table_from_ir(obj: Mapping[str, Any]) -> NamedTable:
    """Decode a table encoded by :func:`table_to_ir`."""
    return NamedTable(
        tuple(obj["attrs"]),
        frozenset(
            tuple(term_from_ir(cell) for cell in row)
            for row in obj["rows"]
        ),
    )


# --------------------------------------------------------------- commands
def command_to_ir(command: Command) -> Dict[str, Any]:
    """Encode an access or middleware command."""
    if isinstance(command, AccessCommand):
        return {
            "cmd": "access",
            "target": command.target,
            "method": command.method,
            "input": expr_to_ir(command.input_expr),
            # Binding entries are either attribute names (plain strings)
            # or schema constants (term dicts) -- JSON keeps them apart.
            "binding": [
                term_to_ir(entry) if isinstance(entry, Constant) else entry
                for entry in command.input_binding
            ],
            "output": [
                [attr, list(positions)]
                for attr, positions in command.output_map
            ],
        }
    if isinstance(command, MiddlewareCommand):
        return {
            "cmd": "middleware",
            "target": command.target,
            "expr": expr_to_ir(command.expr),
        }
    raise PlanIRError(f"cannot serialize command {command!r}")


def command_from_ir(obj: Mapping[str, Any]) -> Command:
    """Decode a command encoded by :func:`command_to_ir`."""
    kind = obj.get("cmd")
    if kind == "access":
        return AccessCommand(
            target=obj["target"],
            method=obj["method"],
            input_expr=expr_from_ir(obj["input"]),
            input_binding=tuple(
                entry if isinstance(entry, str) else term_from_ir(entry)
                for entry in obj["binding"]
            ),
            output_map=tuple(
                (attr, tuple(positions)) for attr, positions in obj["output"]
            ),
        )
    if kind == "middleware":
        return MiddlewareCommand(obj["target"], expr_from_ir(obj["expr"]))
    raise PlanIRError(f"unknown command kind {kind!r}")


# ------------------------------------------------------------------ plans
def plan_to_ir(plan: Plan) -> Dict[str, Any]:
    """Lower a plan to its plain-dict IR (lists/strings/numbers only)."""
    return {
        "ir": IR_KIND,
        "version": IR_VERSION,
        "name": plan.name,
        "output": plan.output_table,
        "commands": [command_to_ir(c) for c in plan.commands],
    }


def ir_to_plan(ir: Mapping[str, Any]) -> Plan:
    """Reconstruct a plan from its IR; validates structure on the way.

    The resulting plan compares equal to the plan that produced the IR
    (``ir_to_plan(plan_to_ir(p)) == p``) and re-runs
    :meth:`Plan.validate <repro.plans.plan.Plan.validate>` through the
    ``Plan`` constructor, so a hand-edited IR with def-before-use
    violations is rejected here rather than at execution time.
    """
    if ir.get("ir") != IR_KIND:
        raise PlanIRError(
            f"not a plan IR document (ir={ir.get('ir')!r})"
        )
    version = ir.get("version")
    if version != IR_VERSION:
        raise PlanIRError(
            f"unsupported plan IR version {version!r} "
            f"(this build reads version {IR_VERSION})"
        )
    return Plan(
        commands=tuple(command_from_ir(c) for c in ir["commands"]),
        output_table=ir["output"],
        name=ir.get("name", "plan"),
    )


@dataclass(frozen=True)
class PlanIR:
    """A serialized plan: the dict IR plus JSON/fingerprint conveniences."""

    data: Dict[str, Any]

    @classmethod
    def from_plan(cls, plan: Plan) -> "PlanIR":
        """Lower a plan (see :func:`plan_to_ir`)."""
        return cls(plan_to_ir(plan))

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "PlanIR":
        """Parse serialized IR; validates the format marker and version."""
        data = json.loads(text)
        if not isinstance(data, dict) or data.get("ir") != IR_KIND:
            raise PlanIRError("not a plan IR document")
        if data.get("version") != IR_VERSION:
            raise PlanIRError(
                f"unsupported plan IR version {data.get('version')!r}"
            )
        return cls(data)

    def to_plan(self) -> Plan:
        """Reconstruct the equal :class:`Plan` (see :func:`ir_to_plan`)."""
        return ir_to_plan(self.data)

    def to_json(self, indent: int = None) -> str:
        """Canonical JSON: key-sorted, so equal plans give equal bytes."""
        return json.dumps(self.data, indent=indent, sort_keys=True)

    def fingerprint(self) -> str:
        """A stable content hash of the canonical JSON encoding.

        Suitable as a cross-process cache key: equal plans fingerprint
        identically regardless of set-iteration order or process.
        """
        return hashlib.blake2b(
            self.to_json().encode("utf-8"), digest_size=16
        ).hexdigest()

    @property
    def name(self) -> str:
        """The plan's name as recorded in the IR."""
        return self.data.get("name", "plan")

    @property
    def output_table(self) -> str:
        """The plan's output table as recorded in the IR."""
        return self.data["output"]

    def __repr__(self) -> str:
        return (
            f"PlanIR({self.name}: {len(self.data['commands'])} commands, "
            f"out={self.output_table}, fp={self.fingerprint()[:8]})"
        )
