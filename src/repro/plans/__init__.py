"""Access plans: relational-algebra expressions, commands, and plans.

A plan (Section 2 of the paper) is a sequence of *access commands*
``T <- mt <- E`` (invoke access method ``mt`` on every tuple produced by
expression ``E``, collecting matching tuples into temporary table ``T``)
and *middleware query commands* ``T := E`` (relational algebra over
temporary tables), with a distinguished output table.  Plans are
classified by the operators their expressions use: SPJ, USPJ, USPJ with
atomic negation, or full RA.
"""

from repro.plans.expressions import (
    Condition,
    Difference,
    EqAttr,
    EqConst,
    EvaluationError,
    Expression,
    Join,
    NamedTable,
    NeqAttr,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.commands import AccessCommand, Command, MiddlewareCommand
from repro.plans.ir import PlanIR, PlanIRError, ir_to_plan, plan_to_ir
from repro.plans.plan import Plan, PlanKind, PlanValidationError

__all__ = [
    "AccessCommand",
    "Command",
    "Condition",
    "Difference",
    "EqAttr",
    "EqConst",
    "EvaluationError",
    "Expression",
    "Join",
    "MiddlewareCommand",
    "NamedTable",
    "NeqAttr",
    "NeqConst",
    "Plan",
    "PlanIR",
    "PlanIRError",
    "PlanKind",
    "PlanValidationError",
    "Project",
    "Rename",
    "Scan",
    "Select",
    "Singleton",
    "Union",
    "ir_to_plan",
    "plan_to_ir",
]
