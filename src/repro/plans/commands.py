"""Plan commands: access commands and middleware query commands.

An access command ``T <- mt <- E`` (Section 2): evaluate ``E`` over the
temporary tables, feed every result tuple into access method ``mt``, and
collect each matching relation tuple into ``T`` through the output
mapping ``b_out``.  The output mapping may duplicate a relation position
into several ``T`` attributes and may map two relation positions to one
attribute (which acts as an equality filter) -- both cases from the
paper's plan semantics are implemented.

A middleware command ``T := E`` runs relational algebra locally, at no
access cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.plans.expressions import (
    EvaluationError,
    Expression,
    NamedTable,
)
from repro.logic.terms import Constant, Term

# One entry per method input position: either the name of an attribute of
# the input expression's result, or a fixed schema constant.
InputBinding = Tuple[Union[str, Constant], ...]


@dataclass(frozen=True)
class AccessCommand:
    """``target <- method <- input_expr``.

    ``input_binding``
        one entry per input position of the method, in the method's
        declared order (the paper's ``b_in``): an attribute name of the
        input expression's result, or a schema :class:`Constant`.
    ``output_map``
        the paper's ``b_out``: ``(attribute, (position, ...))`` pairs.
        Relation positions may feed several attributes (duplication); if
        an attribute is fed by several positions the accessed tuple is
        kept only when they agree (equality filter).
    """

    target: str
    method: str
    input_expr: Expression
    input_binding: InputBinding
    output_map: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @property
    def output_attrs(self) -> Tuple[str, ...]:
        """The attribute names of the produced table, in order."""
        return tuple(attr for attr, _ in self.output_map)

    @property
    def input_attrs(self) -> Tuple[str, ...]:
        """Distinct attribute names read from the input expression.

        An attribute feeding several input positions (a repeated variable
        in a guard) is listed once; the binding re-reads it per position.
        """
        seen: Dict[str, None] = {}
        for entry in self.input_binding:
            if isinstance(entry, str) and entry not in seen:
                seen[entry] = None
        return tuple(seen)

    def execute(
        self,
        env: Dict[str, NamedTable],
        source,
        cache=None,
        stats=None,
        resilience=None,
    ) -> NamedTable:
        """Run the command against a source; returns the produced table.

        Dispatch is *deduplicated*: the distinct input-value tuples are
        collected before any access is made, so an input expression that
        yields the same binding several times (or binds only constants)
        costs one invocation per distinct tuple.  With an
        :class:`~repro.exec.cache.AccessCache` supplied, each distinct
        tuple is further memoized across commands and plans.  ``stats``
        (a :class:`~repro.exec.stats.CommandStats`) receives the
        dispatch breakdown when given.  ``resilience`` (a
        :class:`~repro.exec.resilience.ResilientDispatcher`) wraps each
        dispatch in retry/backoff, circuit-breaker and deadline checks;
        without it a failing access propagates immediately.
        """
        inputs = self.input_expr.evaluate(env)
        try:
            projected = inputs.project(self.input_attrs)
        except EvaluationError as exc:
            raise EvaluationError(
                f"access {self.method}: input expression lacks "
                f"attributes {self.input_attrs}: {exc}"
            ) from exc
        columns = {a: i for i, a in enumerate(projected.attributes)}
        distinct: Dict[Tuple, None] = {}
        for input_row in projected.rows:
            values = tuple(
                entry
                if isinstance(entry, Constant)
                else input_row[columns[entry]]
                for entry in self.input_binding
            )
            distinct.setdefault(values, None)
        rows = set()
        fetched = 0
        cache_hits_before = cache.hits if cache is not None else 0
        retries_before = resilience.retries if resilience is not None else 0
        faults_before = resilience.faults if resilience is not None else 0
        batch = getattr(source, "access_batch", None) if cache is None else None
        if callable(batch) and len(distinct) > 1:
            # Batch at the access boundary: several distinct input
            # tuples become one backend round trip (the backend still
            # meters one logical access per tuple).  Only without an
            # AccessCache -- the cache's single-flight memoization is
            # per key, and splitting a batch across hit/miss keys would
            # re-derive exactly the per-key loop below.
            keyed = list(distinct)
            if resilience is not None:
                answers = resilience.call(
                    lambda: batch(self.method, keyed),
                    self.method,
                    inputs=keyed[0],
                )
            else:
                answers = batch(self.method, keyed)
            for values in keyed:
                accessed_rows = answers[values]
                fetched += len(accessed_rows)
                for accessed in accessed_rows:
                    out_row = self._map_output(accessed)
                    if out_row is not None:
                        rows.add(out_row)
        else:
            for values in distinct:
                if resilience is not None:
                    if cache is not None:
                        fetch = lambda v=values: cache.fetch(
                            source, self.method, v
                        )
                    else:
                        fetch = lambda v=values: source.access(self.method, v)
                    accessed_rows = resilience.call(
                        fetch, self.method, inputs=values
                    )
                elif cache is not None:
                    accessed_rows = cache.fetch(source, self.method, values)
                else:
                    accessed_rows = source.access(self.method, values)
                fetched += len(accessed_rows)
                for accessed in accessed_rows:
                    out_row = self._map_output(accessed)
                    if out_row is not None:
                        rows.add(out_row)
        if stats is not None:
            # rows_in counts the raw tuples the input expression fed the
            # access; the projection onto the bound attributes is what
            # collapses them into the distinct dispatch set.
            stats.rows_in = len(inputs.rows)
            stats.dispatched = len(distinct)
            stats.deduped = len(inputs.rows) - len(distinct)
            stats.rows_fetched = fetched
            if cache is not None:
                stats.cache_hits = cache.hits - cache_hits_before
            if resilience is not None:
                stats.retries = resilience.retries - retries_before
                stats.faults = resilience.faults - faults_before
        table = NamedTable(self.output_attrs, frozenset(rows))
        if stats is not None:
            stats.rows_out = len(table.rows)
        env[self.target] = table
        return table

    def _map_output(
        self, accessed: Tuple[Term, ...]
    ) -> Optional[Tuple[Term, ...]]:
        out: List[Term] = []
        for _attr, positions in self.output_map:
            values = {accessed[p] for p in positions}
            if len(values) != 1:
                return None  # equality filter failed
            out.append(next(iter(values)))
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"{self.target} <- {self.method} <- "
            f"{self.input_expr!r}"
        )


@dataclass(frozen=True)
class MiddlewareCommand:
    """``target := expr`` -- local relational algebra, no access cost."""

    target: str
    expr: Expression

    def execute(
        self,
        env: Dict[str, NamedTable],
        source,
        cache=None,
        stats=None,
        resilience=None,
    ) -> NamedTable:
        """Run the command, writing its target table into the env.

        ``cache`` and ``resilience`` are accepted for signature parity
        with :meth:`AccessCommand.execute` and ignored -- middleware
        commands never touch the source.
        """
        table = self.expr.evaluate(env)
        if stats is not None:
            stats.rows_out = len(table.rows)
        env[self.target] = table
        return table

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


Command = Union[AccessCommand, MiddlewareCommand]


def identity_output_map(
    attrs: Sequence[str],
) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """b_out mapping position i to the i-th attribute, one-to-one."""
    return tuple((attr, (i,)) for i, attr in enumerate(attrs))
