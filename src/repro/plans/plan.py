"""Plans: command sequences with a distinguished output table.

A plan's *language class* (Section 2) is determined by the operators its
expressions use:

* ``SPJ``      -- select / project / join only,
* ``USPJ``     -- plus union,
* ``USPJ_NEG`` -- plus difference (the paper's USPJ with atomic negation;
  this classifier does not police that differences are against accessed
  relations -- the generators guarantee it),
* ``RA``       -- anything else (full relational algebra).

``E``-variants (with inequalities) are reported through
:attr:`Plan.uses_inequality`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.plans.commands import AccessCommand, Command, MiddlewareCommand
from repro.plans.expressions import Expression, NamedTable


class PlanValidationError(ValueError):
    """Raised when a plan is structurally ill-formed."""


class PlanKind(enum.Enum):
    """Plan language class, by the operators the plan's expressions use."""

    SPJ = "SPJ"
    USPJ = "USPJ"
    USPJ_NEG = "USPJ¬"
    RA = "RA"


@dataclass(frozen=True)
class Plan:
    """An immutable access plan."""

    commands: Tuple[Command, ...]
    output_table: str
    name: str = "plan"

    def __post_init__(self) -> None:
        if not isinstance(self.commands, tuple):
            object.__setattr__(self, "commands", tuple(self.commands))
        self.validate()

    # ------------------------------------------------------- validation
    def validate(self) -> None:
        """Check def-before-use of temporary tables and output presence."""
        defined: Set[str] = set()
        for command in self.commands:
            expr = (
                command.input_expr
                if isinstance(command, AccessCommand)
                else command.expr
            )
            for table in expr.tables_read():
                if table not in defined:
                    raise PlanValidationError(
                        f"{command!r} reads undefined table {table!r}"
                    )
            defined.add(command.target)
        if self.output_table not in defined:
            raise PlanValidationError(
                f"output table {self.output_table!r} never assigned"
            )

    # -------------------------------------------------------- execution
    def run(self, source) -> NamedTable:
        """Execute every command in sequence; returns the output table.

        This is the plain reference interpreter: no cache, no temp-table
        freeing, no instrumentation.  :meth:`execute` is the tuned
        runtime entry point; the two are proven equivalent in
        ``tests/exec/test_exec_soundness.py``.
        """
        env: Dict[str, NamedTable] = {}
        for command in self.commands:
            command.execute(env, source)
        return env[self.output_table]

    def execute(
        self,
        source,
        cache=None,
        stats=None,
        free_temps: bool = True,
        resilience=None,
        budget=None,
        executor: str = "interpreter",
        cancel=None,
    ) -> NamedTable:
        """Run the plan through the execution runtime.

        ``cache``
            an optional :class:`~repro.exec.cache.AccessCache`; access
            commands memoize ``(method, inputs)`` results through it
            (shared caches span commands, plans and batch runs).
        ``stats``
            an optional :class:`~repro.exec.stats.ExecStats` collecting
            per-command wall time, row flow, the dispatch breakdown and
            the peak number of resident temporary rows.
        ``free_temps``
            drop each temporary table from the environment right after
            its last reader ran (the output table is always kept), so
            peak intermediate state is bounded by what is still needed
            rather than by everything ever produced.
        ``resilience``
            an optional
            :class:`~repro.exec.resilience.ResilientDispatcher`: every
            access dispatch then runs under its retry/backoff policy,
            per-method circuit breakers and overall plan deadline, and
            the deadline is also re-checked between commands.
        ``budget``
            an optional :class:`~repro.exec.budget.ResourceBudget`.
            After every command the resident-row total is checked
            against ``max_resident_rows`` (overflow raises
            :class:`~repro.errors.RowBudgetExceeded`), and the final
            output is passed through ``budget.admit_result`` -- which
            either truncates it to a deterministic prefix (recording
            the dropped rows, so the caller can mark the answer
            partial) or raises, per the budget's overflow policy.
        ``executor``
            which backend runs the plan.  ``"interpreter"`` (the
            default) is the tuple-at-a-time runtime below;
            ``"columnar"`` compiles the plan to its serializable IR and
            executes it vectorized over numpy column arrays
            (:mod:`repro.exec.columnar`; same answers, same stats and
            budget accounting, much faster on row-heavy plans);
            ``"differential"`` runs both and raises unless their sorted
            answers are byte-identical -- the interpreter stays the
            oracle.  The compiled form is cached on the plan, so
            repeated ``executor="columnar"`` runs pay compilation once.
        ``cancel``
            an optional :class:`threading.Event`-like object (anything
            with ``is_set()``).  The interpreter re-checks it between
            commands and raises :class:`~repro.errors.PlanCancelled`
            when set -- cooperative, best-effort cancellation for runs
            whose answer is no longer wanted (a lost hedge duplicate).
            The columnar backends ignore it.
        """
        if executor != "interpreter":
            # Imported lazily: repro.exec imports repro.plans.
            from repro.exec import columnar as _columnar

            if executor == "columnar":
                return _columnar.compile_columnar(self).execute(
                    source,
                    cache=cache,
                    stats=stats,
                    free_temps=free_temps,
                    resilience=resilience,
                    budget=budget,
                )
            if executor == "differential":
                return _columnar.execute_differential(
                    self,
                    source,
                    cache=cache,
                    stats=stats,
                    free_temps=free_temps,
                    resilience=resilience,
                    budget=budget,
                )
            raise ValueError(
                f"unknown executor {executor!r} "
                "(expected 'interpreter', 'columnar' or 'differential')"
            )
        from time import perf_counter

        env: Dict[str, NamedTable] = {}
        last_read = self._last_readers() if free_temps else {}
        started = perf_counter()
        for index, command in enumerate(self.commands):
            if cancel is not None and cancel.is_set():
                from repro.errors import PlanCancelled

                raise PlanCancelled(
                    f"plan cancelled before command #{index} "
                    f"({len(self.commands) - index} commands unrun)"
                )
            if resilience is not None:
                resilience.check_deadline(f"command #{index}")
            command_stats = None
            if stats is not None:
                is_access = isinstance(command, AccessCommand)
                command_stats = stats.command(
                    index,
                    command.target,
                    "access" if is_access else "middleware",
                    method=command.method if is_access else None,
                )
            command_started = perf_counter()
            command.execute(
                env,
                source,
                cache=cache,
                stats=command_stats,
                resilience=resilience,
            )
            if command_stats is not None:
                command_stats.wall_time = perf_counter() - command_started
            if stats is not None or budget is not None:
                resident = sum(len(table.rows) for table in env.values())
                if stats is not None:
                    stats.note_resident(resident)
                if budget is not None:
                    budget.check_resident(resident)
            if free_temps:
                freed = 0
                for table in [
                    t
                    for t, last in last_read.items()
                    if last <= index and t in env and t != self.output_table
                ]:
                    del env[table]
                    freed += 1
                if command_stats is not None:
                    command_stats.freed_tables = freed
        output = env[self.output_table]
        if budget is not None:
            output = budget.admit_result(output)
        if stats is not None:
            stats.wall_time += perf_counter() - started
            stats.runs += 1
            if resilience is not None:
                # The registry total is monotone, so assignment is safe
                # even when one dispatcher spans many plan runs.
                stats.breaker_trips = resilience.breaker_trips
        return output

    def _last_readers(self) -> Dict[str, int]:
        """For each table: the index of the last command reading it.

        Tables never read map to ``-1`` (free immediately after their
        defining command unless they are the output).
        """
        last: Dict[str, int] = {
            command.target: -1 for command in self.commands
        }
        for index, command in enumerate(self.commands):
            expr = (
                command.input_expr
                if isinstance(command, AccessCommand)
                else command.expr
            )
            for table in expr.tables_read():
                last[table] = index
        return last

    def run_with_env(self, source) -> Tuple[NamedTable, Dict[str, NamedTable]]:
        """Execute and also return the full temporary-table environment."""
        env: Dict[str, NamedTable] = {}
        for command in self.commands:
            command.execute(env, source)
        return env[self.output_table], env

    # ----------------------------------------------------- inspection
    @property
    def access_commands(self) -> Tuple[AccessCommand, ...]:
        """The plan's access commands, in order."""
        return tuple(
            c for c in self.commands if isinstance(c, AccessCommand)
        )

    @property
    def middleware_commands(self) -> Tuple[MiddlewareCommand, ...]:
        """The plan's middleware commands, in order."""
        return tuple(
            c for c in self.commands if isinstance(c, MiddlewareCommand)
        )

    def methods_used(self) -> Tuple[str, ...]:
        """Methods of the access commands, in command order (with repeats)."""
        return tuple(c.method for c in self.access_commands)

    def _expressions(self) -> List[Expression]:
        out: List[Expression] = []
        for command in self.commands:
            if isinstance(command, AccessCommand):
                out.append(command.input_expr)
            else:
                out.append(command.expr)
        return out

    @property
    def kind(self) -> PlanKind:
        """Language class by the operators the plan's expressions use."""
        uses_union = any(e.uses_union for e in self._expressions())
        uses_difference = any(e.uses_difference for e in self._expressions())
        if uses_difference:
            return PlanKind.USPJ_NEG
        if uses_union:
            return PlanKind.USPJ
        return PlanKind.SPJ

    @property
    def uses_inequality(self) -> bool:
        """True when some expression uses an inequality condition (E-fragment)."""
        return any(e.uses_inequality for e in self._expressions())

    def describe(self) -> str:
        """A readable listing of the plan."""
        lines = [f"plan {self.name} ({self.kind.value}):"]
        for i, command in enumerate(self.commands):
            lines.append(f"  {i:2d}. {command!r}")
        lines.append(f"  output: {self.output_table}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Plan({self.name}: {len(self.commands)} commands, "
            f"{len(self.access_commands)} accesses, out={self.output_table})"
        )
