"""Plan tools: dead-command elimination, serialization, SQL rendering.

Proof-generated plans are systematic rather than tidy: they may assign
temporary tables that no later command reads (typically leftovers from
exposures whose join output was superseded).  :func:`eliminate_dead_commands`
removes them without changing the output table's contents.

:func:`to_sql` renders a plan as a readable sequence of SQL statements
over temporary tables -- access commands become commented service calls
(there is no SQL for "invoke the web form"), middleware commands become
``CREATE TEMP TABLE ... AS SELECT``.  This is documentation output, not
an executable dialect.

``plan_to_dict`` / ``plan_from_dict`` give a stable JSON-able round-trip
for persisting plans.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.logic.terms import Constant
from repro.plans.commands import (
    AccessCommand,
    Command,
    MiddlewareCommand,
)
from repro.plans.expressions import (
    Difference,
    Literal,
    EqAttr,
    EqConst,
    Expression,
    Join,
    NamedTable,
    NeqAttr,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan


# ------------------------------------------------------------ dead code
def eliminate_dead_commands(plan: Plan) -> Plan:
    """Drop commands whose target is never read downstream.

    Walks backwards from the output table through ``tables_read`` of each
    needed command.  Access commands are treated like any other producer:
    if nothing reads their table, the access is pure cost and is removed
    (this can only remove accesses, never add them, so the plan stays
    complete whenever it was).

    Redefinitions are handled by *liveness*, not by a seen-target set:
    keeping a definition of ``T`` removes ``T`` from the needed set
    (earlier definitions are shadowed), but a kept command between two
    definitions that reads ``T`` re-adds it, so the earlier definition
    it actually reads is kept too.
    """
    needed: Set[str] = {plan.output_table}
    kept_reversed: List[Command] = []
    for command in reversed(plan.commands):
        if command.target in needed:
            kept_reversed.append(command)
            needed.discard(command.target)
            expr = (
                command.input_expr
                if isinstance(command, AccessCommand)
                else command.expr
            )
            needed |= expr.tables_read()
    return Plan(
        tuple(reversed(kept_reversed)),
        plan.output_table,
        name=plan.name,
    )


# ------------------------------------------------------------------ union
def union_plans(plans: List[Plan], name: str = "union") -> Plan:
    """Combine plans into one USPJ plan unioning their outputs.

    All plans must produce tables over the same attribute *set* (order
    may differ; the union reorders).  Temporary tables are renamed apart
    with a per-plan prefix so the command sequences cannot collide.
    Unioning complete plans for the same query is again complete; the
    combinator is the plan-level counterpart of the U in Theorem 1's
    USPJ plans.
    """
    if not plans:
        raise ValueError("union_plans needs at least one plan")
    commands: List[Command] = []
    branch_outputs: List[str] = []
    for index, plan in enumerate(plans):
        prefix = f"u{index}_"
        for command in plan.commands:
            commands.append(_prefix_command(command, prefix))
        branch_outputs.append(prefix + plan.output_table)
    expr: Expression = Scan(branch_outputs[0])
    for output in branch_outputs[1:]:
        expr = Union(expr, Scan(output))
    commands.append(MiddlewareCommand("T_union", expr))
    return Plan(tuple(commands), "T_union", name=name)


def _prefix_command(command: Command, prefix: str) -> Command:
    if isinstance(command, AccessCommand):
        return AccessCommand(
            target=prefix + command.target,
            method=command.method,
            input_expr=_prefix_expr(command.input_expr, prefix),
            input_binding=command.input_binding,
            output_map=command.output_map,
        )
    return MiddlewareCommand(
        prefix + command.target, _prefix_expr(command.expr, prefix)
    )


def _prefix_expr(expr: Expression, prefix: str) -> Expression:
    if isinstance(expr, Scan):
        return Scan(prefix + expr.table)
    if isinstance(expr, (Singleton, Literal)):
        return expr
    if isinstance(expr, Project):
        return Project(_prefix_expr(expr.child, prefix), expr.attrs)
    if isinstance(expr, Select):
        return Select(_prefix_expr(expr.child, prefix), expr.conditions)
    if isinstance(expr, Rename):
        return Rename(_prefix_expr(expr.child, prefix), expr.mapping)
    if isinstance(expr, Join):
        return Join(
            _prefix_expr(expr.left, prefix), _prefix_expr(expr.right, prefix)
        )
    if isinstance(expr, Union):
        return Union(
            _prefix_expr(expr.left, prefix), _prefix_expr(expr.right, prefix)
        )
    if isinstance(expr, Difference):
        return Difference(
            _prefix_expr(expr.left, prefix), _prefix_expr(expr.right, prefix)
        )
    raise TypeError(f"cannot rename tables in {expr!r}")


# ------------------------------------------------------------------ SQL
def to_sql(plan: Plan) -> str:
    """Render the plan as documentation-grade SQL over temp tables."""
    statements = []
    for command in plan.commands:
        if isinstance(command, AccessCommand):
            inputs = ", ".join(
                repr(entry) if isinstance(entry, Constant) else entry
                for entry in command.input_binding
            ) or "no inputs"
            statements.append(
                f"-- {command.target}: invoke access method "
                f"{command.method}({inputs}) for each row of:\n"
                f"--   {_sql_expr(command.input_expr)}"
            )
        else:
            statements.append(
                f"CREATE TEMP TABLE {command.target} AS\n"
                f"  {_sql_expr(command.expr)};"
            )
    statements.append(f"SELECT * FROM {plan.output_table};")
    return "\n".join(statements)


def _sql_expr(expr: Expression) -> str:
    if isinstance(expr, Singleton):
        return "SELECT 1"
    if isinstance(expr, Literal):
        if expr.table.is_empty:
            return "SELECT NULL WHERE FALSE"
        rows = " UNION ALL ".join(
            "SELECT "
            + ", ".join(
                f"{cell.value!r} AS {attr}"
                for cell, attr in zip(row, expr.table.attributes)
            )
            for row in sorted(expr.table.rows, key=repr)
        )
        return rows
    if isinstance(expr, Scan):
        return f"SELECT * FROM {expr.table}"
    if isinstance(expr, Project):
        attrs = ", ".join(expr.attrs) or "1"
        return f"SELECT DISTINCT {attrs} FROM ({_sql_expr(expr.child)})"
    if isinstance(expr, Select):
        conditions = " AND ".join(
            _sql_condition(c) for c in expr.conditions
        ) or "TRUE"
        return f"SELECT * FROM ({_sql_expr(expr.child)}) WHERE {conditions}"
    if isinstance(expr, Join):
        return (
            f"({_sql_expr(expr.left)}) NATURAL JOIN "
            f"({_sql_expr(expr.right)})"
        )
    if isinstance(expr, Union):
        return f"({_sql_expr(expr.left)}) UNION ({_sql_expr(expr.right)})"
    if isinstance(expr, Difference):
        return f"({_sql_expr(expr.left)}) EXCEPT ({_sql_expr(expr.right)})"
    if isinstance(expr, Rename):
        pairs = ", ".join(f"{a} AS {b}" for a, b in expr.mapping)
        return f"SELECT {pairs} FROM ({_sql_expr(expr.child)})"
    return repr(expr)


def _sql_condition(condition) -> str:
    if isinstance(condition, EqAttr):
        return f"{condition.left} = {condition.right}"
    if isinstance(condition, EqConst):
        return f"{condition.attribute} = {condition.value!r}"
    if isinstance(condition, NeqAttr):
        return f"{condition.left} <> {condition.right}"
    if isinstance(condition, NeqConst):
        return f"{condition.attribute} <> {condition.value!r}"
    return repr(condition)


# -------------------------------------------------------- serialization
def plan_to_dict(plan: Plan) -> Dict:
    """A JSON-able representation of a plan.

    A convenience dump for inspection and ad-hoc persistence.  For the
    *canonical*, version-stamped wire format (sorted literal rows,
    key-sorted JSON, stable fingerprints — what the columnar backend
    compiles from) use :mod:`repro.plans.ir` instead.
    """
    return {
        "name": plan.name,
        "output_table": plan.output_table,
        "commands": [_command_to_dict(c) for c in plan.commands],
    }


def plan_from_dict(data: Dict) -> Plan:
    """Inverse of :func:`plan_to_dict`."""
    commands = tuple(
        _command_from_dict(entry) for entry in data["commands"]
    )
    return Plan(commands, data["output_table"], name=data["name"])


def _command_to_dict(command: Command) -> Dict:
    if isinstance(command, AccessCommand):
        return {
            "kind": "access",
            "target": command.target,
            "method": command.method,
            "input_expr": _expr_to_dict(command.input_expr),
            "input_binding": [
                {"const": entry.value}
                if isinstance(entry, Constant)
                else {"attr": entry}
                for entry in command.input_binding
            ],
            "output_map": [
                [attr, list(positions)]
                for attr, positions in command.output_map
            ],
        }
    return {
        "kind": "middleware",
        "target": command.target,
        "expr": _expr_to_dict(command.expr),
    }


def _command_from_dict(data: Dict) -> Command:
    if data["kind"] == "access":
        binding = tuple(
            Constant(entry["const"]) if "const" in entry else entry["attr"]
            for entry in data["input_binding"]
        )
        return AccessCommand(
            target=data["target"],
            method=data["method"],
            input_expr=_expr_from_dict(data["input_expr"]),
            input_binding=binding,
            output_map=tuple(
                (attr, tuple(positions))
                for attr, positions in data["output_map"]
            ),
        )
    return MiddlewareCommand(
        target=data["target"], expr=_expr_from_dict(data["expr"])
    )


def _expr_to_dict(expr: Expression) -> Dict:
    if isinstance(expr, Singleton):
        return {"op": "singleton"}
    if isinstance(expr, Literal):
        return {
            "op": "literal",
            "attributes": list(expr.table.attributes),
            "rows": [
                [cell.value for cell in row]
                for row in sorted(expr.table.rows, key=repr)
            ],
        }
    if isinstance(expr, Scan):
        return {"op": "scan", "table": expr.table}
    if isinstance(expr, Project):
        return {
            "op": "project",
            "child": _expr_to_dict(expr.child),
            "attrs": list(expr.attrs),
        }
    if isinstance(expr, Select):
        return {
            "op": "select",
            "child": _expr_to_dict(expr.child),
            "conditions": [_condition_to_dict(c) for c in expr.conditions],
        }
    if isinstance(expr, Join):
        return {
            "op": "join",
            "left": _expr_to_dict(expr.left),
            "right": _expr_to_dict(expr.right),
        }
    if isinstance(expr, Union):
        return {
            "op": "union",
            "left": _expr_to_dict(expr.left),
            "right": _expr_to_dict(expr.right),
        }
    if isinstance(expr, Difference):
        return {
            "op": "difference",
            "left": _expr_to_dict(expr.left),
            "right": _expr_to_dict(expr.right),
        }
    if isinstance(expr, Rename):
        return {
            "op": "rename",
            "child": _expr_to_dict(expr.child),
            "mapping": [list(pair) for pair in expr.mapping],
        }
    raise TypeError(f"cannot serialize {expr!r}")


def _expr_from_dict(data: Dict) -> Expression:
    op = data["op"]
    if op == "singleton":
        return Singleton()
    if op == "literal":
        return Literal(
            NamedTable.from_rows(
                tuple(data["attributes"]),
                [
                    tuple(Constant(v) for v in row)
                    for row in data["rows"]
                ],
            )
        )
    if op == "scan":
        return Scan(data["table"])
    if op == "project":
        return Project(_expr_from_dict(data["child"]), tuple(data["attrs"]))
    if op == "select":
        return Select(
            _expr_from_dict(data["child"]),
            tuple(_condition_from_dict(c) for c in data["conditions"]),
        )
    if op == "join":
        return Join(
            _expr_from_dict(data["left"]), _expr_from_dict(data["right"])
        )
    if op == "union":
        return Union(
            _expr_from_dict(data["left"]), _expr_from_dict(data["right"])
        )
    if op == "difference":
        return Difference(
            _expr_from_dict(data["left"]), _expr_from_dict(data["right"])
        )
    if op == "rename":
        return Rename(
            _expr_from_dict(data["child"]),
            tuple(tuple(pair) for pair in data["mapping"]),
        )
    raise ValueError(f"unknown expression op {op!r}")


def _condition_to_dict(condition) -> Dict:
    if isinstance(condition, EqAttr):
        return {"kind": "eq-attr", "left": condition.left,
                "right": condition.right}
    if isinstance(condition, EqConst):
        return {"kind": "eq-const", "attr": condition.attribute,
                "value": condition.value.value}
    if isinstance(condition, NeqAttr):
        return {"kind": "neq-attr", "left": condition.left,
                "right": condition.right}
    if isinstance(condition, NeqConst):
        return {"kind": "neq-const", "attr": condition.attribute,
                "value": condition.value.value}
    raise TypeError(f"cannot serialize condition {condition!r}")


def _condition_from_dict(data: Dict):
    kind = data["kind"]
    if kind == "eq-attr":
        return EqAttr(data["left"], data["right"])
    if kind == "eq-const":
        return EqConst(data["attr"], Constant(data["value"]))
    if kind == "neq-attr":
        return NeqAttr(data["left"], data["right"])
    if kind == "neq-const":
        return NeqConst(data["attr"], Constant(data["value"]))
    raise ValueError(f"unknown condition kind {kind!r}")
