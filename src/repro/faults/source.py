"""The fault-injecting source wrapper.

:class:`FaultInjectingSource` composes like the decorators in
:mod:`repro.data.decorators`: it delegates everything to the wrapped
source and intercepts ``access``.  Each interception consults the
:class:`~repro.faults.policy.FaultPolicy` schedule:

* a permanently-out method refuses with
  :class:`~repro.errors.MethodOutage` *without* touching the backend;
* a key scheduled for a transient kind fails its first ``burst``
  attempts with the matching error
  (:class:`~repro.errors.SourceUnavailable`,
  :class:`~repro.errors.AccessTimeout`,
  :class:`~repro.errors.RateLimited`), again without touching the
  backend -- the failed call is not logged or charged, matching a
  request that never got an answer;
* a key scheduled for truncation *does* reach the backend (the call was
  made and paid for) but raises :class:`~repro.errors.ResultTruncated`
  carrying only ``truncation_keep`` rows, so a result-bounded interface
  is visible to the caller rather than silently incomplete;
* everything else is delivered, with ``policy.latency`` seconds accrued
  on the optional :class:`~repro.faults.clock.VirtualClock`.

Attempt counting is per ``(method, inputs)`` key, so retrying the same
access walks through the burst deterministically while other keys are
unaffected -- the property the differential fault tests rely on.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.data.instance import _to_constant
from repro.errors import (
    AccessTimeout,
    MethodOutage,
    RateLimited,
    ResultTruncated,
    SourceUnavailable,
)
from repro.faults.clock import VirtualClock
from repro.faults.policy import (
    KIND_RATE_LIMIT,
    KIND_TIMEOUT,
    KIND_TRUNCATION,
    KIND_UNAVAILABLE,
    FaultPolicy,
    FaultStats,
)
from repro.logic.terms import Constant

_Key = Tuple[str, Tuple[Constant, ...]]


class FaultInjectingSource:
    """Wrap any source with a seeded, deterministic fault schedule."""

    #: The batch endpoint is never delegated: batched accesses reaching
    #: the inner source directly would skip the fault schedule, and the
    #: chaos/differential suites rely on every access being in scope.
    access_batch = None

    def __init__(
        self,
        inner,
        policy: FaultPolicy,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.clock = clock
        self.stats = FaultStats()
        self._attempts: Dict[_Key, int] = {}
        self._method_calls: Dict[str, int] = {}
        # Guards the attempt/invocation counters and stats, so the
        # schedule replays deterministically per key even when many
        # service workers hammer the same wrapper.
        self._lock = threading.Lock()

    # ------------------------------------------------------- delegation
    @property
    def schema(self):
        """The wrapped source's schema."""
        return self.inner.schema

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # ----------------------------------------------------------- access
    def access(self, method_name: str, inputs: Sequence[object] = ()):
        """Invoke a method through the fault schedule.

        Raises the scheduled :mod:`repro.errors` type when the schedule
        says so; otherwise returns the wrapped source's answer.
        """
        values = tuple(_to_constant(v) for v in inputs)
        key = (method_name, values)
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            invocation = self._method_calls.get(method_name, 0)
            self._method_calls[method_name] = invocation + 1
            self.stats.calls += 1

        relation = self._relation_of(method_name)
        if self.policy.is_out(method_name, invocation):
            with self._lock:
                self.stats.outage_refusals += 1
            raise MethodOutage(
                f"method is hard-down (invocation #{invocation})",
                method=method_name,
                relation=relation,
                inputs=values,
            )
        kind = self.policy.kind_for(method_name, values)
        if kind is not None and attempt < self.policy.burst:
            if kind == KIND_TRUNCATION:
                rows = self.inner.access(method_name, values)
                kept = frozenset(sorted(rows)[: self.policy.truncation_keep])
                with self._lock:
                    self.stats.injected[kind] += 1
                raise ResultTruncated(
                    f"result truncated to {len(kept)} of {len(rows)} rows "
                    f"(attempt {attempt})",
                    rows=kept,
                    method=method_name,
                    relation=relation,
                    inputs=values,
                )
            with self._lock:
                self.stats.injected[kind] += 1
            error = {
                KIND_UNAVAILABLE: SourceUnavailable,
                KIND_TIMEOUT: AccessTimeout,
                KIND_RATE_LIMIT: RateLimited,
            }[kind]
            raise error(
                f"injected {kind} fault (attempt {attempt})",
                method=method_name,
                relation=relation,
                inputs=values,
            )
        if self.policy.latency:
            with self._lock:
                self.stats.injected_latency += self.policy.latency
            if self.clock is not None:
                self.clock.advance(self.policy.latency)
        with self._lock:
            self.stats.delivered += 1
        return self.inner.access(method_name, values)

    def _relation_of(self, method_name: str) -> Optional[str]:
        try:
            return self.schema.method(method_name).relation
        except Exception:
            return None

    # ------------------------------------------------------- inspection
    def reset_faults(self) -> None:
        """Forget attempt history and stats (the schedule is unchanged)."""
        self.stats = FaultStats()
        self._attempts.clear()
        self._method_calls.clear()

    def __repr__(self) -> str:
        return f"FaultInjectingSource({self.inner!r}, {self.stats.summary()})"
