"""A manually advanced clock for simulated time.

Fault scenarios are about *time*: injected latency, backoff waits,
breaker recovery windows, plan deadlines.  Running them against the wall
clock would make the test suite slow and flaky -- so every time-aware
component in the resilience stack takes an injectable clock, and this is
the injectable clock: reading it costs nothing, and time only passes
when something explicitly :meth:`advance`\\ s it (injected source
latency, simulated backoff sleeps).
"""

from __future__ import annotations

import threading


class VirtualClock:
    """A monotonically advancing simulated clock.

    Use the instance itself as the ``clock`` callable (``clock()``
    returns the current simulated time) and :meth:`sleep` as the
    ``sleep`` callable (it advances instead of blocking).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        # Advances are read-modify-write; lock them so concurrent
        # simulated sleeps never lose time.
        self._lock = threading.Lock()

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """The current simulated time, in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are refused."""
        if seconds < 0:
            raise ValueError("clock cannot go backwards")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """A sleep that advances simulated time instead of blocking."""
        self.advance(seconds)

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.3f}s)"
