"""Deterministic fault injection for access-method sources.

The paper's sources are remote services, and remote services fail:
they go down transiently, time out, police call rates, truncate result
sets, and sometimes die outright.  This package simulates all of that
*reproducibly*: :class:`FaultInjectingSource` wraps any source exposing
``access(method, inputs)`` and injects failures according to a
:class:`FaultPolicy` whose schedule is a pure function of ``(seed,
method, inputs, attempt)`` -- the same seed always produces the same
failures in the same places, so every fault scenario in the tests and
benchmarks is replayable bit for bit.

The injected errors are the structured :mod:`repro.errors` types
(:class:`~repro.errors.SourceUnavailable`,
:class:`~repro.errors.AccessTimeout`, :class:`~repro.errors.RateLimited`,
:class:`~repro.errors.ResultTruncated`,
:class:`~repro.errors.MethodOutage`), which is exactly what the
resilience layer (:mod:`repro.exec.resilience`) retries, breaks and
fails over on.  :class:`VirtualClock` lets latency injection and
retry backoff run in simulated time, so fault tests are instant.
"""

from repro.faults.clock import VirtualClock
from repro.faults.policy import FaultPolicy, FaultStats
from repro.faults.source import FaultInjectingSource

__all__ = [
    "FaultInjectingSource",
    "FaultPolicy",
    "FaultStats",
    "VirtualClock",
]
