"""Fault schedules: which accesses fail, how, and for how long.

A :class:`FaultPolicy` is *declarative*: it never holds mutable state.
Whether a given access misbehaves is decided by hashing ``(seed, method,
inputs)`` into the unit interval (:func:`unit_interval` -- a keyed
BLAKE2 hash, stable across processes and ``PYTHONHASHSEED``) and
comparing against the per-kind rates.  A faulty access fails on its
first ``burst`` attempts and succeeds from then on, which is what makes
the transient faults genuinely transient: a retry policy with more than
``burst`` attempts always reaches the real answer, and the differential
tests can assert byte-identical results against the fault-free run.

Permanent failures are separate: ``outages`` maps a method name to the
(0-based) invocation index from which that method is hard-down, raising
:class:`~repro.errors.MethodOutage` forever after -- the scenario the
failover executor re-plans around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

# The transient fault kinds, in the order the unit interval is carved up.
KIND_UNAVAILABLE = "unavailable"
KIND_TIMEOUT = "timeout"
KIND_RATE_LIMIT = "rate_limit"
KIND_TRUNCATION = "truncation"
TRANSIENT_KINDS = (
    KIND_UNAVAILABLE,
    KIND_TIMEOUT,
    KIND_RATE_LIMIT,
    KIND_TRUNCATION,
)


def unit_interval(*parts: object) -> float:
    """Hash arbitrary parts into [0, 1), stably across processes.

    Python's builtin ``hash`` is salted per process; fault schedules
    must replay across runs, so this uses BLAKE2 over the ``repr`` of
    the parts instead.
    """
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPolicy:
    """A seeded, deterministic fault schedule over access invocations.

    ``unavailable_rate`` / ``timeout_rate`` / ``rate_limit_rate`` /
    ``truncation_rate``
        the fraction of distinct ``(method, inputs)`` keys that fail
        with each transient kind (the bands must sum to at most 1).
    ``burst``
        how many consecutive attempts at a faulty key fail before it
        recovers; retries beyond the burst deterministically succeed.
    ``truncation_keep``
        how many rows a truncated result retains.
    ``latency``
        simulated seconds every successful access takes (advanced on the
        wrapper's clock, never slept).
    ``outages``
        method name -> per-method invocation index from which the method
        is permanently down (0 = dead from the start).
    """

    seed: int = 0
    unavailable_rate: float = 0.0
    timeout_rate: float = 0.0
    rate_limit_rate: float = 0.0
    truncation_rate: float = 0.0
    burst: int = 1
    truncation_keep: int = 1
    latency: float = 0.0
    outages: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rates = (
            self.unavailable_rate,
            self.timeout_rate,
            self.rate_limit_rate,
            self.truncation_rate,
        )
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0 + 1e-9:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1"
            )
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        if self.truncation_keep < 0:
            raise ValueError("truncation_keep must be non-negative")
        if any(start < 0 for start in self.outages.values()):
            raise ValueError("outage start indices must be non-negative")

    @classmethod
    def transient(
        cls,
        rate: float,
        seed: int = 0,
        burst: int = 1,
        latency: float = 0.0,
    ) -> "FaultPolicy":
        """A mixed transient schedule at one overall fault rate.

        The rate is split among the retryable kinds the way outages tend
        to split in the wild: mostly hard unavailability, then timeouts,
        then rate limiting (truncation is opt-in -- it changes answers,
        not just availability, so benchmarks enable it explicitly).
        """
        return cls(
            seed=seed,
            unavailable_rate=rate * 0.5,
            timeout_rate=rate * 0.3,
            rate_limit_rate=rate * 0.2,
            burst=burst,
            latency=latency,
        )

    @classmethod
    def outage(cls, method: str, after: int = 0, seed: int = 0) -> "FaultPolicy":
        """A schedule whose only fault is one method's hard outage."""
        return cls(seed=seed, outages={method: after})

    # ------------------------------------------------------- the schedule
    def kind_for(self, method: str, inputs: Tuple) -> Optional[str]:
        """The transient fault kind of one access key, or ``None``.

        Pure: the same (seed, method, inputs) always maps to the same
        kind, so a schedule can be replayed and reasoned about.
        """
        draw = unit_interval(self.seed, method, inputs)
        threshold = 0.0
        for kind, rate in (
            (KIND_UNAVAILABLE, self.unavailable_rate),
            (KIND_TIMEOUT, self.timeout_rate),
            (KIND_RATE_LIMIT, self.rate_limit_rate),
            (KIND_TRUNCATION, self.truncation_rate),
        ):
            threshold += rate
            if draw < threshold:
                return kind
        return None

    def is_out(self, method: str, invocation: int) -> bool:
        """Whether the method is hard-down at its n-th invocation."""
        start = self.outages.get(method)
        return start is not None and invocation >= start


@dataclass
class FaultStats:
    """What a :class:`~repro.faults.source.FaultInjectingSource` did."""

    calls: int = 0
    delivered: int = 0
    injected: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in TRANSIENT_KINDS}
    )
    outage_refusals: int = 0
    injected_latency: float = 0.0

    @property
    def injected_total(self) -> int:
        """All injected transient failures, across kinds."""
        return sum(self.injected.values())

    def summary(self) -> str:
        """A one-line human-readable digest."""
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in self.injected.items()
            if count
        )
        return (
            f"{self.calls} calls, {self.delivered} delivered, "
            f"{self.injected_total} transient faults"
            + (f" ({kinds})" if kinds else "")
            + f", {self.outage_refusals} outage refusals, "
            f"{self.injected_latency:.2f}s injected latency"
        )

    def as_dict(self) -> Dict:
        """A JSON-able representation (used by the benchmarks)."""
        return {
            "calls": self.calls,
            "delivered": self.delivered,
            "injected": dict(self.injected),
            "injected_total": self.injected_total,
            "outage_refusals": self.outage_refusals,
            "injected_latency": self.injected_latency,
        }
