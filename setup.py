"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose pip/setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
