"""FIG1: regenerate Figure 1 -- the exploration tree of Example 5.

The paper's only figure shows Algorithm 1 exploring the 3-source
scenario: the chain n0 -> n1(Udirect1) -> n2(Udirect2) -> n3(Udirect3)
-> n4(Profinfo, success), backtracking to cheaper successes, and the
reverse-order node n''' killed by domination pruning.  The benchmark
times the full exploration and asserts the regenerated tree has exactly
the paper's qualitative shape (recorded in extra_info).
"""

import pytest

from benchmarks.conftest import record
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5


def explore():
    scenario = example5(
        sources=3, source_costs=[1.0, 2.0, 3.0], profinfo_cost=5.0
    )
    return find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4, collect_tree=True, candidate_order="method"
        ),
    )


def test_figure1_exploration(benchmark):
    result = benchmark(explore)
    # The first five nodes are the paper's n0..n4 chain.
    chain = [
        node.exposures[-1].fact.relation if node.exposures else "root"
        for node in result.tree[:5]
    ]
    assert chain == [
        "root", "Udirect1", "Udirect2", "Udirect3", "Profinfo"
    ]
    assert result.tree[4].successful
    # Backtracking discovers strictly cheaper plans, ending at 1 + 5.
    assert result.stats.best_cost_history[-1] == pytest.approx(6.0)
    assert result.stats.best_cost_history == sorted(
        result.stats.best_cost_history, reverse=True
    )
    # The reverse-order node (paper's n''') is dominated.
    assert result.stats.pruned_by_domination >= 1
    record(
        benchmark,
        nodes=result.stats.nodes_created,
        successes=result.stats.successes,
        pruned_cost=result.stats.pruned_by_cost,
        pruned_domination=result.stats.pruned_by_domination,
        best_cost=result.best_cost,
        cost_history=result.stats.best_cost_history,
    )


def test_figure1_without_pruning(benchmark):
    """The same exploration with pruning off: same optimum, more nodes."""
    scenario = example5(
        sources=3, source_costs=[1.0, 2.0, 3.0], profinfo_cost=5.0
    )

    def explore_bare():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4,
                prune_by_cost=False,
                domination=False,
                candidate_order="method",
            ),
        )

    result = benchmark(explore_bare)
    assert result.best_cost == pytest.approx(6.0)
    record(
        benchmark,
        nodes=result.stats.nodes_created,
        successes=result.stats.successes,
    )
