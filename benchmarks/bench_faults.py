"""FAULTS: plan execution under injected faults, retries, and failover.

A standalone runner (``python benchmarks/bench_faults.py``) that
measures two things and writes the machine-readable
``BENCH_faults.json`` (rendered by ``report.py --faults-json``):

* **transient sweep** -- the Example 5 best plan served under a seeded
  transient-fault schedule at increasing fault rates, once *unprotected*
  (fail fast on the first fault) and once under the resilience stack
  (retry with exponential backoff on a virtual clock).  Per trial the
  resilient run is asserted byte-identical to the fault-free reference;
  the report records success rates, mean retries, and the simulated
  latency cost of backoff (virtual-clock seconds, so the sweep itself
  runs in milliseconds).
* **outage sweep** -- one permanent method outage at a time, every
  method of the k-redundant-sources schema in turn, served through
  :class:`~repro.exec.failover.FailoverExecutor`.  Killing any one of
  the k directory sources must fail over to a sibling source and return
  identical answers; killing the one non-redundant method degrades to a
  marked partial answer.  The report records the complete-recovery rate
  (``success_rate``), which the full run asserts to be at least 0.9 --
  the redundancy k is chosen so that a single outage is almost always
  survivable, which is exactly the paper's "many proofs, many plans"
  point turned into an availability number.
"""

import argparse
import json
import sys
from time import perf_counter

from repro.data.source import InMemorySource
from repro.exec import (
    BreakerRegistry,
    FailoverExecutor,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.errors import ReproError
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import redundant_sources

ACCESS_LATENCY = 0.01  # simulated seconds per successful access


def best_plan(scenario, budget):
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    assert result.found, scenario.name
    return result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def make_dispatcher(clock, retries=4, seed=0):
    return ResilientDispatcher(
        retry=RetryPolicy(max_attempts=retries + 1, seed=seed),
        breakers=BreakerRegistry(clock=clock),
        sleep=clock.sleep,
    )


# ------------------------------------------------------------ transient sweep
def transient_sweep(scenario, plan, rates, trials, retries):
    """Success and latency, unprotected vs resilient, per fault rate."""
    instance = scenario.instance(0)
    reference = canonical(
        plan.execute(InMemorySource(scenario.schema, instance))
    )
    rows = []
    for rate in rates:
        unprotected_ok = 0
        unprotected_latency = 0.0
        resilient_ok = 0
        total_retries = 0
        total_backoff = 0.0
        resilient_latency = 0.0
        wall_started = perf_counter()
        for seed in range(trials):
            policy = FaultPolicy.transient(
                rate, seed=seed, latency=ACCESS_LATENCY
            )

            def wrapped(clock):
                return FaultInjectingSource(
                    InMemorySource(scenario.schema, instance),
                    policy,
                    clock=clock,
                )

            # Fail-fast: no retries, first transient fault kills the run.
            clock = VirtualClock()
            try:
                table = plan.execute(wrapped(clock))
            except ReproError:
                pass
            else:
                assert canonical(table) == reference, (rate, seed)
                unprotected_ok += 1
            unprotected_latency += clock.now()

            # Resilient: same schedule, retries must recover everything.
            clock = VirtualClock()
            dispatcher = make_dispatcher(clock, retries=retries, seed=seed)
            table = plan.execute(wrapped(clock), resilience=dispatcher)
            assert canonical(table) == reference, (rate, seed)
            assert dispatcher.giveups == 0, (rate, seed)
            resilient_ok += 1
            total_retries += dispatcher.retries
            total_backoff += dispatcher.backoff_waited
            resilient_latency += clock.now()
        rows.append(
            {
                "rate": rate,
                "trials": trials,
                "unprotected": {
                    "success_rate": unprotected_ok / trials,
                    "mean_sim_latency": unprotected_latency / trials,
                },
                "resilient": {
                    "success_rate": resilient_ok / trials,
                    "identical_to_reference": True,
                    "mean_retries": total_retries / trials,
                    "mean_backoff": total_backoff / trials,
                    "mean_sim_latency": resilient_latency / trials,
                },
                "wall_time": perf_counter() - wall_started,
            }
        )
    return rows


# --------------------------------------------------------------- outage sweep
def outage_sweep(scenario, budget, retries):
    """One permanent outage per method, served through failover."""
    instance = scenario.instance(0)
    plan = best_plan(scenario, budget)
    reference = canonical(
        plan.execute(InMemorySource(scenario.schema, instance))
    )
    rows = []
    complete = partial = failed = 0
    for victim in sorted(m.name for m in scenario.schema.methods):
        clock = VirtualClock()
        source = FaultInjectingSource(
            InMemorySource(scenario.schema, instance),
            FaultPolicy.outage(victim),
            clock=clock,
        )
        executor = FailoverExecutor(
            scenario.schema,
            source,
            resilience=make_dispatcher(clock, retries=retries),
            options=SearchOptions(max_accesses=budget),
        )
        started = perf_counter()
        outcome = executor.run(scenario.query)
        elapsed = perf_counter() - started
        if outcome.complete:
            complete += 1
            assert canonical(outcome.table) == reference, victim
        elif outcome.partial:
            partial += 1
        else:
            failed += 1
        rows.append(
            {
                "victim": victim,
                "outcome": (
                    "complete"
                    if outcome.complete
                    else "partial" if outcome.partial else "failed"
                ),
                "failovers": outcome.failovers,
                "plans_tried": list(outcome.plans_tried),
                "rows": len(outcome.table.rows) if outcome.table else 0,
                "wall_time": elapsed,
            }
        )
    trials = len(rows)
    return {
        "scenario": scenario.name,
        "methods": trials,
        "complete": complete,
        "partial": partial,
        "failed": failed,
        "success_rate": complete / trials,
        "served_rate": (complete + partial) / trials,
        "rows": rows,
    }


def run_benchmark(smoke, trials, retries):
    """The full report dict (also asserting correctness throughout)."""
    k = 3 if smoke else 10
    budget = k + 1
    scenario = redundant_sources(
        k, professors=15 if smoke else 25, noise_per_source=30
    )
    plan = best_plan(scenario, budget)
    rates = [0.0, 0.2, 0.5] if smoke else [0.0, 0.2, 0.4, 0.6, 0.8]
    transient = transient_sweep(scenario, plan, rates, trials, retries)
    outage = outage_sweep(scenario, budget, retries)
    report = {
        "benchmark": "bench_faults",
        "mode": "smoke" if smoke else "full",
        "scenario": scenario.name,
        "retries": retries,
        "access_latency": ACCESS_LATENCY,
        "transient": {"trials": trials, "rows": transient},
        "outage": outage,
    }
    if not smoke:
        # The availability claim the committed report stands behind.
        assert outage["success_rate"] >= 0.9, outage["success_rate"]
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="measure plan execution under faults, retries, failover"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sweep (k=3 sources, 3 rates) for CI",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="fault-schedule seeds per rate (default 5 smoke / 20 full)",
    )
    parser.add_argument(
        "--retries", type=int, default=4,
        help="retry budget of the resilient runs",
    )
    parser.add_argument(
        "--output", default="BENCH_faults.json", help="report destination"
    )
    args = parser.parse_args(argv)
    trials = args.trials or (5 if args.smoke else 20)
    report = run_benchmark(args.smoke, trials, args.retries)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["transient"]["rows"]:
        print(
            f"rate {row['rate']:.1f}: unprotected "
            f"{row['unprotected']['success_rate']:.0%} ok, resilient "
            f"{row['resilient']['success_rate']:.0%} ok "
            f"({row['resilient']['mean_retries']:.1f} retries, "
            f"+{row['resilient']['mean_backoff']:.2f}s simulated backoff)"
        )
    outage = report["outage"]
    print(
        f"outage sweep over {outage['methods']} methods: "
        f"{outage['complete']} complete / {outage['partial']} partial / "
        f"{outage['failed']} failed "
        f"(success rate {outage['success_rate']:.0%})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
