"""SEARCH: Algorithm 1 hot-loop throughput, baseline vs incremental.

Two surfaces:

* pytest-benchmark series (``pytest benchmarks/bench_search.py``):
  planning time on the k-sources family under the unoptimized baseline
  (naive domination scan, full candidate rescans, full cost recompute,
  deep configuration copies) and the incremental hot loop (fingerprint
  domination index, inherited candidates, delta cost, copy-on-write
  forks);
* a standalone comparison runner (``python benchmarks/bench_search.py``)
  that plans every point under three modes -- ``baseline`` (naive),
  ``linear`` (the prefiltered scan the incremental registry replaced)
  and ``incremental`` -- and writes the machine-readable
  ``BENCH_search.json`` (rendered by ``report.py --search-json``):
  wall time, domination-check breakdowns, candidate inheritance counts
  and the derived homomorphism-call reduction and speedup, with
  equivalence of ``best_cost``, ``pruned_by_domination`` and
  ``exhausted`` asserted across all modes (plus one non-timed
  ``differential`` run per point asserting per-check agreement of the
  fingerprint index with the linear oracle).
"""

import argparse
import json
import sys
import time

import pytest

from benchmarks.conftest import record
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import redundant_sources

# The unoptimized reference: linear domination scan with a full
# homomorphism per registered node, full candidate/cost recomputation,
# deep configuration copies.
BASELINE = dict(
    domination_index="naive",
    incremental_candidates=False,
    incremental_cost=False,
    cow_configs=False,
)
# The pre-overhaul implementation: linear scan with the relation-subset
# prefilter, everything else recomputed from scratch.
LINEAR = dict(
    domination_index="linear",
    incremental_candidates=False,
    incremental_cost=False,
    cow_configs=False,
)
# The incremental hot loop (the defaults).
INCREMENTAL = dict()

MODES = {
    "baseline": BASELINE,
    "linear": LINEAR,
    "incremental": INCREMENTAL,
}


def _options(k, overrides):
    return SearchOptions(max_accesses=k + 1, **overrides)


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("k", [3, 4])
def test_search_modes(benchmark, k, mode):
    scenario = redundant_sources(k)

    def plan():
        return find_best_plan(
            scenario.schema, scenario.query, _options(k, MODES[mode])
        )

    result = benchmark(plan)
    assert result.found
    record(
        benchmark,
        mode=mode,
        nodes=result.stats.nodes_created,
        best_cost=result.best_cost,
        dom_hom_calls=result.stats.domination.hom_calls,
        pruned_domination=result.stats.pruned_by_domination,
    )


# ------------------------------------------------------ standalone comparison
def _measure(scenario, k, overrides, repeats):
    """Best-of-``repeats`` wall time plus the final run's search stats."""
    best_time = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = find_best_plan(
            scenario.schema, scenario.query, _options(k, overrides)
        )
        elapsed = time.perf_counter() - started
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return {
        "wall_time": best_time,
        "best_cost": result.best_cost,
        "exhausted": result.exhausted,
        **result.stats.as_dict(),
    }


def run_comparison(ks, repeats=3):
    """Plan every k under all modes; return the comparison report."""
    rows = []
    for k in ks:
        scenario = redundant_sources(k)
        entry = {"k": k, "scenario": scenario.name}
        for mode, overrides in MODES.items():
            entry[mode] = _measure(scenario, k, overrides, repeats)
        # Per-check agreement of the fingerprint index with the linear
        # oracle (raises DominationMismatch on any disagreement).
        find_best_plan(
            scenario.schema,
            scenario.query,
            _options(k, dict(domination_index="differential")),
        )
        base, incr = entry["baseline"], entry["incremental"]
        # Every mode must explore the same tree and find the same plan.
        for mode in MODES:
            other = entry[mode]
            assert other["best_cost"] == base["best_cost"], (k, mode)
            assert other["exhausted"] == base["exhausted"], (k, mode)
            assert other["nodes_created"] == base["nodes_created"], (k, mode)
            assert (
                other["pruned_by_domination"]
                == base["pruned_by_domination"]
            ), (k, mode)
        base_homs = base["domination"]["hom_calls"]
        incr_homs = incr["domination"]["hom_calls"]
        entry["hom_reduction"] = (
            base_homs / incr_homs if incr_homs else float("inf")
        )
        entry["speedup"] = (
            base["wall_time"] / incr["wall_time"]
            if incr["wall_time"]
            else float("inf")
        )
        rows.append(entry)
    return {
        "benchmark": "bench_search",
        "mode": "smoke" if max(ks) <= 4 else "full",
        "ks": list(ks),
        "rows": rows,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare baseline vs incremental Algorithm 1 search"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="k <= 4 only (CI)"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per point"
    )
    parser.add_argument(
        "--output", default="BENCH_search.json", help="report destination"
    )
    args = parser.parse_args(argv)
    ks = [3, 4] if args.smoke else [4, 5, 6]
    report = run_comparison(ks, repeats=args.repeats)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        base, incr = row["baseline"], row["incremental"]
        print(
            f"{row['scenario']}: "
            f"{row['hom_reduction']:.1f}x fewer domination hom calls "
            f"({base['domination']['hom_calls']} -> "
            f"{incr['domination']['hom_calls']}), "
            f"{row['speedup']:.2f}x faster "
            f"({base['wall_time'] * 1e3:.1f} -> "
            f"{incr['wall_time'] * 1e3:.1f} ms), "
            f"best cost {incr['best_cost']}"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
