"""INTERP: constructive interpolation (Theorem 4) timing.

Series: tableau refutation + interpolant extraction time for entailment
families of growing size (chains of implications / constraint-mediated
entailments), with interpolant size recorded.  The paper's claim is that
extraction is polynomial in the proof; wall time therefore tracks proof
size, not formula semantics.
"""

import pytest

from benchmarks.conftest import record
from repro.fo.formulas import And, Exists, FOAtom, Forall, Implies
from repro.fo.interpolation import interpolate
from repro.fo.tableau import TableauProver, tgd_to_formula
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, Variable

A = Constant("a")
X = Variable("x")


def implication_chain(length):
    """P0(a) & (P0 -> P1) & ... |= P_len(a); interpolant in {P_len}."""
    parts = [FOAtom(Atom("P0", (A,)))]
    for i in range(length):
        parts.append(
            Forall(
                (X,),
                Implies(
                    FOAtom(Atom(f"P{i}", (X,))),
                    FOAtom(Atom(f"P{i + 1}", (X,))),
                ),
            )
        )
    phi1 = And(*parts)
    phi2 = Exists((X,), FOAtom(Atom(f"P{length}", (X,))))
    return phi1, phi2


@pytest.mark.parametrize("length", [1, 2, 3, 4])
def test_interpolation_chain(benchmark, length):
    phi1, phi2 = implication_chain(length)

    def run():
        return interpolate(phi1, phi2, verify=False)

    result = benchmark(run)
    assert result.polarity_ok
    assert result.constants_ok
    record(benchmark, interpolant=repr(result.interpolant))


def test_interpolation_tgd_mediated(benchmark):
    """The Example 1 entailment, with full verification enabled."""
    constraint = tgd_to_formula(
        parse_tgd("Profinfo(e, o, l) -> Udirect(e, l)")
    )
    e, o, l = Variable("e"), Variable("o"), Variable("l")
    phi1 = And(
        Exists((e, o, l), FOAtom(Atom("Profinfo", (e, o, l)))),
        constraint,
    )
    phi2 = Exists((e, l), FOAtom(Atom("Udirect", (e, l))))

    def run():
        return interpolate(phi1, phi2, verify=True)

    result = benchmark(run)
    assert result.entailed_by_left and result.entails_right
    record(benchmark, interpolant=repr(result.interpolant))


@pytest.mark.parametrize("length", [2, 4, 6])
def test_pure_refutation(benchmark, length):
    """Prover throughput without extraction overhead comparison."""
    phi1, phi2 = implication_chain(length)
    prover = TableauProver()

    def run():
        return prover.entails([phi1], phi2)

    assert benchmark(run)
