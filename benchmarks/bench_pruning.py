"""A1 ablations: what each optimization of Section 5 buys.

Four configurations of Algorithm 1 on the 4-source scenario:

* full         -- cost-bound + domination pruning (the paper's setup),
* no-domination,
* no-cost-bound,
* none         -- exhaustive search of the bounded proof space,

plus the eager-exposure ablation (``expose_induced`` off: facts induced
by the same access are not bulk-exposed, so permutations multiply).
Every configuration must report the same best cost (Theorem 9); the
interesting series is nodes explored and wall time.
"""

import pytest

from benchmarks.conftest import record
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import redundant_sources

K = 4
CONFIGS = {
    "full": {},
    "no-domination": {"domination": False},
    "no-cost-bound": {"prune_by_cost": False},
    "none": {"domination": False, "prune_by_cost": False},
}


@pytest.mark.parametrize("config", list(CONFIGS))
def test_pruning_ablation(benchmark, config):
    scenario = redundant_sources(K)
    overrides = CONFIGS[config]

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=K + 1, **overrides),
        )

    result = benchmark(plan)
    assert result.best_cost == pytest.approx(6.0)
    record(
        benchmark,
        nodes=result.stats.nodes_created,
        expanded=result.stats.nodes_expanded,
        pruned_cost=result.stats.pruned_by_cost,
        pruned_domination=result.stats.pruned_by_domination,
    )


def test_pruning_node_reduction():
    """Non-timed shape check: full pruning explores strictly fewer nodes."""
    scenario = redundant_sources(K)
    counts = {}
    for config, overrides in CONFIGS.items():
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=K + 1, **overrides),
        )
        counts[config] = result.stats.nodes_created
    assert counts["full"] <= counts["no-domination"]
    assert counts["full"] <= counts["no-cost-bound"]
    assert counts["full"] < counts["none"]


@pytest.mark.parametrize("induced", [True, False])
def test_bulk_exposure_ablation(benchmark, induced):
    """Disabling induced-fact exposure: same optimum, slower search."""
    scenario = redundant_sources(3)

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, expose_induced=induced),
        )

    result = benchmark(plan)
    assert result.found
    record(benchmark, nodes=result.stats.nodes_created,
           best_cost=result.best_cost)
