"""SERVICE: concurrent serving throughput, latency, and load shedding.

A standalone runner (``python benchmarks/bench_service.py``) that
measures the :class:`~repro.service.QueryService` and writes the
machine-readable ``BENCH_service.json`` (rendered by ``report.py
--service-json``):

* **worker sweep** -- the same burst of requests served at increasing
  worker counts over a :class:`~repro.data.decorators.LatencySource`
  (a real per-access sleep, i.e. a remote call the GIL releases
  during), recording throughput and p50/p95/p99 end-to-end latency.
  Every response is asserted byte-identical to the sequential
  reference, so the speedup column is a *soundness-checked* number.
* **shed sweep** -- bursts at 0.5x / 1x / 2x the admission capacity
  against a deliberately small queue, recording how many requests were
  served, shed with a typed error, or rejected at the door.  The
  accounting identity ``served + shed + rejected == submitted`` is
  asserted per trial: overload never loses a request silently.
"""

import argparse
import json
import sys
from time import perf_counter

from repro.data.decorators import LatencySource
from repro.data.source import InMemorySource
from repro.errors import ServiceOverloaded
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5
from repro.service import PRIORITY_CLASSES, QueryService


def best_plan(scenario, budget=6):
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    assert result.found, scenario.name
    return result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def make_source(scenario, instance, latency):
    return LatencySource(
        InMemorySource(scenario.schema, instance), latency
    )


# -------------------------------------------------------------- worker sweep
def worker_sweep(scenario, plan, workers_list, requests, latency):
    """Throughput and latency of the same burst at each worker count."""
    instance = scenario.instance(0)
    reference = canonical(
        plan.execute(InMemorySource(scenario.schema, instance))
    )
    rows = []
    baseline = None
    for workers in workers_list:
        # A fresh uncached service per trial: every request pays its
        # access latency, so the sweep measures worker overlap, not
        # memoization (the cache's own win is bench_execution's story).
        service = QueryService(
            make_source(scenario, instance, latency),
            workers=workers,
            max_queue=requests,
        )
        started = perf_counter()
        with service:
            tickets = [service.submit(plan) for _ in range(requests)]
            responses = [ticket.result(timeout=300) for ticket in tickets]
        elapsed = perf_counter() - started
        for response in responses:
            assert response.complete, response.describe()
            assert canonical(response.table) == reference, workers
        latencies = sorted(
            response.queue_wait + response.wall_time
            for response in responses
        )
        throughput = requests / elapsed
        if baseline is None:
            baseline = throughput
        rows.append(
            {
                "workers": workers,
                "requests": requests,
                "wall_time": elapsed,
                "throughput_rps": throughput,
                "speedup": throughput / baseline,
                "p50_latency": percentile(latencies, 0.50),
                "p95_latency": percentile(latencies, 0.95),
                "p99_latency": percentile(latencies, 0.99),
                "identical_to_reference": True,
            }
        )
    return rows


# ---------------------------------------------------------------- shed sweep
def shed_sweep(scenario, plan, workers, queue, multipliers, latency):
    """Overload behaviour: bursts at fractions/multiples of capacity.

    Capacity here is the number of requests an instant burst can park
    (queue slots + workers); beyond it admission control must shed.
    """
    instance = scenario.instance(0)
    capacity = queue + workers
    rows = []
    for multiplier in multipliers:
        submitted = max(1, round(capacity * multiplier))
        service = QueryService(
            make_source(scenario, instance, latency),
            workers=workers,
            max_queue=queue,
        )
        rejected = 0
        tickets = []
        with service:
            for index in range(submitted):
                priority = PRIORITY_CLASSES[index % len(PRIORITY_CLASSES)]
                try:
                    tickets.append(service.submit(plan, priority=priority))
                except ServiceOverloaded:
                    rejected += 1
            responses = [ticket.result(timeout=300) for ticket in tickets]
            health = service.health()
        served = sum(1 for r in responses if r.complete)
        shed = sum(
            1 for r in responses if isinstance(r.error, ServiceOverloaded)
        )
        other = len(responses) - served - shed
        # The accounting identity: nothing is unserved-and-unreported.
        assert served + shed + other + rejected == submitted, (
            multiplier, served, shed, other, rejected, submitted,
        )
        assert other == 0, f"unexpected failures: {other}"
        rows.append(
            {
                "offered_multiplier": multiplier,
                "capacity": capacity,
                "submitted": submitted,
                "served": served,
                "shed_queued": shed,
                "rejected_at_door": rejected,
                "shed_rate": (shed + rejected) / submitted,
                "preempted": health.preempted,
                "all_accounted": True,
            }
        )
    return rows


def run_benchmark(quick):
    """The full report dict (also asserting soundness throughout)."""
    scenario = example5()
    plan = best_plan(scenario)
    latency = 0.002
    requests = 24 if quick else 64
    workers_list = [1, 4] if quick else [1, 2, 4, 8]
    throughput = worker_sweep(
        scenario, plan, workers_list, requests, latency
    )
    best_speedup = max(row["speedup"] for row in throughput)
    # The concurrency claim the committed report stands behind: worker
    # overlap of (GIL-releasing) access latency beats one worker.
    assert best_speedup > 1.0, best_speedup
    shedding = shed_sweep(
        scenario,
        plan,
        workers=2 if quick else 4,
        queue=4 if quick else 8,
        multipliers=[0.5, 1.0, 2.0],
        latency=latency,
    )
    overload = shedding[-1]
    assert overload["all_accounted"]
    # Shedding is bounded: even at 2x, what was admitted is served.
    assert overload["served"] >= overload["capacity"] * 0.5, overload
    return {
        "benchmark": "bench_service",
        "mode": "quick" if quick else "full",
        "scenario": scenario.name,
        "access_latency": latency,
        "throughput": {"requests": requests, "rows": throughput},
        "best_speedup": best_speedup,
        "shedding": {"rows": shedding},
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="measure concurrent serving throughput and shedding"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small burst (24 requests, 2 worker counts) for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="report destination"
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["throughput"]["rows"]:
        print(
            f"workers {row['workers']}: "
            f"{row['throughput_rps']:.1f} req/s "
            f"({row['speedup']:.2f}x), "
            f"p50 {row['p50_latency'] * 1e3:.1f} ms / "
            f"p95 {row['p95_latency'] * 1e3:.1f} ms / "
            f"p99 {row['p99_latency'] * 1e3:.1f} ms"
        )
    for row in report["shedding"]["rows"]:
        print(
            f"offered {row['offered_multiplier']:.1f}x capacity "
            f"({row['submitted']} submitted): {row['served']} served, "
            f"{row['shed_queued']} shed, {row['rejected_at_door']} "
            f"rejected (shed rate {row['shed_rate']:.0%})"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
