"""PK: proof-based plans vs the paper's P_k brute-force baseline.

Section 3's alternative proof constructs P_k -- k rounds of every
possible access -- and dismisses it as "certainly not feasible".  This
experiment quantifies that: runtime invocations and wall time of the
proof-based Example 2 plan vs brute force at the same completeness, as
the directory grows.  The expected shape: brute force blows up
combinatorially in the known-value count, proof-based stays linear in
the data actually needed.
"""

import pytest

from benchmarks.conftest import record
from repro.data.source import InMemorySource
from repro.planner.brute_force import brute_force_plan
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example2


@pytest.mark.parametrize("size", [4, 8, 12])
def test_proof_based_plan_runtime(benchmark, size):
    scenario = example2(directory_size=size)
    plan = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    ).best_plan
    instance = scenario.instance(0)
    truth = instance.evaluate(scenario.query)

    def run():
        source = InMemorySource(scenario.schema, instance)
        return plan.run(source), source

    output, source = benchmark(run)
    assert set(output.rows) == truth
    record(benchmark, invocations=source.total_invocations)


@pytest.mark.parametrize("size", [4, 8, 12])
def test_brute_force_plan_runtime(benchmark, size):
    scenario = example2(directory_size=size)
    plan = brute_force_plan(scenario.schema, scenario.query, k=3)
    instance = scenario.instance(0)
    truth = instance.evaluate(scenario.query)

    def run():
        source = InMemorySource(scenario.schema, instance)
        return plan.run(source), source

    output, source = benchmark(run)
    assert set(output.rows) == truth
    record(benchmark, invocations=source.total_invocations)
