"""EX1/EX2: planning time for the paper's worked examples.

One row per example: time to find the best plan, with plan shape
(methods used, static cost) recorded.
"""

import pytest

from benchmarks.conftest import record
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example2, example5, webservices


@pytest.mark.parametrize(
    "name,scenario_factory,max_accesses",
    [
        ("example1", example1, 4),
        ("example2", example2, 5),
        ("example5", example5, 4),
        ("webservices", webservices, 5),
    ],
)
def test_plan_example(benchmark, name, scenario_factory, max_accesses):
    scenario = scenario_factory()

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=max_accesses),
        )

    result = benchmark(plan)
    assert result.found
    record(
        benchmark,
        methods=",".join(result.best_plan.methods_used()),
        cost=result.best_cost,
        nodes=result.stats.nodes_created,
        accesses=len(result.best_plan.access_commands),
    )
