"""COST: feedback calibration quality and branch-and-bound pruning.

Two surfaces:

* pytest-benchmark series (``pytest benchmarks/bench_cost.py``):
  planning time on the example5 family with and without
  ``prune_by_bound``, and uncalibrated vs calibrated planning on the
  misleading-fan-out schema;
* a standalone comparison runner (``python benchmarks/bench_cost.py``)
  that writes the machine-readable ``BENCH_cost.json`` (rendered by
  ``report.py --cost-json``) with three sections:

  - ``calibration``: the misleading-fan-out scenario family.  The
    schema declares no cardinalities, so the uncalibrated
    :class:`CardinalityCostFunction` guesses a flat default fan-out for
    every access; the true fan-out of ``mt_R`` varies per scenario.
    Each scenario plans uncalibrated, executes the pick, folds the
    observed ``ExecStats`` into a :class:`CalibrationStore`, re-plans,
    executes the calibrated pick, and compares *measured* execution
    cost (sum over access commands of method weight + per_tuple x
    rows dispatched).  The calibrated pick must never measure worse;
    on the misleading scenarios it is strictly cheaper.
  - ``pruning``: example5(k) planned with and without
    ``SearchOptions.prune_by_bound``, asserting the best plan never
    changes (the admissible-margin differential) and reporting the
    node-expansion reduction.  The smoke floor is >= 1.3x on the
    headline (minimum) reduction.
  - ``admission``: a provably budget-doomed plan submitted to a
    :class:`QueryService` with static ``SizeBounds`` is rejected with
    a typed ``PlanInadmissible`` *before* any source invocation.
"""

import argparse
import json
import sys

import pytest

from benchmarks.conftest import record
from repro.cost.bounds import SizeBounds
from repro.cost.calibration import CalibrationStore
from repro.cost.functions import CardinalityCostFunction
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import PlanInadmissible
from repro.exec.budget import ERROR, ResourceBudget
from repro.exec.stats import ExecStats
from repro.logic.queries import cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example5
from repro.schema.core import SchemaBuilder
from repro.service import QueryService

PER_TUPLE = 0.1
CHAIN_WEIGHT = 1.0

# (name, true fan-out of mt_R, weight of the free S dump).  The schema
# declares no cardinalities, so the uncalibrated estimator guesses the
# same flat fan-out everywhere; truth varies per scenario.  On the
# "misleading" scenarios the uncalibrated estimator sticks with the
# per-binding chain whose true cost explodes with the fan-out, while
# one observed run teaches the store fan_out(mt_R) and flips the pick
# to the flat-weight dump.
CALIBRATION_FAMILY = [
    ("fanout-3", 3, 6.0),
    ("fanout-100-aligned", 100, 6.0),
    ("fanout-300-misleading", 300, 15.0),
    ("fanout-600-misleading", 600, 25.0),
]


def misleading_schema(dump_weight):
    """R(a,b) reachable by constant; S(b,c) per-binding or dumped."""
    return (
        SchemaBuilder("mislead")
        .relation("R", 2, attributes=("a", "b"))
        .relation("S", 2, attributes=("b", "c"))
        .access("mt_R", "R", inputs=[0], cost=CHAIN_WEIGHT)
        .access("mt_S", "S", inputs=[0], cost=CHAIN_WEIGHT)
        .access("mt_S_dump", "S", inputs=[], cost=dump_weight)
        .constant("c0")
        .build()
    )


def misleading_instance(fan_out):
    instance = Instance()
    for i in range(fan_out):
        instance.add("R", ("c0", f"y{i}"))
        instance.add("S", (f"y{i}", f"z{i}"))
    return instance


def misleading_query():
    return cq(["?z"], [("R", ["c0", "?y"]), ("S", ["?y", "?z"])])


def method_weights(dump_weight):
    return {
        "mt_R": CHAIN_WEIGHT,
        "mt_S": CHAIN_WEIGHT,
        "mt_S_dump": dump_weight,
    }


def cost_function(dump_weight, store=None):
    return CardinalityCostFunction(
        relation_cardinality={},
        per_tuple=PER_TUPLE,
        per_method_access=method_weights(dump_weight),
        calibration=store,
    )


def measured_cost(stats, dump_weight):
    """True execution cost: per-access weight + per_tuple x dispatched."""
    weights = method_weights(dump_weight)
    return sum(
        weights[command.method] + PER_TUPLE * command.dispatched
        for command in stats.commands
        if command.kind == "access" and command.method is not None
    )


def _plan_and_run(schema, query, source, cost, dump_weight, prune=False):
    result = find_best_plan(
        schema,
        query,
        SearchOptions(max_accesses=4, cost=cost, prune_by_bound=prune),
    )
    assert result.found
    stats = ExecStats()
    result.best_plan.execute(source, stats=stats)
    return result, stats, measured_cost(stats, dump_weight)


def run_calibration_scenario(name, fan_out, dump_weight):
    schema = misleading_schema(dump_weight)
    query = misleading_query()
    source = InMemorySource(schema, misleading_instance(fan_out))

    uncal, uncal_stats, uncal_measured = _plan_and_run(
        schema, query, source, cost_function(dump_weight), dump_weight
    )
    store = CalibrationStore()
    store.observe_stats(
        uncal_stats, {m.name: m.relation for m in schema.methods}
    )
    cal, _, cal_measured = _plan_and_run(
        schema,
        query,
        source,
        cost_function(dump_weight, store),
        dump_weight,
        prune=True,
    )
    return {
        "scenario": name,
        "fan_out": fan_out,
        "dump_weight": dump_weight,
        "uncalibrated": {
            "methods": list(uncal.best_plan.methods_used()),
            "estimated_cost": uncal.best_cost,
            "measured_cost": uncal_measured,
            "nodes_expanded": uncal.stats.nodes_expanded,
        },
        "calibrated": {
            "methods": list(cal.best_plan.methods_used()),
            "estimated_cost": cal.best_cost,
            "measured_cost": cal_measured,
            "nodes_expanded": cal.stats.nodes_expanded,
            "pruned_by_bound": cal.stats.pruned_by_bound,
            "store_version": store.version,
            "observations": store.observations,
        },
        "flipped": sorted(uncal.best_plan.methods_used())
        != sorted(cal.best_plan.methods_used()),
        "improvement": (
            uncal_measured / cal_measured if cal_measured else float("inf")
        ),
        "never_worse": cal_measured <= uncal_measured + 1e-9,
    }


def run_pruning_point(k):
    scenario = example5(k)
    base = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    )
    pruned = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(max_accesses=5, prune_by_bound=True),
    )
    # The differential the feature hangs off: the admissible completion
    # margin may only shrink the tree, never change the returned plan.
    assert pruned.found == base.found
    assert abs(pruned.best_cost - base.best_cost) < 1e-9
    return {
        "k": k,
        "scenario": scenario.name,
        "base_expanded": base.stats.nodes_expanded,
        "pruned_expanded": pruned.stats.nodes_expanded,
        "pruned_by_bound": pruned.stats.pruned_by_bound,
        "reduction": base.stats.nodes_expanded
        / max(1, pruned.stats.nodes_expanded),
        "best_cost": pruned.best_cost,
        "best_cost_equal": True,
    }


def run_admission_check():
    """A provably doomed plan is turned away before any dispatch."""
    scenario = example1()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    )
    assert result.found
    instance = scenario.instance(0)
    bounds = SizeBounds.from_instance(scenario.schema, instance)
    bound = bounds.result_bound(result.best_plan)
    source = InMemorySource(scenario.schema, instance)
    budget = ResourceBudget(
        max_result_rows=max(0, int(bound) - 1), on_result_overflow=ERROR
    )
    rejected = False
    with QueryService(source, size_bounds=bounds) as service:
        try:
            service.submit(result.best_plan, budget=budget)
        except PlanInadmissible as error:
            rejected = True
            detail = {"bound": error.bound, "ceiling": error.ceiling}
        invocations = source.total_invocations
    assert rejected, "doomed plan was admitted"
    assert invocations == 0, "admission check dispatched to the source"
    return {
        "rejected": rejected,
        "source_invocations": invocations,
        **detail,
    }


# ----------------------------------------------------- pytest-benchmark series
@pytest.mark.parametrize("mode", ["baseline", "bound-pruned"])
def test_bound_pruning_planning(benchmark, mode):
    scenario = example5(6)
    prune = mode == "bound-pruned"

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=5, prune_by_bound=prune),
        )

    result = benchmark(plan)
    assert result.found
    record(
        benchmark,
        mode=mode,
        nodes_expanded=result.stats.nodes_expanded,
        pruned_by_bound=result.stats.pruned_by_bound,
        best_cost=result.best_cost,
    )


@pytest.mark.parametrize("mode", ["uncalibrated", "calibrated"])
def test_calibrated_planning(benchmark, mode):
    name, fan_out, dump_weight = CALIBRATION_FAMILY[2]
    schema = misleading_schema(dump_weight)
    query = misleading_query()
    store = None
    if mode == "calibrated":
        source = InMemorySource(schema, misleading_instance(fan_out))
        warm = find_best_plan(
            schema,
            query,
            SearchOptions(max_accesses=4, cost=cost_function(dump_weight)),
        )
        stats = ExecStats()
        warm.best_plan.execute(source, stats=stats)
        store = CalibrationStore()
        store.observe_stats(
            stats, {m.name: m.relation for m in schema.methods}
        )
    cost = cost_function(dump_weight, store)

    def plan():
        return find_best_plan(
            schema, query, SearchOptions(max_accesses=4, cost=cost)
        )

    result = benchmark(plan)
    assert result.found
    record(
        benchmark,
        mode=mode,
        scenario=name,
        estimated_cost=result.best_cost,
        methods=",".join(result.best_plan.methods_used()),
    )


# ------------------------------------------------------ standalone comparison
def run_comparison(ks):
    calibration = [
        run_calibration_scenario(name, fan_out, dump_weight)
        for name, fan_out, dump_weight in CALIBRATION_FAMILY
    ]
    pruning = [run_pruning_point(k) for k in ks]
    return {
        "benchmark": "bench_cost",
        "mode": "smoke" if max(ks) <= 6 else "full",
        "per_tuple": PER_TUPLE,
        "calibration": calibration,
        "pruning": pruning,
        "node_reduction": min(row["reduction"] for row in pruning),
        "calibrated_never_worse": all(
            row["never_worse"] for row in calibration
        ),
        "differential_ok": all(
            row["best_cost_equal"] for row in pruning
        ),
        "admission": run_admission_check(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="calibrated vs uncalibrated cost model, bound pruning"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="example5 k <= 6 only (CI)"
    )
    parser.add_argument(
        "--output", default="BENCH_cost.json", help="report destination"
    )
    args = parser.parse_args(argv)
    ks = [5, 6] if args.smoke else [5, 6, 7, 8]
    report = run_comparison(ks)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["calibration"]:
        print(
            f"{row['scenario']}: measured "
            f"{row['uncalibrated']['measured_cost']:.2f} -> "
            f"{row['calibrated']['measured_cost']:.2f} "
            f"({row['improvement']:.2f}x, "
            f"{'flipped' if row['flipped'] else 'same plan'})"
        )
    for row in report["pruning"]:
        print(
            f"{row['scenario']}: {row['base_expanded']} -> "
            f"{row['pruned_expanded']} nodes expanded "
            f"({row['reduction']:.2f}x, "
            f"{row['pruned_by_bound']} bound-pruned), "
            f"best cost unchanged"
        )
    admission = report["admission"]
    print(
        f"admission: doomed plan rejected with "
        f"{admission['source_invocations']} source invocations "
        f"(bound {admission['bound']:.0f} > ceiling {admission['ceiling']})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
