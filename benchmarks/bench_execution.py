"""EXEC: runtime behaviour of competing complete plans.

The paper's introduction argues plan choice matters because the plans
are *not* algebraic variants of each other: with redundant sources, a
plan probing after one source pays more probes; a plan intersecting all
sources pays more bulk accesses.  Series: runtime invocations and
charged cost of both strategies as source noise (selectivity) varies.
"""

import pytest

from benchmarks.conftest import record
from repro.data.source import InMemorySource
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5
from repro.schema.accessible import AccessibleSchema, Variant


def build_plans(scenario):
    """(cheapest-static plan, all-sources plan) for the scenario."""
    best = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(max_accesses=4),
    )
    exhaustive = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    padded_node = next(
        n
        for n in exhaustive.tree
        if n.successful and len(n.exposures) == 4
    )
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    padded = plan_from_proof(
        acc, ChaseProof(scenario.query, padded_node.exposures)
    )
    return best.best_plan, padded


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_best_static_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    best_plan, _ = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        best_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_intersecting_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    _, padded_plan = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        padded_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


def test_crossover_shape():
    """Non-timed shape check: with heavy noise the intersecting plan
    makes fewer probe invocations than the single-source plan; with no
    noise the single-source plan is at least as good overall."""
    noisy = example5(
        sources=3, professors=20, noise_per_source=200, match_rate=0.3
    )
    best_plan, padded_plan = build_plans(noisy)
    instance = noisy.instance(0)
    src_best = InMemorySource(noisy.schema, instance)
    src_padded = InMemorySource(noisy.schema, instance)
    out_a = best_plan.run(src_best)
    out_b = padded_plan.run(src_padded)
    assert set(out_a.rows) == set(out_b.rows)
    assert src_padded.invocations_of("mt_prof") < src_best.invocations_of(
        "mt_prof"
    )
