"""EXEC: runtime behaviour of competing complete plans and dispatchers.

Two surfaces:

* pytest-benchmark series (``pytest benchmarks/bench_execution.py``):
  the original best-static vs intersecting plan comparison as source
  noise varies, plus a dispatcher sweep (naive scan-per-access vs
  indexed vs indexed+cached) on the same plans;
* a standalone comparison runner
  (``python benchmarks/bench_execution.py``) that serves a repeated
  workload -- several rounds of the best and the intersecting plan over
  one shared source -- under three dispatchers and writes the
  machine-readable ``BENCH_exec.json`` (rendered by ``report.py
  --exec-json``):

  - ``naive``: unindexed source, per-command dispatch, no cache (the
    pre-runtime reference),
  - ``runtime``: per-method hash index + shared LRU ``AccessCache``
    with free hits (dispatch that never reaches the source is neither
    logged nor charged),
  - ``runtime_charged``: same, but ``charge_hits=True`` -- every hit is
    re-logged at full price, so the charged-cost series stays
    comparable with the naive books.

  Identical result tables are asserted across all three modes for every
  run of the workload, and ``runtime_charged`` is asserted to reproduce
  the naive invocation and charged-cost series exactly.
"""

import argparse
import json
import sys
from time import perf_counter

import pytest

from benchmarks.conftest import record
from repro.data.source import InMemorySource
from repro.exec import AccessCache, BatchExecutor
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5, redundant_sources
from repro.schema.accessible import AccessibleSchema, Variant


def build_plans(scenario, budget=4):
    """(cheapest-static plan, all-sources plan) for the scenario."""
    best = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(max_accesses=budget),
    )
    exhaustive = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=budget,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    padded_node = next(
        n
        for n in exhaustive.tree
        if n.successful and len(n.exposures) == budget
    )
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    padded = plan_from_proof(
        acc, ChaseProof(scenario.query, padded_node.exposures)
    )
    return best.best_plan, padded


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_best_static_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    best_plan, _ = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        best_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_intersecting_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    _, padded_plan = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        padded_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


@pytest.mark.parametrize("dispatch", ["naive", "indexed", "indexed+cached"])
def test_dispatch_modes(benchmark, dispatch):
    """One shared-source round of both plans under each dispatcher."""
    scenario = example5(
        sources=3, professors=20, noise_per_source=80, match_rate=0.3
    )
    plans = build_plans(scenario)
    instance = scenario.instance(0)
    indexed = dispatch != "naive"
    with_cache = dispatch == "indexed+cached"

    def run():
        source = InMemorySource(scenario.schema, instance, indexed=indexed)
        cache = AccessCache() if with_cache else None
        for plan in plans:
            plan.execute(source, cache=cache)
        return source

    source = benchmark(run)
    record(
        benchmark,
        dispatch=dispatch,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


def test_crossover_shape():
    """Non-timed shape check: with heavy noise the intersecting plan
    makes fewer probe invocations than the single-source plan; with no
    noise the single-source plan is at least as good overall."""
    noisy = example5(
        sources=3, professors=20, noise_per_source=200, match_rate=0.3
    )
    best_plan, padded_plan = build_plans(noisy)
    instance = noisy.instance(0)
    src_best = InMemorySource(noisy.schema, instance)
    src_padded = InMemorySource(noisy.schema, instance)
    out_a = best_plan.run(src_best)
    out_b = padded_plan.run(src_padded)
    assert set(out_a.rows) == set(out_b.rows)
    assert src_padded.invocations_of("mt_prof") < src_best.invocations_of(
        "mt_prof"
    )


# ------------------------------------------------------ standalone comparison
def _serve_naive(scenario, plans, rounds):
    """The reference dispatcher: unindexed scans, no cache."""
    source = InMemorySource(scenario.schema, scenario.instance(0), indexed=False)
    outputs = []
    started = perf_counter()
    for _ in range(rounds):
        for plan in plans:
            outputs.append(plan.run(source))
    elapsed = perf_counter() - started
    return {
        "outputs": outputs,
        "wall_time": elapsed,
        "invocations": source.total_invocations,
        "charged_cost": source.charged_cost(),
    }


def _serve_runtime(scenario, plans, rounds, charge_hits):
    """The exec runtime: indexed source + shared LRU access cache."""
    source = InMemorySource(scenario.schema, scenario.instance(0), indexed=True)
    executor = BatchExecutor(
        source, cache=AccessCache(charge_hits=charge_hits)
    )
    outputs = []
    started = perf_counter()
    for _ in range(rounds):
        for plan in plans:
            outputs.append(executor.run(plan))
    elapsed = perf_counter() - started
    stats = executor.stats
    return {
        "outputs": outputs,
        "wall_time": elapsed,
        "invocations": source.total_invocations,
        "charged_cost": source.charged_cost(),
        "cache": executor.cache.as_dict(),
        "dispatched": stats.accesses_dispatched,
        "deduped": stats.accesses_deduped,
        "cache_hits": stats.cache_hits,
        "peak_resident_rows": stats.peak_resident_rows,
    }


def _best_of(measure, repeats):
    """Re-run a measurement, keeping the fastest pass's full entry."""
    best = None
    for _ in range(repeats):
        entry = measure()
        if best is None or entry["wall_time"] < best["wall_time"]:
            best = entry
    return best


def run_comparison(ks, rounds=5, repeats=3, noise=80):
    """Serve the workload under all dispatchers; return the report."""
    rows = []
    for k in ks:
        scenario = redundant_sources(
            k, professors=25, noise_per_source=noise, match_rate=0.3
        )
        plans = build_plans(scenario, budget=k + 1)
        naive = _best_of(lambda: _serve_naive(scenario, plans, rounds), repeats)
        runtime = _best_of(
            lambda: _serve_runtime(scenario, plans, rounds, False), repeats
        )
        charged = _serve_runtime(scenario, plans, rounds, True)
        # Identical result tables across all dispatchers, run by run.
        for a, b, c in zip(
            naive["outputs"], runtime["outputs"], charged["outputs"]
        ):
            assert a.rows == b.rows == c.rows, k
        # charge_hits restores the naive accounting exactly.
        assert charged["invocations"] == naive["invocations"], k
        assert abs(charged["charged_cost"] - naive["charged_cost"]) < 1e-9, k
        for entry in (naive, runtime, charged):
            del entry["outputs"]
        reduction = (
            naive["invocations"] / runtime["invocations"]
            if runtime["invocations"]
            else float("inf")
        )
        speedup = (
            naive["wall_time"] / runtime["wall_time"]
            if runtime["wall_time"]
            else float("inf")
        )
        rows.append(
            {
                "k": k,
                "scenario": scenario.name,
                "rounds": rounds,
                "plans": len(plans),
                "naive": naive,
                "runtime": runtime,
                "runtime_charged": charged,
                "invocation_reduction": reduction,
                "speedup": speedup,
            }
        )
    return {
        "benchmark": "bench_exec",
        "mode": "smoke" if max(ks) <= 3 else "full",
        "ks": list(ks),
        "rounds": rounds,
        "rows": rows,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare naive vs indexed+cached plan execution"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="k <= 3 only (CI)"
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="how many times each plan is served per pass",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point"
    )
    parser.add_argument(
        "--output", default="BENCH_exec.json", help="report destination"
    )
    args = parser.parse_args(argv)
    ks = [2, 3] if args.smoke else [3, 4, 5]
    report = run_comparison(ks, rounds=args.rounds, repeats=args.repeats)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        naive, runtime = row["naive"], row["runtime"]
        print(
            f"{row['scenario']}: "
            f"{row['invocation_reduction']:.1f}x fewer source invocations "
            f"({naive['invocations']} -> {runtime['invocations']}), "
            f"{row['speedup']:.2f}x faster "
            f"({naive['wall_time'] * 1e3:.1f} -> "
            f"{runtime['wall_time'] * 1e3:.1f} ms), "
            f"{runtime['cache_hits']} cache hits, "
            f"peak resident rows {runtime['peak_resident_rows']}"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
