"""EXEC: runtime behaviour of competing complete plans and dispatchers.

Two surfaces:

* pytest-benchmark series (``pytest benchmarks/bench_execution.py``):
  the original best-static vs intersecting plan comparison as source
  noise varies, plus a dispatcher sweep (naive scan-per-access vs
  indexed vs indexed+cached) on the same plans;
* a standalone comparison runner
  (``python benchmarks/bench_execution.py``) that serves a repeated
  workload -- several rounds of the best and the intersecting plan over
  one shared source -- under three dispatchers and writes the
  machine-readable ``BENCH_exec.json`` (rendered by ``report.py
  --exec-json``):

  - ``naive``: unindexed source, per-command dispatch, no cache (the
    pre-runtime reference),
  - ``runtime``: per-method hash index + shared LRU ``AccessCache``
    with free hits (dispatch that never reaches the source is neither
    logged nor charged),
  - ``runtime_charged``: same, but ``charge_hits=True`` -- every hit is
    re-logged at full price, so the charged-cost series stays
    comparable with the naive books.

  Identical result tables are asserted across all three modes for every
  run of the workload, and ``runtime_charged`` is asserted to reproduce
  the naive invocation and charged-cost series exactly.
"""

import argparse
import json
import sys
from time import perf_counter

import pytest

from benchmarks.conftest import record
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache, BatchExecutor
from repro.logic.terms import Constant
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.commands import AccessCommand, MiddlewareCommand, identity_output_map
from repro.plans.expressions import (
    EqConst,
    Join,
    NeqConst,
    Project,
    Scan,
    Select,
    Singleton,
)
from repro.plans.plan import Plan
from repro.scenarios import example5, redundant_sources
from repro.schema.accessible import AccessibleSchema, Variant
from repro.schema.core import SchemaBuilder


def build_plans(scenario, budget=4):
    """(cheapest-static plan, all-sources plan) for the scenario."""
    best = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(max_accesses=budget),
    )
    exhaustive = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=budget,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    padded_node = next(
        n
        for n in exhaustive.tree
        if n.successful and len(n.exposures) == budget
    )
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    padded = plan_from_proof(
        acc, ChaseProof(scenario.query, padded_node.exposures)
    )
    return best.best_plan, padded


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_best_static_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    best_plan, _ = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        best_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


@pytest.mark.parametrize("noise", [0, 40, 160])
def test_execute_intersecting_plan(benchmark, noise):
    scenario = example5(
        sources=3, professors=20, noise_per_source=noise, match_rate=0.3
    )
    _, padded_plan = build_plans(scenario)
    instance = scenario.instance(0)

    def run():
        source = InMemorySource(scenario.schema, instance)
        padded_plan.run(source)
        return source

    source = benchmark(run)
    record(
        benchmark,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


@pytest.mark.parametrize("dispatch", ["naive", "indexed", "indexed+cached"])
def test_dispatch_modes(benchmark, dispatch):
    """One shared-source round of both plans under each dispatcher."""
    scenario = example5(
        sources=3, professors=20, noise_per_source=80, match_rate=0.3
    )
    plans = build_plans(scenario)
    instance = scenario.instance(0)
    indexed = dispatch != "naive"
    with_cache = dispatch == "indexed+cached"

    def run():
        source = InMemorySource(scenario.schema, instance, indexed=indexed)
        cache = AccessCache() if with_cache else None
        for plan in plans:
            plan.execute(source, cache=cache)
        return source

    source = benchmark(run)
    record(
        benchmark,
        dispatch=dispatch,
        invocations=source.total_invocations,
        runtime_cost=source.charged_cost(),
    )


def test_crossover_shape():
    """Non-timed shape check: with heavy noise the intersecting plan
    makes fewer probe invocations than the single-source plan; with no
    noise the single-source plan is at least as good overall."""
    noisy = example5(
        sources=3, professors=20, noise_per_source=200, match_rate=0.3
    )
    best_plan, padded_plan = build_plans(noisy)
    instance = noisy.instance(0)
    src_best = InMemorySource(noisy.schema, instance)
    src_padded = InMemorySource(noisy.schema, instance)
    out_a = best_plan.run(src_best)
    out_b = padded_plan.run(src_padded)
    assert set(out_a.rows) == set(out_b.rows)
    assert src_padded.invocations_of("mt_prof") < src_best.invocations_of(
        "mt_prof"
    )


# ------------------------------------------------------ standalone comparison
def _serve_naive(scenario, plans, rounds):
    """The reference dispatcher: unindexed scans, no cache."""
    source = InMemorySource(scenario.schema, scenario.instance(0), indexed=False)
    outputs = []
    started = perf_counter()
    for _ in range(rounds):
        for plan in plans:
            outputs.append(plan.run(source))
    elapsed = perf_counter() - started
    return {
        "outputs": outputs,
        "wall_time": elapsed,
        "invocations": source.total_invocations,
        "charged_cost": source.charged_cost(),
    }


def _serve_runtime(scenario, plans, rounds, charge_hits):
    """The exec runtime: indexed source + shared LRU access cache."""
    source = InMemorySource(scenario.schema, scenario.instance(0), indexed=True)
    executor = BatchExecutor(
        source, cache=AccessCache(charge_hits=charge_hits)
    )
    outputs = []
    started = perf_counter()
    for _ in range(rounds):
        for plan in plans:
            outputs.append(executor.run(plan))
    elapsed = perf_counter() - started
    stats = executor.stats
    return {
        "outputs": outputs,
        "wall_time": elapsed,
        "invocations": source.total_invocations,
        "charged_cost": source.charged_cost(),
        "cache": executor.cache.as_dict(),
        "dispatched": stats.accesses_dispatched,
        "deduped": stats.accesses_deduped,
        "cache_hits": stats.cache_hits,
        "peak_resident_rows": stats.peak_resident_rows,
    }


def _best_of(measure, repeats):
    """Re-run a measurement, keeping the fastest pass's full entry."""
    best = None
    for _ in range(repeats):
        entry = measure()
        if best is None or entry["wall_time"] < best["wall_time"]:
            best = entry
    return best


def run_comparison(ks, rounds=5, repeats=3, noise=80):
    """Serve the workload under all dispatchers; return the report."""
    rows = []
    for k in ks:
        scenario = redundant_sources(
            k, professors=25, noise_per_source=noise, match_rate=0.3
        )
        plans = build_plans(scenario, budget=k + 1)
        naive = _best_of(lambda: _serve_naive(scenario, plans, rounds), repeats)
        runtime = _best_of(
            lambda: _serve_runtime(scenario, plans, rounds, False), repeats
        )
        charged = _serve_runtime(scenario, plans, rounds, True)
        # Identical result tables across all dispatchers, run by run.
        for a, b, c in zip(
            naive["outputs"], runtime["outputs"], charged["outputs"]
        ):
            assert a.rows == b.rows == c.rows, k
        # charge_hits restores the naive accounting exactly.
        assert charged["invocations"] == naive["invocations"], k
        assert abs(charged["charged_cost"] - naive["charged_cost"]) < 1e-9, k
        for entry in (naive, runtime, charged):
            del entry["outputs"]
        reduction = (
            naive["invocations"] / runtime["invocations"]
            if runtime["invocations"]
            else float("inf")
        )
        speedup = (
            naive["wall_time"] / runtime["wall_time"]
            if runtime["wall_time"]
            else float("inf")
        )
        rows.append(
            {
                "k": k,
                "scenario": scenario.name,
                "rounds": rounds,
                "plans": len(plans),
                "naive": naive,
                "runtime": runtime,
                "runtime_charged": charged,
                "invocation_reduction": reduction,
                "speedup": speedup,
            }
        )
    return {
        "benchmark": "bench_exec",
        "mode": "smoke" if max(ks) <= 3 else "full",
        "ks": list(ks),
        "rounds": rounds,
        "rows": rows,
    }


# --------------------------------------------- executor (backend) comparison
def row_heavy_workload(n, keys=None):
    """A join-heavy (source, plan) pair sized to ``n`` rows per relation.

    Full scans of R(a, b) and S(b, c) feed a selected, projected join on
    ``b``.  With ``keys = n / 100`` every join key matches ``100 * n``
    row pairs in total, so the middleware command does two orders of
    magnitude more row-pair work than the scans -- the regime where
    per-pair Python overhead dominates the interpreter and the columnar
    backend's vectorized join/select/project wins.  The fused selection
    keeps the *answer* small (one S-row's worth of matches), so result
    materialization cost does not dilute the comparison.
    """
    keys = keys if keys is not None else max(1, n // 100)
    schema = (
        SchemaBuilder("rowheavy")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )
    instance = Instance(
        {
            "R": [(f"a{i}", f"b{i % keys}") for i in range(n)],
            "S": [(f"b{i % keys}", f"c{i}") for i in range(n)],
        }
    )
    plan = Plan(
        (
            AccessCommand(
                "T_R", "mt_R", Singleton(), (), identity_output_map(("a", "b"))
            ),
            AccessCommand(
                "T_S", "mt_S", Singleton(), (), identity_output_map(("b", "c"))
            ),
            MiddlewareCommand(
                "OUT",
                Project(
                    Select(
                        Join(Scan("T_R"), Scan("T_S")),
                        (
                            EqConst("c", Constant("c1")),
                            NeqConst("a", Constant("a0")),
                        ),
                    ),
                    ("a", "c"),
                ),
            ),
        ),
        "OUT",
        name=f"rowheavy-{n}",
    )
    return schema, instance, plan


def _serve_executor(schema, instance, plan, rounds, executor):
    """Time ``rounds`` runs of the plan through one backend."""
    source = InMemorySource(schema, instance, indexed=True)
    outputs = []
    started = perf_counter()
    for _ in range(rounds):
        outputs.append(plan.execute(source, executor=executor))
    elapsed = perf_counter() - started
    return {"outputs": outputs, "wall_time": elapsed}


def run_executor_comparison(sizes, rounds=3, repeats=3):
    """Interpreter vs columnar on row-heavy workloads; returns rows.

    Every columnar answer is asserted identical to the interpreter's,
    and one differential-mode run per size re-checks the agreement
    inside the runtime itself.
    """
    rows = []
    for n in sizes:
        schema, instance, plan = row_heavy_workload(n)
        interp = _best_of(
            lambda: _serve_executor(schema, instance, plan, rounds, "interpreter"),
            repeats,
        )
        columnar = _best_of(
            lambda: _serve_executor(schema, instance, plan, rounds, "columnar"),
            repeats,
        )
        for a, b in zip(interp["outputs"], columnar["outputs"]):
            assert a.rows == b.rows, n
        answer_rows = len(interp["outputs"][0].rows)
        # One differential run: the runtime itself asserts agreement.
        differential = plan.execute(
            InMemorySource(schema, instance, indexed=True),
            executor="differential",
        )
        assert len(differential.rows) == answer_rows, n
        for entry in (interp, columnar):
            del entry["outputs"]
        speedup = (
            interp["wall_time"] / columnar["wall_time"]
            if columnar["wall_time"]
            else float("inf")
        )
        rows.append(
            {
                "rows_per_relation": n,
                "answer_rows": answer_rows,
                "rounds": rounds,
                "interpreter": interp,
                "columnar": columnar,
                "executor_speedup": speedup,
            }
        )
    return rows


def test_columnar_row_heavy_agrees_and_wins():
    """Non-timed guard: identical answers, and columnar is faster on a
    row-heavy workload even at a modest size."""
    schema, instance, plan = row_heavy_workload(1500)
    source = InMemorySource(schema, instance)
    interp = plan.execute(source)
    columnar = plan.execute(source, executor="columnar")
    assert columnar.rows == interp.rows
    rows = run_executor_comparison([1500], rounds=1, repeats=2)
    assert rows[0]["executor_speedup"] > 1.0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare naive vs indexed+cached plan execution"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="k <= 3 only (CI)"
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="how many times each plan is served per pass",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point"
    )
    parser.add_argument(
        "--output", default="BENCH_exec.json", help="report destination"
    )
    args = parser.parse_args(argv)
    ks = [2, 3] if args.smoke else [3, 4, 5]
    sizes = [2000] if args.smoke else [2000, 8000, 20000]
    report = run_comparison(ks, rounds=args.rounds, repeats=args.repeats)
    report["columnar_rows"] = run_executor_comparison(
        sizes, rounds=max(1, args.rounds // 2), repeats=args.repeats
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        naive, runtime = row["naive"], row["runtime"]
        print(
            f"{row['scenario']}: "
            f"{row['invocation_reduction']:.1f}x fewer source invocations "
            f"({naive['invocations']} -> {runtime['invocations']}), "
            f"{row['speedup']:.2f}x faster "
            f"({naive['wall_time'] * 1e3:.1f} -> "
            f"{runtime['wall_time'] * 1e3:.1f} ms), "
            f"{runtime['cache_hits']} cache hits, "
            f"peak resident rows {runtime['peak_resident_rows']}"
        )
    for row in report["columnar_rows"]:
        print(
            f"rowheavy n={row['rows_per_relation']}: "
            f"columnar {row['executor_speedup']:.1f}x faster than the "
            f"interpreter ({row['interpreter']['wall_time'] * 1e3:.1f} -> "
            f"{row['columnar']['wall_time'] * 1e3:.1f} ms, "
            f"{row['answer_rows']} answer rows, differential verified)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
