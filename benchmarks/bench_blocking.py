"""BLOCK: guarded-bag blocking termination on cyclic Guarded TGDs.

Without blocking these chases diverge (we show the budget being eaten);
with blocking they terminate in a handful of firings.  Series: time and
firing counts per cyclic family.
"""

import pytest

from benchmarks.conftest import record
from repro.chase.blocking import BlockingPolicy
from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, NullFactory

FAMILIES = {
    "self-loop": ["R(x, y) -> R(y, z)"],
    "two-cycle": ["P(x) -> E(x, y)", "E(x, y) -> P(y)"],
    "three-cycle": [
        "A(x) -> B(x, y)",
        "B(x, y) -> C(y, z)",
        "C(x, y) -> A(y)",
    ],
}

SEEDS = {
    "self-loop": [Atom("R", (Constant("a"), Constant("b")))],
    "two-cycle": [Atom("P", (Constant("a"),))],
    "three-cycle": [Atom("A", (Constant("a"),))],
}


@pytest.mark.parametrize("family", list(FAMILIES))
def test_blocking_terminates(benchmark, family):
    rules = [parse_tgd(text) for text in FAMILIES[family]]

    def chase_with_blocking():
        config = ChaseConfiguration(SEEDS[family])
        policy = ChasePolicy(
            max_firings=50_000, blocking=BlockingPolicy(enabled=True)
        )
        return chase_to_fixpoint(
            config, rules, NullFactory("t"), policy
        ), config

    result, config = benchmark(chase_with_blocking)
    assert result.reached_fixpoint
    assert result.firings < 50  # finite, small model
    record(
        benchmark,
        firings=result.firings,
        blocked=result.blocked,
        facts=len(config),
    )


@pytest.mark.parametrize("family", list(FAMILIES))
def test_no_blocking_diverges(benchmark, family):
    """Control: the same chase without blocking burns its whole budget."""
    rules = [parse_tgd(text) for text in FAMILIES[family]]
    budget = 300

    def chase_unblocked():
        config = ChaseConfiguration(SEEDS[family])
        policy = ChasePolicy(max_firings=budget)
        return chase_to_fixpoint(config, rules, NullFactory("t"), policy)

    result = benchmark(chase_unblocked)
    assert not result.reached_fixpoint
    assert result.firings == budget
    record(benchmark, firings=result.firings)
