"""T6: view-rewriting decision time vs number of views.

Theorem 6 says the accessible-schema chase terminates polynomially for
view constraints, so both the positive decision (rewriting found) and
the negative one (certified unrewritable) are benchmarked as the view
stack grows.
"""

import pytest

from benchmarks.conftest import record
from repro.planner.views import rewrite_over_views
from repro.scenarios import view_stack_scenario


@pytest.mark.parametrize("views", [1, 2, 4, 6, 8])
def test_rewriting_positive(benchmark, views):
    scenario = view_stack_scenario(views=views, include_closing_view=True)

    def rewrite():
        return rewrite_over_views(scenario.schema, scenario.query)

    result = benchmark(rewrite)
    assert result.rewritable
    record(
        benchmark,
        view_atoms=len(result.rewriting.atoms),
        nodes=result.search.stats.nodes_created,
    )


@pytest.mark.parametrize("views", [1, 2, 4, 6])
def test_rewriting_negative(benchmark, views):
    scenario = view_stack_scenario(views=views, include_closing_view=False)

    def rewrite():
        return rewrite_over_views(scenario.schema, scenario.query)

    result = benchmark(rewrite)
    assert not result.rewritable
    record(benchmark, nodes=result.search.stats.nodes_created)
