"""ADAPTERS: real backends vs. the in-memory oracle, byte for byte.

A standalone runner (``python benchmarks/bench_adapters.py``) that
writes ``BENCH_adapters.json`` (rendered by ``report.py
--adapters-json``):

* **differential matrix** -- every scenario in the library is planned
  once, then the plan is executed against the in-memory oracle and
  against both real backends (:class:`~repro.sources.SQLiteSource`,
  :class:`~repro.sources.HTTPSource` over the paginated stub
  transport) under several conditions: clean, under a seeded transient
  fault schedule (retries on), with the SQLite connection severed
  every third statement (mid-plan reconnects), and after a backend
  mutation (epoch bump -> snapshot reload).  The committed claim,
  asserted row by row: **byte-identical sorted answers in every
  cell**.
* **rate-limit compliance** -- the same request sequence against a
  token-bucket-policed web service, with and without client-side
  pacing.  Unpaced, the server's ``over_budget`` counter shows the
  429 storm the client then rides out via ``Retry-After``; paced at
  the advertised budget, the server sees **zero** over-budget
  requests -- the compliance number ``report.py`` renders.
* **throughput** -- sequential plan executions per backend, so the
  adapter overhead (SQL round trips, HTTP pagination) is visible next
  to the oracle's in-process dictionary lookups.
"""

import argparse
import json
import time

from repro.data.source import InMemorySource
from repro.exec.cache import AccessCache
from repro.exec.resilience import (
    BreakerRegistry,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    path_views,
    referential_chain,
    view_stack_scenario,
    webservices,
)
from repro.sources import (
    HTTPSource,
    PacedSource,
    SQLiteSource,
    StubTransport,
)

_NO_SLEEP = lambda _seconds: None  # noqa: E731

#: (name, factory, max_accesses) -- the library both modes draw from.
_LIBRARY = [
    ("example1", example1, 6),
    ("example2", example2, 6),
    ("chain3", lambda: referential_chain(3), 6),
    ("views", view_stack_scenario, 6),
    ("webservices", webservices, 6),
    ("pathviews3", lambda: path_views(3), 6),
]

_QUICK_LIBRARY = ["example1", "chain3", "pathviews3"]


def canonical(table):
    """The byte-comparable form of an answer table."""
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def _retrying_dispatcher(seed):
    """A per-key retrier that outlasts burst=2 schedules, no real sleep.

    The breaker threshold is raised well above the fault density: this
    benchmark measures *identity under recovery*, and a breaker
    opening mid-matrix (a different protection, by design) would only
    mask the property under test.
    """
    return ResilientDispatcher(
        retry=RetryPolicy(
            max_attempts=6, base_delay=0.0001, max_delay=0.0002, seed=seed
        ),
        breakers=BreakerRegistry(failure_threshold=1000),
        sleep=_NO_SLEEP,
    )


def _fault_policy(seed):
    return FaultPolicy(
        seed=seed,
        unavailable_rate=0.2,
        timeout_rate=0.1,
        rate_limit_rate=0.1,
        burst=2,
    )


def _backend(kind, schema, instance, condition, seed):
    """One (backend, condition) cell: the source plus its counter probe."""
    if kind == "sqlite":
        # drop_every=2 severs before every second statement -- low
        # enough that even the 2-statement batched plans reconnect
        # mid-flight.
        drop = 2 if condition == "reconnect" else None
        backend = SQLiteSource(
            schema, instance, drop_every=drop, sleep=_NO_SLEEP
        )
        source = backend
        if condition == "faults":
            source = FaultInjectingSource(backend, _fault_policy(seed))

        def counters():
            return {
                "accesses": backend.total_invocations,
                "reconnects": backend.reconnects,
                "batched_calls": backend.batched_calls,
                "statements": backend._statements,
            }

        return source, counters
    policy = _fault_policy(seed) if condition == "faults" else None
    transport = StubTransport(
        schema, instance, page_size=7, fault_policy=policy
    )
    backend = HTTPSource(transport, sleep=_NO_SLEEP)
    if condition == "reconnect":
        # The HTTP analogue of connection loss is snapshot movement;
        # covered by the "mutated" condition -- serve clean here.
        pass

    def counters():
        return {
            "accesses": backend.total_invocations,
            "batched_calls": backend.batched_calls,
            "retry_after_waits": backend.retry_after_waits,
            "snapshot_restarts": backend.snapshot_restarts,
            **transport.counters(),
        }

    return backend, counters


def differential_matrix(quick, seed=0):
    """Every (scenario, backend, condition) cell, all asserted identical."""
    names = set(_QUICK_LIBRARY) if quick else {n for n, _, _ in _LIBRARY}
    conditions = ["clean", "faults", "reconnect", "mutated"]
    rows = []
    for name, factory, max_accesses in _LIBRARY:
        if name not in names:
            continue
        scenario = factory()
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=max_accesses),
        )
        assert result.found, f"{name}: the library must be plannable"
        plan = result.best_plan
        for backend_kind in ("sqlite", "http"):
            for condition in conditions:
                instance = scenario.instance(seed)
                oracle = canonical(
                    plan.execute(InMemorySource(scenario.schema, instance))
                )
                source, counters = _backend(
                    backend_kind, scenario.schema, instance, condition, seed
                )
                # Under faults, execute through an epoch-keyed
                # AccessCache: the cache forces per-key dispatch (the
                # batch fast path only engages cache-less), so the
                # retry layer rides out each key's burst independently
                # instead of re-running whole batches -- and the
                # cache-under-faults interplay gets differential
                # coverage for free.
                if condition == "faults":
                    resilience = _retrying_dispatcher(seed)
                    cache = AccessCache()
                else:
                    resilience = None
                    cache = None
                answer = canonical(
                    plan.execute(source, cache=cache, resilience=resilience)
                )
                assert answer == oracle, (name, backend_kind, condition)
                extra = {}
                if condition == "mutated":
                    # Bump the backend snapshot and re-execute: the
                    # epoch moves, tables reload, and the answer must
                    # match a *fresh* oracle over the mutated data --
                    # never a mix of snapshots.
                    relation = next(
                        r
                        for r in scenario.schema.relations
                        if instance.tuples(r.name)
                    )
                    donor = next(iter(instance.tuples(relation.name)))
                    instance.add(
                        relation.name,
                        tuple(f"mut_{c.value}" for c in donor),
                    )
                    oracle2 = canonical(
                        plan.execute(
                            InMemorySource(scenario.schema, instance)
                        )
                    )
                    answer2 = canonical(plan.execute(source))
                    assert answer2 == oracle2, (name, backend_kind)
                    extra["mutated_identical"] = True
                if condition == "reconnect" and backend_kind == "sqlite":
                    snapshot = counters()
                    # A single-statement plan (e.g. one free view
                    # access) has no mid-plan boundary to sever at;
                    # everything longer must actually reconnect.
                    if snapshot["statements"] >= 2:
                        assert snapshot["reconnects"] > 0, (
                            "the reconnect condition must actually reconnect"
                        )
                rows.append(
                    {
                        "scenario": name,
                        "backend": backend_kind,
                        "condition": condition,
                        "answer_rows": len(answer[1]),
                        "identical": True,
                        "accesses": source.total_invocations,
                        "counters": counters(),
                        **extra,
                    }
                )
    return rows


def rate_limit_compliance(requests=200, seed=0):
    """Paced vs. unpaced clients against a policed stub, both sound.

    Raw ``mt_prof`` lookups (one HTTP request each, so client tokens
    and server tokens correspond 1:1) against a server that refills 500
    tokens/s from a burst of 4.  The unpaced client's in-process demand
    is orders of magnitude above that, so it provably trips policing
    (and then rides out every 429 via ``Retry-After``, still returning
    oracle-identical answers); the paced client sits just under the
    advertised budget and the server sees **zero** over-budget
    requests.
    """
    scenario = example1()
    keys = [f"e{i}" for i in range(20)]
    rows = []
    for paced in (False, True):
        instance = scenario.instance(seed)
        oracle = InMemorySource(scenario.schema, instance)
        transport = StubTransport(
            scenario.schema, instance, rate_limit=500.0, burst=4.0
        )
        client = HTTPSource(transport, max_retry_after_waits=256)
        source = (
            PacedSource(client, rate=450.0, capacity=4.0, max_wait=2.0)
            if paced
            else client
        )
        started = time.perf_counter()
        for i in range(requests):
            key = keys[i % len(keys)]
            assert source.access("mt_prof", (key,)) == oracle.access(
                "mt_prof", (key,)
            )
        elapsed = time.perf_counter() - started
        counters = transport.counters()
        if paced:
            assert counters["over_budget"] == 0, counters
        else:
            assert counters["over_budget"] > 0, counters
        rows.append(
            {
                "paced": paced,
                "requests": requests,
                "server_requests": counters["requests"],
                "over_budget": counters["over_budget"],
                "retry_after_waits": client.retry_after_waits,
                "elapsed": elapsed,
                "throughput_rps": requests / elapsed if elapsed else 0.0,
                "identical_to_oracle": True,
            }
        )
    return rows


def throughput(requests=32, seed=0):
    """Sequential plan executions per backend: adapter overhead, visible."""
    scenario = example1()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=6)
    )
    assert result.found
    plan = result.best_plan
    rows = []
    for kind in ("memory", "sqlite", "http"):
        instance = scenario.instance(seed)
        if kind == "sqlite":
            source = SQLiteSource(scenario.schema, instance)
        elif kind == "http":
            source = HTTPSource(
                StubTransport(scenario.schema, instance, page_size=25)
            )
        else:
            source = InMemorySource(scenario.schema, instance)
        reference = canonical(
            plan.execute(InMemorySource(scenario.schema, instance))
        )
        started = time.perf_counter()
        for _ in range(requests):
            assert canonical(plan.execute(source)) == reference
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "backend": kind,
                "requests": requests,
                "elapsed": elapsed,
                "throughput_rps": requests / elapsed if elapsed else 0.0,
            }
        )
    return rows


def run_benchmark(quick):
    """The full report dict (also asserting every identity throughout)."""
    matrix = differential_matrix(quick)
    assert matrix and all(row["identical"] for row in matrix)
    compliance = rate_limit_compliance(80 if quick else 200)
    rates = throughput(16 if quick else 64)
    paced = next(row for row in compliance if row["paced"])
    return {
        "benchmark": "bench_adapters",
        "mode": "quick" if quick else "full",
        "differential": {"rows": matrix},
        "rate_limit": {
            "rows": compliance,
            "compliant": paced["over_budget"] == 0,
        },
        "throughput": {"rows": rates},
    }


def main(argv=None):
    """CLI entry point: run, assert, write the JSON report."""
    parser = argparse.ArgumentParser(
        description="differential-test the real backends against the oracle"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="three scenarios and short sweeps for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_adapters.json", help="report destination"
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    cells = report["differential"]["rows"]
    print(
        f"differential: {len(cells)} cells, all identical "
        f"({len({c['scenario'] for c in cells})} scenarios x "
        f"2 backends x 4 conditions)"
    )
    for row in report["rate_limit"]["rows"]:
        label = "paced" if row["paced"] else "unpaced"
        print(
            f"rate limit [{label}]: {row['over_budget']} over-budget / "
            f"{row['server_requests']} server requests, "
            f"{row['throughput_rps']:.0f} req/s"
        )
    for row in report["throughput"]["rows"]:
        print(
            f"throughput [{row['backend']}]: "
            f"{row['throughput_rps']:.0f} req/s"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
